//! Executable versions of the hardness reductions of Section 4.
//!
//! The paper proves that g-NuDecomp is #P-hard (reduction from network
//! reliability, Lemma 2 / Theorem 4.1) and that w-NuDecomp is NP-hard
//! (reduction from k-clique, Theorem 4.2).  The reductions themselves are
//! constructive, so this module builds the reduction *gadgets* and the
//! test-suite verifies their defining properties on small instances with
//! the exhaustive oracles of [`crate::exact`].  This does not reprove the
//! theorems; it demonstrates that the constructions behave as claimed.

use ugraph::{GraphBuilder, Triangle, UncertainGraph, VertexId};

/// The gadget of Lemma 2: given a probabilistic graph `G` and one of its
/// vertices `v`, add two fresh vertices `u`, `w` and the certain edges
/// `(u,v)`, `(u,w)`, `(v,w)`.  The resulting graph `F` and the certain
/// triangle `(u, v, w)` satisfy
/// `Pr(X_{F,△,g} ≥ 0) = reliability(G)` — where, as in the proof, a
/// "0-nucleus" world is simply a connected world.
pub fn reliability_gadget(graph: &UncertainGraph, v: VertexId) -> (UncertainGraph, Triangle) {
    assert!(
        (v as usize) < graph.num_vertices(),
        "anchor vertex {v} out of bounds"
    );
    let u = graph.num_vertices() as VertexId;
    let w = u + 1;
    let mut b = GraphBuilder::with_vertices(graph.num_vertices() + 2);
    for e in graph.edges() {
        b.add_edge(e.u, e.v, e.p).expect("existing edges are valid");
    }
    b.add_edge(u, v, 1.0).expect("gadget edge");
    b.add_edge(u, w, 1.0).expect("gadget edge");
    b.add_edge(v, w, 1.0).expect("gadget edge");
    (b.build(), Triangle::new(u, v, w))
}

/// The probability that a sampled world of `graph` is connected *and*
/// contains `triangle` — the quantity `Pr(X_{F,△,g} ≥ 0)` in the proof of
/// Lemma 2, where a 0-nucleus world is interpreted as a connected world.
/// Exhaustive; requires a small graph.
pub fn connected_world_probability(
    graph: &UncertainGraph,
    triangle: &Triangle,
) -> crate::error::Result<f64> {
    use ugraph::possible_world::enumerate_all_worlds;
    if graph.num_edges() > ugraph::possible_world::MAX_EXHAUSTIVE_EDGES {
        return Err(crate::error::NucleusError::GraphTooLargeForExact {
            num_edges: graph.num_edges(),
            max_edges: ugraph::possible_world::MAX_EXHAUSTIVE_EDGES,
        });
    }
    let [a, b, c] = triangle.vertices();
    let mut total = 0.0;
    for world in enumerate_all_worlds(graph) {
        if !world.contains_triangle(graph, a, b, c) {
            continue;
        }
        let det = world.materialize(graph);
        if ugraph::connectivity::is_connected(&det) {
            total += world.probability(graph);
        }
    }
    Ok(total)
}

/// The gadget of Theorem 4.2: given a *deterministic* graph (as an edge
/// list over `num_vertices` vertices) and the clique parameter `k`, build
/// the probabilistic graph in which every edge has probability
/// `p = 1 / 2^(2m+1)` (with `m` edges) and the threshold
/// `θ = p^((k+3)(k+2)/2)`.  A w-(k,θ)-nucleus exists in the gadget if and
/// only if the original graph contains a (k+3)-clique.
pub fn clique_gadget(
    edges: &[(VertexId, VertexId)],
    num_vertices: usize,
    k: u32,
) -> (UncertainGraph, f64) {
    let m = edges.len() as f64;
    let p = 1.0 / 2f64.powf(2.0 * m + 1.0);
    // Guard against underflow for graphs larger than the gadget is meant
    // for (the construction is only exercised on tiny instances).
    let p = p.max(f64::MIN_POSITIVE.cbrt());
    let mut b = GraphBuilder::with_vertices(num_vertices);
    for &(u, v) in edges {
        b.add_edge(u, v, p).expect("valid deterministic edge");
    }
    let clique_edges = ((k as f64 + 3.0) * (k as f64 + 2.0)) / 2.0;
    let theta = p.powf(clique_edges);
    (b.build(), theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_weakly_global_tail, network_reliability};
    use ugraph::EdgeSubgraph;

    fn small_probabilistic_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(0, 3, 0.4).unwrap();
        b.add_edge(0, 2, 0.3).unwrap();
        b.build()
    }

    #[test]
    fn gadget_adds_a_certain_triangle() {
        let g = small_probabilistic_graph();
        let (f, tri) = reliability_gadget(&g, 2);
        assert_eq!(f.num_vertices(), g.num_vertices() + 2);
        assert_eq!(f.num_edges(), g.num_edges() + 3);
        let [a, b, c] = tri.vertices();
        assert_eq!(f.triangle_probability(a, b, c).unwrap(), 1.0);
        assert!(tri.contains(2));
    }

    #[test]
    fn lemma2_reliability_equals_connected_world_probability() {
        // The defining property of the reduction: the probability that a
        // world of F is connected (and contains the gadget triangle, which
        // is always present) equals the reliability of G.
        let g = small_probabilistic_graph();
        for anchor in [0u32, 1, 3] {
            let (f, tri) = reliability_gadget(&g, anchor);
            let lhs = connected_world_probability(&f, &tri).unwrap();
            let rhs = network_reliability(&g).unwrap();
            assert!((lhs - rhs).abs() < 1e-10, "anchor {anchor}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn lemma2_decision_version_threshold() {
        // Binary-search style usage: the decision "is reliability ≥ θ?"
        // matches "is Pr(X ≥ 0) ≥ θ?" for any θ.
        let g = small_probabilistic_graph();
        let (f, tri) = reliability_gadget(&g, 0);
        let reliability = network_reliability(&g).unwrap();
        let p = connected_world_probability(&f, &tri).unwrap();
        for theta in [0.05, 0.2, reliability, 0.8, 0.99] {
            assert_eq!(p >= theta, reliability >= theta, "theta {theta}");
        }
    }

    #[test]
    fn clique_gadget_parameters() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
        let (g, theta) = clique_gadget(&edges, 4, 1);
        assert_eq!(g.num_edges(), 4);
        let p = g.edge_probability(0, 1).unwrap();
        assert!((p - 1.0 / 2f64.powi(9)).abs() < 1e-15);
        // θ = p^((k+3)(k+2)/2) = p^6 for k = 1.
        assert!((theta - p.powi(6)).abs() < 1e-300 || (theta / p.powi(6) - 1.0).abs() < 1e-9);
        assert!(theta > 0.0);
    }

    #[test]
    fn clique_gadget_positive_direction() {
        // G contains a K4 (= (k+3)-clique for k = 1): the gadget restricted
        // to that clique achieves Pr(X_w ≥ 1) = θ for each of its
        // triangles, so a w-(1,θ)-nucleus exists.
        let edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)];
        let (g, theta) = clique_gadget(&edges, 5, 1);
        let clique_sub = EdgeSubgraph::induced_by_vertices(&g, &[0, 1, 2, 3]);
        let h = clique_sub.graph();
        for tri in ugraph::triangles::enumerate_triangles(h) {
            let p = exact_weakly_global_tail(h, &tri, 1).unwrap();
            assert!(
                p >= theta * (1.0 - 1e-9),
                "triangle {tri}: {p:e} < theta {theta:e}"
            );
        }
    }

    #[test]
    fn clique_gadget_negative_direction() {
        // G is K4 minus an edge (no 4-clique): no triangle of the gadget
        // reaches the threshold, for the whole graph taken as H.
        let edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3)];
        let (g, theta) = clique_gadget(&edges, 4, 1);
        for tri in ugraph::triangles::enumerate_triangles(&g) {
            let p = exact_weakly_global_tail(&g, &tri, 1).unwrap();
            assert!(p < theta, "triangle {tri}: {p:e} >= theta {theta:e}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gadget_rejects_bad_anchor() {
        let g = small_probabilistic_graph();
        let _ = reliability_gadget(&g, 99);
    }

    #[test]
    fn connected_world_probability_rejects_large_graphs() {
        let mut b = GraphBuilder::new();
        for i in 0..30u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build();
        let tri = Triangle::new(0, 1, 2);
        assert!(connected_world_probability(&g, &tri).is_err());
    }
}
