//! Unified (r,s)-decomposition surface.
//!
//! The paper's ℓ-NuDecomp is the (3,4) instance of the (r,s)-nucleus
//! family (Sarıyüce et al.); the probabilistic (k,η)-core (Bonchi et
//! al.) is (1,2) and the local (k,γ)-truss (Huang et al.) is (2,3) —
//! the same peel-with-Poisson-binomial-DP shape at every rank.  This
//! module is the one entry point that computes any of them on the
//! shared engine of [`ugraph::rs`]:
//!
//! * [`Rank`] selects the instance,
//! * [`DecompConfig`] is the builder-style configuration (rank,
//!   threshold, scoring method, parallelism), validated into the typed
//!   errors of [`crate::error`],
//! * [`Decomposition::compute`] runs one threshold,
//! * [`DecompSweep::compute`] amortizes one support build across a whole
//!   threshold grid, for any rank,
//! * [`RankSupport`] / [`DecompHandle`] keep a built support resident in
//!   memory and shareable across threads (`Arc`-based), so a serving
//!   process can answer many queries off one build.
//!
//! Outputs are **bit-identical** to the historical per-rank entry points
//! (`probdecomp::EtaCoreDecomposition`, `probdecomp::GammaTrussDecomposition`,
//! [`LocalNucleusDecomposition`](crate::local::LocalNucleusDecomposition)):
//! the supports gather the same floats in
//! the same order, the DP is the same arithmetic, and the deferred peel
//! reaches the same fixpoint as the frozen eager references (the DP
//! scorer is monotone under cell removal, which makes the peeling
//! fixpoint schedule-independent).  Differential proptests in
//! `tests/rs_engine_equivalence.rs` enforce this per rank.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use ugraph::rs::{self, CoreSupport, PeelStats, RsSupport, TailScratch, TrussSupport};
use ugraph::update::GraphDelta;
use ugraph::{apply_edge_updates, par, EdgeUpdate, Parallelism, UncertainGraph};

use crate::approx::ApproxMethod;
use crate::config::{LocalConfig, ScoreMethod, SweepConfig};
use crate::error::{NucleusError, Result};
use crate::local::{self, nuclei};
use crate::support::SupportStructure;

/// Which member of the (r,s)-nucleus family to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rank {
    /// (1,2): vertices scored by incident edges — the probabilistic
    /// (k,η)-core.
    Core,
    /// (2,3): edges scored by triangles — the local probabilistic
    /// (k,γ)-truss.
    Truss,
    /// (3,4): triangles scored by 4-cliques — the paper's ℓ-NuDecomp.
    Nucleus,
}

impl Rank {
    /// The element clique size `r`.
    pub fn r(&self) -> usize {
        match self {
            Rank::Core => 1,
            Rank::Truss => 2,
            Rank::Nucleus => 3,
        }
    }

    /// The cell clique size `s = r + 1`.
    pub fn s(&self) -> usize {
        self.r() + 1
    }

    /// Lower-case name (`core`, `truss`, `nucleus`), as accepted by
    /// [`FromStr`] and emitted in bench reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Rank::Core => "core",
            Rank::Truss => "truss",
            Rank::Nucleus => "nucleus",
        }
    }

    /// Conventional name of this rank's probability threshold: `eta`
    /// for the core, `gamma` for the truss, `theta` for the nucleus.
    pub fn threshold_name(&self) -> &'static str {
        match self {
            Rank::Core => "eta",
            Rank::Truss => "gamma",
            Rank::Nucleus => "theta",
        }
    }

    /// What the peeled elements are (`vertices`, `edges`, `triangles`).
    pub fn element_name(&self) -> &'static str {
        match self {
            Rank::Core => "vertices",
            Rank::Truss => "edges",
            Rank::Nucleus => "triangles",
        }
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rank name that [`Rank::from_str`] did not recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRankError(pub String);

impl fmt::Display for UnknownRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown rank '{}' (expected 'core', 'truss' or 'nucleus')",
            self.0
        )
    }
}

impl std::error::Error for UnknownRankError {}

impl FromStr for Rank {
    type Err = UnknownRankError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "core" => Ok(Rank::Core),
            "truss" => Ok(Rank::Truss),
            "nucleus" => Ok(Rank::Nucleus),
            other => Err(UnknownRankError(other.to_string())),
        }
    }
}

/// Builder-style configuration of a single-threshold (r,s)
/// decomposition.
///
/// Construct with [`core`](Self::core) / [`truss`](Self::truss) /
/// [`nucleus`](Self::nucleus), refine with the `with_*` methods, and
/// hand to [`Decomposition::compute`] — which validates into the typed
/// errors of [`NucleusError`] before touching the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompConfig {
    /// The (r,s) instance to compute.
    pub rank: Rank,
    /// The probability threshold (η, γ or θ depending on the rank),
    /// required in `(0, 1]`.
    pub threshold: f64,
    /// How scores are computed.  [`ScoreMethod::Hybrid`] is calibrated
    /// for the (3,4) rank and rejected elsewhere.
    pub method: ScoreMethod,
    /// Parallelism of the support build and initial scoring pass.
    /// Results are bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl DecompConfig {
    fn new(rank: Rank, threshold: f64) -> Self {
        DecompConfig {
            rank,
            threshold,
            method: ScoreMethod::DynamicProgramming,
            parallelism: Parallelism::Auto,
        }
    }

    /// Probabilistic (k,η)-core configuration.
    pub fn core(eta: f64) -> Self {
        Self::new(Rank::Core, eta)
    }

    /// Local probabilistic (k,γ)-truss configuration.
    pub fn truss(gamma: f64) -> Self {
        Self::new(Rank::Truss, gamma)
    }

    /// ℓ-NuDecomp configuration (equivalent to
    /// [`LocalConfig::exact`]).
    pub fn nucleus(theta: f64) -> Self {
        Self::new(Rank::Nucleus, theta)
    }

    /// Sets the scoring method ([`ScoreMethod::Hybrid`] is only valid at
    /// [`Rank::Nucleus`]; validation rejects it elsewhere).
    pub fn with_method(mut self, method: ScoreMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the parallelism of the support build and scoring passes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Validates the threshold range and the method/rank combination.
    pub fn validate(&self) -> Result<()> {
        if !(self.threshold > 0.0 && self.threshold <= 1.0) || self.threshold.is_nan() {
            return Err(NucleusError::InvalidThreshold {
                name: self.rank.threshold_name(),
                value: self.threshold,
            });
        }
        if self.rank != Rank::Nucleus && matches!(self.method, ScoreMethod::Hybrid(_)) {
            return Err(NucleusError::UnsupportedMethod {
                rank: self.rank.as_str(),
                method: "hybrid",
            });
        }
        // Delegate hybrid-hyperparameter checks (and re-check θ) to the
        // rank-3 config.
        self.local_config().validate().map_err(|e| match e {
            // Re-label the threshold under this rank's conventional name.
            NucleusError::InvalidThreshold { value, .. } if value == self.threshold => {
                NucleusError::InvalidThreshold {
                    name: self.rank.threshold_name(),
                    value,
                }
            }
            other => other,
        })
    }

    /// The equivalent rank-3 [`LocalConfig`] (used for the nucleus path
    /// and for hyperparameter validation).
    fn local_config(&self) -> LocalConfig {
        LocalConfig {
            theta: self.threshold,
            method: self.method,
            parallelism: self.parallelism,
        }
    }

    /// Expands this single-threshold configuration into a [`SweepConfig`]
    /// over `grid` (the grid replaces [`threshold`](Self::threshold);
    /// rank, method and parallelism carry over).  This is the one
    /// conversion between the two validated builders.
    pub fn sweep(&self, grid: Vec<f64>) -> SweepConfig {
        SweepConfig {
            rank: self.rank,
            thetas: grid,
            method: self.method,
            parallelism: self.parallelism,
        }
    }
}

/// The rank-specific support structure behind a decomposition: the
/// threshold-independent part of the computation (element/cell
/// enumeration and completion probabilities), built once and shared —
/// across grid points by [`DecompSweep`], across threads by
/// [`DecompHandle`].
#[derive(Debug, Clone)]
pub enum RankSupport {
    /// (1,2): vertices and their incident edges.
    Core(CoreSupport),
    /// (2,3): edges and their triangles.
    Truss(TrussSupport),
    /// (3,4): triangles and their 4-cliques (the paper's
    /// [`SupportStructure`]).
    Nucleus(SupportStructure),
}

impl RankSupport {
    /// Builds the support for `rank` with the given parallelism.
    pub fn build(graph: &UncertainGraph, rank: Rank, parallelism: Parallelism) -> Self {
        match rank {
            Rank::Core => RankSupport::Core(CoreSupport::build(graph)),
            Rank::Truss => RankSupport::Truss(TrussSupport::build(graph, parallelism)),
            Rank::Nucleus => RankSupport::Nucleus(SupportStructure::build_with(graph, parallelism)),
        }
    }

    /// The rank this support was built for.
    pub fn rank(&self) -> Rank {
        match self {
            RankSupport::Core(_) => Rank::Core,
            RankSupport::Truss(_) => Rank::Truss,
            RankSupport::Nucleus(_) => Rank::Nucleus,
        }
    }

    /// Number of peelable elements (vertices, edges or triangles).
    pub fn num_elements(&self) -> usize {
        match self {
            RankSupport::Core(s) => s.num_elements(),
            RankSupport::Truss(s) => s.num_elements(),
            RankSupport::Nucleus(s) => s.num_triangles(),
        }
    }

    /// The nucleus-rank [`SupportStructure`], when this is one.
    pub fn as_nucleus(&self) -> Option<&SupportStructure> {
        match self {
            RankSupport::Nucleus(s) => Some(s),
            _ => None,
        }
    }

    /// Repairs the support after an edge-update batch instead of
    /// rebuilding it, and computes the damage region of the bounded
    /// re-peel.
    ///
    /// `old_graph` must be the graph this support was built from and
    /// `delta` the result of [`apply_edge_updates`] on it.  The repaired
    /// support is bit-identical to `RankSupport::build(&delta.graph, …)`;
    /// `affected` / `region` are the seed set and its component closure
    /// as computed by [`rs::affected_elements`] and
    /// [`rs::component_closure`].
    pub fn repair(
        &self,
        old_graph: &UncertainGraph,
        delta: &GraphDelta,
        parallelism: Parallelism,
    ) -> SupportRepair {
        match self {
            RankSupport::Core(old) => {
                // The (1,2) support is a plain scan of the edge table —
                // rebuilding it is as cheap as any repair.  Elements are
                // vertices and the vertex set is fixed, so the element
                // map is the identity.
                let new = CoreSupport::build(&delta.graph);
                let new_to_old: Vec<Option<u32>> =
                    (0..new.num_elements() as u32).map(Some).collect();
                let affected = rs::affected_elements(old, &new, &new_to_old);
                let region = rs::component_closure(&new, &affected);
                SupportRepair {
                    support: RankSupport::Core(new),
                    new_to_old,
                    affected,
                    region,
                }
            }
            RankSupport::Truss(old) => {
                let new = old.repair(old_graph, &delta.graph, &delta.inserted, parallelism);
                // (2,3) elements are edges: the delta's edge remap is the
                // element map.
                let new_to_old = delta.new_to_old.clone();
                let affected = rs::affected_elements(old, &new, &new_to_old);
                let region = rs::component_closure(&new, &affected);
                SupportRepair {
                    support: RankSupport::Truss(new),
                    new_to_old,
                    affected,
                    region,
                }
            }
            RankSupport::Nucleus(old) => {
                let new = old.repair(&delta.graph, &delta.inserted, parallelism);
                // (3,4) elements are triangles: map through the old
                // triangle index (triangles keep their vertex triple).
                let new_to_old: Vec<Option<u32>> = (0..new.num_triangles() as u32)
                    .map(|t| old.triangle_index().id_of(&new.triangle(t)))
                    .collect();
                let affected = rs::affected_elements(old, &new, &new_to_old);
                let region = rs::component_closure(&new, &affected);
                SupportRepair {
                    support: RankSupport::Nucleus(new),
                    new_to_old,
                    affected,
                    region,
                }
            }
        }
    }
}

/// Result of [`RankSupport::repair`]: the repaired support plus the
/// bounded re-peel's bookkeeping.
#[derive(Debug, Clone)]
pub struct SupportRepair {
    /// The repaired support, bit-identical to a fresh build on the
    /// updated graph.
    pub support: RankSupport,
    /// For every new element id: its old id, or `None` for elements the
    /// batch created.
    pub new_to_old: Vec<Option<u32>>,
    /// Elements whose initial score may differ from the old run (sorted
    /// new ids) — the seed set `D`.
    pub affected: Vec<u32>,
    /// Component closure `R` of the seed set: the elements the bounded
    /// re-peel actually re-scores (sorted new ids).  Scores outside `R`
    /// carry over bitwise.
    pub region: Vec<u32>,
}

/// Deterministic counters of one [`DecompSweep::apply_updates`] /
/// [`DecompHandle::apply_updates`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// Net-inserted edges of the batch.
    pub inserted_edges: usize,
    /// Net-removed edges of the batch.
    pub removed_edges: usize,
    /// Surviving edges whose probability changed.
    pub reweighted_edges: usize,
    /// Size of the affected seed set `D`.
    pub affected_elements: usize,
    /// Size of the re-peeled region `R`.
    pub region_elements: usize,
    /// Score evaluations the update performed across all grid points:
    /// initial-score evaluations plus peeling re-evaluations.  A full
    /// rebuild would have spent `grid · num_elements` initial
    /// evaluations plus the full-peel `dp_calls`; the repair path spends
    /// `grid · |D|` plus the region-peel `dp_calls`.
    pub repair_dp_calls: usize,
    /// Grid points refreshed through the bounded re-peel.
    pub repaired_points: usize,
    /// Grid points recomputed from scratch (the hybrid scorer's
    /// approximations are not monotone under cell removal, so its points
    /// cannot be repaired regionally).
    pub recomputed_points: usize,
}

/// Result of [`DecompSweep::apply_updates`]: the updated graph (the
/// caller's graph is borrowed immutably and replaced by this one) plus
/// the update's counters.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The post-update graph, to be used for subsequent queries and
    /// further update batches.
    pub graph: UncertainGraph,
    /// Deterministic repair counters.
    pub report: UpdateReport,
}

/// Result of [`DecompHandle::apply_updates`]: a new handle over the
/// repaired support plus the updated graph.
#[derive(Debug, Clone)]
pub struct HandleUpdate {
    /// Handle over the repaired support.
    pub handle: DecompHandle,
    /// The post-update graph.
    pub graph: UncertainGraph,
    /// Batch and repair-size counters (the point counters are zero: a
    /// handle holds no computed points).
    pub report: UpdateReport,
}

/// Everything one threshold produces: the per-point payload shared by
/// [`Decomposition`] and [`DecompSweep`].
#[derive(Debug, Clone)]
struct Point {
    scores: Vec<u32>,
    initial_scores: Vec<u32>,
    method_counts: HashMap<ApproxMethod, usize>,
    stats: PeelStats,
}

/// Runs one threshold over a borrowed support.  The nucleus rank runs
/// the canonical initial-κ + peel sequence of [`crate::local`]; the
/// other ranks run the generic engine of [`ugraph::rs`].  Either way the
/// result is bit-identical to the historical per-rank entry points.
fn compute_point(
    support: &RankSupport,
    threshold: f64,
    method: ScoreMethod,
    parallelism: Parallelism,
) -> Point {
    match support {
        RankSupport::Nucleus(s) => {
            let local = LocalConfig {
                theta: threshold,
                method,
                parallelism,
            };
            let point = local::decompose_point(s, &local);
            Point {
                scores: point.scores,
                initial_scores: point.initial_scores,
                method_counts: point.method_counts,
                stats: point.stats,
            }
        }
        RankSupport::Core(s) => generic_point(s, threshold, parallelism),
        RankSupport::Truss(s) => generic_point(s, threshold, parallelism),
    }
}

/// The generic-engine threshold run: parallel initial DP pass (ordered
/// merge, so bit-identical for every thread count), then the deferred
/// bucket-queue peel.
fn generic_point<S: RsSupport + Sync>(
    support: &S,
    threshold: f64,
    parallelism: Parallelism,
) -> Point {
    let n = support.num_elements();
    let scored: Vec<(u32, usize)> =
        par::par_map_init(parallelism, n, TailScratch::new, |scratch, t| {
            let k = scratch.score(support, t as u32, threshold, |_| true);
            (k, scratch.peak_bytes())
        });
    let mut kappa = Vec::with_capacity(n);
    let mut init_peak = 0usize;
    for (k, peak) in scored {
        kappa.push(k);
        // Per-item values are running per-chunk maxima; the overall
        // maximum is independent of the chunk partition.
        init_peak = init_peak.max(peak);
    }
    let initial_scores = kappa.clone();

    let mut scratch = TailScratch::new();
    let (scores, mut stats) = rs::peel_deferred(support, kappa, |t, cell_dead| {
        scratch.score(support, t, threshold, |c| !cell_dead[c as usize])
    });
    stats.peak_scratch_bytes = scratch.peak_bytes().max(init_peak);

    // Counts of elements scored by each method: empty when there is
    // nothing to score, matching the nucleus rank's per-element tally.
    let mut method_counts = HashMap::new();
    if n > 0 {
        method_counts.insert(ApproxMethod::DynamicProgramming, n);
    }
    Point {
        scores,
        initial_scores,
        method_counts,
        stats,
    }
}

/// Refreshes every grid point after a support repair through the bounded
/// re-peel: fresh initial scores for the affected set `D` only, a
/// [`rs::RegionSupport`] peel over the component closure `R`, and carried
/// old scores everywhere else.  Returns the new points plus the total
/// score evaluations spent (`grid · |D|` initial evaluations plus the
/// region peels' `dp_calls`).
///
/// Valid for the exact-DP scorer at every rank: affected elements get the
/// same float gather as a fresh run, clean elements have bit-identical
/// inputs, and the peel fixpoint is component-local — so scores and
/// initial scores are bit-identical to a from-scratch sweep on the
/// updated graph.  The per-point [`PeelStats`] describe the repair run
/// itself (deterministic for every thread count), not the fresh peel.
fn repair_points_generic<S: RsSupport + Sync>(
    support: &S,
    new_to_old: &[Option<u32>],
    affected: &[u32],
    region: &[u32],
    old_points: &[Point],
    thetas: &[f64],
    parallelism: Parallelism,
) -> (Vec<Point>, usize) {
    let n = support.num_elements();
    let mut affected_mask = vec![false; n];
    for &t in affected {
        affected_mask[t as usize] = true;
    }
    let mut in_region = vec![false; n];
    for &t in region {
        in_region[t as usize] = true;
    }
    let region_view = rs::RegionSupport::new(support, region.to_vec());

    let grid_len = thetas.len();
    // Same nesting rule as `DecompSweep::over_support`: across-grid
    // parallelism wins when there are several points.
    let inner = if grid_len >= 2 {
        Parallelism::Sequential
    } else {
        parallelism
    };
    let points: Vec<Point> = par::par_map(parallelism, grid_len, |gi| {
        let threshold = thetas[gi];
        let old = &old_points[gi];

        // Fresh initial evaluations for the affected elements, over the
        // full repaired support (same gather as a from-scratch pass).
        let fresh: Vec<(u32, usize)> =
            par::par_map_init(inner, affected.len(), TailScratch::new, |scratch, i| {
                let k = scratch.score(support, affected[i], threshold, |_| true);
                (k, scratch.peak_bytes())
            });
        let mut initial_scores: Vec<u32> = (0..n)
            .map(|t| {
                if affected_mask[t] {
                    0 // overwritten below
                } else {
                    // Clean elements always have an old counterpart.
                    old.initial_scores[new_to_old[t].unwrap() as usize]
                }
            })
            .collect();
        let mut init_peak = 0usize;
        for (i, &(k, peak)) in fresh.iter().enumerate() {
            initial_scores[affected[i] as usize] = k;
            init_peak = init_peak.max(peak);
        }

        // Bounded re-peel of the region off its initial scores.
        let kappa: Vec<u32> = region.iter().map(|&t| initial_scores[t as usize]).collect();
        let mut scratch = TailScratch::new();
        let (region_scores, mut stats) = rs::peel_deferred(&region_view, kappa, |t, cell_dead| {
            scratch.score(&region_view, t, threshold, |c| !cell_dead[c as usize])
        });
        stats.peak_scratch_bytes = scratch.peak_bytes().max(init_peak);

        // Scatter the re-peeled scores; everything outside the region
        // carries its old final score bitwise.
        let mut scores: Vec<u32> = (0..n)
            .map(|t| {
                if in_region[t] {
                    0 // overwritten below
                } else {
                    old.scores[new_to_old[t].unwrap() as usize]
                }
            })
            .collect();
        for (i, &t) in region.iter().enumerate() {
            scores[t as usize] = region_scores[i];
        }

        // Mirror a fresh compute exactly: no method entry when the
        // updated grid point has nothing to score.
        let mut method_counts = HashMap::new();
        if n > 0 {
            method_counts.insert(ApproxMethod::DynamicProgramming, n);
        }
        Point {
            scores,
            initial_scores,
            method_counts,
            stats,
        }
    });
    let dp_calls = points
        .iter()
        .map(|p| affected.len() + p.stats.dp_calls)
        .sum();
    (points, dp_calls)
}

/// A cheaply clonable, thread-shareable handle to a built
/// [`RankSupport`]: the resident object a serving process keeps in
/// memory.  Every computation borrows the shared support — no rebuilds,
/// no copies — and is bit-identical to a from-scratch run at the same
/// configuration.
#[derive(Debug, Clone)]
pub struct DecompHandle {
    support: Arc<RankSupport>,
}

impl DecompHandle {
    /// Builds the support for `rank` and wraps it in a handle.
    pub fn build(graph: &UncertainGraph, rank: Rank, parallelism: Parallelism) -> Self {
        DecompHandle {
            support: Arc::new(RankSupport::build(graph, rank, parallelism)),
        }
    }

    /// Wraps an already-built (and possibly already-shared) support.
    pub fn from_support(support: Arc<RankSupport>) -> Self {
        DecompHandle { support }
    }

    /// The rank the handle's support was built for.
    pub fn rank(&self) -> Rank {
        self.support.rank()
    }

    /// Number of peelable elements.
    pub fn num_elements(&self) -> usize {
        self.support.num_elements()
    }

    /// The shared support.
    pub fn support(&self) -> &Arc<RankSupport> {
        &self.support
    }

    fn check_rank(&self, requested: Rank) -> Result<()> {
        if requested != self.rank() {
            return Err(NucleusError::RankMismatch {
                expected: requested.as_str(),
                got: self.rank().as_str(),
            });
        }
        Ok(())
    }

    /// Computes one threshold over the shared support.  Errors with
    /// [`NucleusError::RankMismatch`] when `config.rank` differs from the
    /// handle's rank.
    pub fn compute_at(&self, config: &DecompConfig) -> Result<Decomposition> {
        config.validate()?;
        self.check_rank(config.rank)?;
        let point = compute_point(
            &self.support,
            config.threshold,
            config.method,
            config.parallelism,
        );
        Ok(Decomposition {
            config: *config,
            initial_scores: point.initial_scores,
            scores: point.scores,
            method_counts: point.method_counts,
            stats: point.stats,
        })
    }

    /// Sweeps a whole grid over the shared support (no new build:
    /// [`DecompSweep::support_builds`] reports 0).
    pub fn sweep(&self, config: &SweepConfig) -> Result<DecompSweep> {
        config.validate()?;
        self.check_rank(config.rank)?;
        Ok(DecompSweep::over_support(
            Arc::clone(&self.support),
            config,
            0,
        ))
    }

    /// Applies an edge-update batch: validates it against `graph` (which
    /// must be the graph this handle's support was built from), repairs
    /// the support incrementally and returns a new handle over it
    /// together with the updated graph.  The batch is atomic — on any
    /// [`NucleusError::Update`] nothing is modified — and the repaired
    /// support is bit-identical to a fresh build on the updated graph.
    pub fn apply_updates(
        &self,
        graph: &UncertainGraph,
        updates: &[EdgeUpdate],
        parallelism: Parallelism,
    ) -> Result<HandleUpdate> {
        let delta = apply_edge_updates(graph, updates)?;
        let repair = self.support.repair(graph, &delta, parallelism);
        let report = UpdateReport {
            inserted_edges: delta.inserted.len(),
            removed_edges: delta.removed,
            reweighted_edges: delta.reweighted,
            affected_elements: repair.affected.len(),
            region_elements: repair.region.len(),
            repair_dp_calls: 0,
            repaired_points: 0,
            recomputed_points: 0,
        };
        Ok(HandleUpdate {
            handle: DecompHandle {
                support: Arc::new(repair.support),
            },
            graph: delta.graph,
            report,
        })
    }
}

/// Result of a unified (r,s) decomposition: the decomposition number of
/// every element (core number, truss number or ℓ-nucleusness, indexed by
/// vertex, edge or triangle id), plus the engine's deterministic perf
/// counters.
#[derive(Debug, Clone)]
pub struct Decomposition {
    config: DecompConfig,
    initial_scores: Vec<u32>,
    scores: Vec<u32>,
    method_counts: HashMap<ApproxMethod, usize>,
    stats: PeelStats,
}

impl Decomposition {
    /// Computes the decomposition selected by `config`, validating the
    /// configuration first.
    pub fn compute(graph: &UncertainGraph, config: &DecompConfig) -> Result<Self> {
        // Fail fast before the expensive support build.
        config.validate()?;
        DecompHandle::build(graph, config.rank, config.parallelism).compute_at(config)
    }

    /// The validated configuration the decomposition ran with.
    pub fn config(&self) -> &DecompConfig {
        &self.config
    }

    /// The rank that was computed.
    pub fn rank(&self) -> Rank {
        self.config.rank
    }

    /// Decomposition number of element `id` (vertex, edge or triangle id
    /// depending on the rank).
    pub fn score(&self, id: u32) -> u32 {
        self.scores[id as usize]
    }

    /// Decomposition number of every element, indexed by element id.
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The initial scores (before peeling), indexed by element id.
    pub fn initial_scores(&self) -> &[u32] {
        &self.initial_scores
    }

    /// The largest decomposition number.
    pub fn max_score(&self) -> u32 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Number of peeled elements.
    pub fn num_elements(&self) -> usize {
        self.scores.len()
    }

    /// Evaluation method of each element's initial score computation.
    pub fn method_counts(&self) -> &HashMap<ApproxMethod, usize> {
        &self.method_counts
    }

    /// Deterministic perf counters of the peeling engine.
    pub fn peel_stats(&self) -> &PeelStats {
        &self.stats
    }
}

/// A threshold sweep at any rank: one support build amortized across a
/// whole grid, per-point scores, method counts and [`PeelStats`],
/// queryable in O(log grid).
///
/// This is the one sweep engine of the workspace —
/// [`ThetaSweep`](crate::local::sweep::ThetaSweep) and
/// [`NucleusIndex`](crate::local::sweep::NucleusIndex) are thin
/// nucleus-rank wrappers over it.  Every per-point result is
/// bit-identical to an independent [`Decomposition::compute`] at that
/// threshold, for every parallelism setting.
#[derive(Debug, Clone)]
pub struct DecompSweep {
    support: Arc<RankSupport>,
    config: SweepConfig,
    points: Vec<Point>,
    support_builds: usize,
}

impl DecompSweep {
    /// Sweeps `config.thetas` (interpreted as `config.rank`'s threshold
    /// grid: η, γ or θ values).  The grid is validated like a θ grid —
    /// non-empty, finite, in `(0, 1]`, strictly ascending — and the
    /// method/rank combination like a [`DecompConfig`].
    pub fn compute(graph: &UncertainGraph, config: &SweepConfig) -> Result<Self> {
        config.validate()?;
        let support = Arc::new(RankSupport::build(graph, config.rank, config.parallelism));
        Ok(Self::over_support(support, config, 1))
    }

    /// Runs the (already validated) sweep over a shared support.
    pub(crate) fn over_support(
        support: Arc<RankSupport>,
        config: &SweepConfig,
        support_builds: usize,
    ) -> Self {
        let grid_len = config.thetas.len();
        // Parallelize across grid points when there are several; inside a
        // grid-point worker the scoring runs sequentially (nesting
        // parallel scans would oversubscribe without changing results).
        let inner = if grid_len >= 2 {
            Parallelism::Sequential
        } else {
            config.parallelism
        };
        let points: Vec<Point> = par::par_map(config.parallelism, grid_len, |gi| {
            compute_point(&support, config.thetas[gi], config.method, inner)
        });
        let sweep = DecompSweep {
            support,
            config: config.clone(),
            points,
            support_builds,
        };
        // The DP scorer is provably monotone in the threshold (a larger
        // threshold shrinks every tail set); catch any engine regression
        // early in debug builds.
        #[cfg(debug_assertions)]
        if sweep.config.method == ScoreMethod::DynamicProgramming {
            debug_assert!(
                sweep.is_monotone_in_threshold(),
                "exact-DP sweep scores must be non-increasing in the threshold"
            );
        }
        sweep
    }

    /// The configuration the sweep was computed with.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// The rank the sweep was computed at.
    pub fn rank(&self) -> Rank {
        self.config.rank
    }

    /// The threshold grid, sorted ascending.
    pub fn thresholds(&self) -> &[f64] {
        &self.config.thetas
    }

    /// Number of grid points.
    pub fn grid_len(&self) -> usize {
        self.points.len()
    }

    /// Number of peeled elements (shared by every grid point).
    pub fn num_elements(&self) -> usize {
        self.support.num_elements()
    }

    /// The shared support.
    pub fn support(&self) -> &Arc<RankSupport> {
        &self.support
    }

    /// The nucleus-rank [`SupportStructure`], when this is a nucleus
    /// sweep.
    pub fn nucleus_support(&self) -> Option<&SupportStructure> {
        self.support.as_nucleus()
    }

    /// Support builds the engine performed — pinned to 1 by the CI perf
    /// gate, the whole point of the sweep.  0 when the support was shared
    /// through a [`DecompHandle`].
    pub fn support_builds(&self) -> usize {
        self.support_builds
    }

    /// Grid position of `threshold` (exact match, O(log grid) binary
    /// search over the sorted grid), or `None` when it is not a grid
    /// point.
    pub fn grid_index_of(&self, threshold: f64) -> Option<usize> {
        self.config
            .thetas
            .binary_search_by(|probe| {
                probe
                    .partial_cmp(&threshold)
                    .unwrap_or(std::cmp::Ordering::Less)
            })
            .ok()
    }

    /// Like [`grid_index_of`](Self::grid_index_of), but off-grid lookups
    /// produce the typed [`NucleusError::ThresholdOffGrid`].
    pub fn require_grid_index(&self, threshold: f64) -> Result<usize> {
        self.grid_index_of(threshold)
            .ok_or(NucleusError::ThresholdOffGrid {
                name: self.config.rank.threshold_name(),
                value: threshold,
            })
    }

    /// Decomposition numbers at grid point `index`.
    pub fn scores_at_index(&self, index: usize) -> &[u32] {
        &self.points[index].scores
    }

    /// Decomposition numbers at `threshold`, or `None` off the grid.
    pub fn scores_at(&self, threshold: f64) -> Option<&[u32]> {
        self.grid_index_of(threshold)
            .map(|i| self.scores_at_index(i))
    }

    /// Initial scores at grid point `index`.
    pub fn initial_scores_at_index(&self, index: usize) -> &[u32] {
        &self.points[index].initial_scores
    }

    /// Initial scores at `threshold`, or `None` off the grid.
    pub fn initial_scores_at(&self, threshold: f64) -> Option<&[u32]> {
        self.grid_index_of(threshold)
            .map(|i| self.initial_scores_at_index(i))
    }

    /// Evaluation-method counts at grid point `index`.
    pub fn method_counts_at_index(&self, index: usize) -> &HashMap<ApproxMethod, usize> {
        &self.points[index].method_counts
    }

    /// The largest decomposition number at grid point `index`.
    pub fn max_score_at_index(&self, index: usize) -> u32 {
        self.points[index].scores.iter().copied().max().unwrap_or(0)
    }

    /// The largest decomposition number at `threshold`, or `None` off
    /// the grid.
    pub fn max_score_at(&self, threshold: f64) -> Option<u32> {
        self.grid_index_of(threshold)
            .map(|i| self.max_score_at_index(i))
    }

    /// Peeling perf counters at grid point `index`.
    pub fn peel_stats_at_index(&self, index: usize) -> &PeelStats {
        &self.points[index].stats
    }

    /// Peeling perf counters of every grid point, in grid order.
    pub fn peel_stats(&self) -> Vec<PeelStats> {
        self.points.iter().map(|p| p.stats).collect()
    }

    /// Sum of peeling-time score recomputations across the grid.
    pub fn total_dp_calls(&self) -> usize {
        self.points.iter().map(|p| p.stats.dp_calls).sum()
    }

    /// `true` when every element's score row (final and initial) is
    /// non-increasing as the threshold grows across the grid.  Always
    /// holds for the exact-DP scorer at every rank.
    pub fn is_monotone_in_threshold(&self) -> bool {
        let n = self.num_elements();
        self.points.windows(2).all(|w| {
            (0..n).all(|t| {
                w[1].scores[t] <= w[0].scores[t] && w[1].initial_scores[t] <= w[0].initial_scores[t]
            })
        })
    }

    /// Applies an edge-update batch to the sweep in place.
    ///
    /// `graph` must be the graph this sweep was computed from; `updates`
    /// is validated against it atomically (on [`NucleusError::Update`]
    /// the sweep is untouched).  The support is repaired incrementally
    /// ([`RankSupport::repair`]) and every grid point is refreshed
    /// through the bounded re-peel: only the affected elements are
    /// re-scored and only their components re-peeled, yet scores,
    /// initial scores and method counts are bit-identical to a
    /// from-scratch [`DecompSweep::compute`] on the updated graph.  The
    /// per-point [`PeelStats`] afterwards describe the repair run (still
    /// deterministic for every thread count).
    ///
    /// The hybrid scorer's statistical approximations are not monotone
    /// under cell removal, so hybrid sweeps recompute every point on the
    /// repaired support instead ([`UpdateReport::recomputed_points`]).
    ///
    /// Returns the updated graph (use it for subsequent queries and
    /// further batches) and the deterministic repair counters.
    pub fn apply_updates(
        &mut self,
        graph: &UncertainGraph,
        updates: &[EdgeUpdate],
    ) -> Result<UpdateOutcome> {
        let delta = apply_edge_updates(graph, updates)?;
        let parallelism = self.config.parallelism;
        let repair = self.support.repair(graph, &delta, parallelism);
        let grid_len = self.config.thetas.len();

        let hybrid = matches!(self.config.method, ScoreMethod::Hybrid(_));
        let (points, repair_dp_calls) = if hybrid {
            let support = &repair.support;
            let inner = if grid_len >= 2 {
                Parallelism::Sequential
            } else {
                parallelism
            };
            let points: Vec<Point> = par::par_map(parallelism, grid_len, |gi| {
                compute_point(support, self.config.thetas[gi], self.config.method, inner)
            });
            let n = support.num_elements();
            let calls = points.iter().map(|p| n + p.stats.dp_calls).sum();
            (points, calls)
        } else {
            match &repair.support {
                RankSupport::Core(s) => repair_points_generic(
                    s,
                    &repair.new_to_old,
                    &repair.affected,
                    &repair.region,
                    &self.points,
                    &self.config.thetas,
                    parallelism,
                ),
                RankSupport::Truss(s) => repair_points_generic(
                    s,
                    &repair.new_to_old,
                    &repair.affected,
                    &repair.region,
                    &self.points,
                    &self.config.thetas,
                    parallelism,
                ),
                RankSupport::Nucleus(s) => repair_points_generic(
                    s,
                    &repair.new_to_old,
                    &repair.affected,
                    &repair.region,
                    &self.points,
                    &self.config.thetas,
                    parallelism,
                ),
            }
        };

        let report = UpdateReport {
            inserted_edges: delta.inserted.len(),
            removed_edges: delta.removed,
            reweighted_edges: delta.reweighted,
            affected_elements: repair.affected.len(),
            region_elements: repair.region.len(),
            repair_dp_calls,
            repaired_points: if hybrid { 0 } else { grid_len },
            recomputed_points: if hybrid { grid_len } else { 0 },
        };
        self.support = Arc::new(repair.support);
        self.points = points;
        // The repaired sweep must satisfy the same invariant a fresh
        // exact-DP sweep does.
        #[cfg(debug_assertions)]
        if self.config.method == ScoreMethod::DynamicProgramming {
            debug_assert!(
                self.is_monotone_in_threshold(),
                "repaired exact-DP sweep scores must be non-increasing in the threshold"
            );
        }
        Ok(UpdateOutcome {
            graph: delta.graph,
            report,
        })
    }

    /// The maximal ℓ-(k,θ)-nuclei at `threshold` — nucleus-rank sweeps
    /// only.  Errors with [`NucleusError::RankMismatch`] at other ranks
    /// and [`NucleusError::ThresholdOffGrid`] off the grid.
    pub fn k_nuclei_at(
        &self,
        graph: &UncertainGraph,
        threshold: f64,
        k: u32,
    ) -> Result<Vec<detdecomp::NucleusSubgraph>> {
        let support = self.nucleus_support().ok_or(NucleusError::RankMismatch {
            expected: Rank::Nucleus.as_str(),
            got: self.config.rank.as_str(),
        })?;
        let gi = self.require_grid_index(threshold)?;
        Ok(nuclei::extract_k_nuclei(
            graph,
            support,
            &self.points[gi].scores,
            k,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalNucleusDecomposition;
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn rank_metadata() {
        assert_eq!(Rank::Core.r(), 1);
        assert_eq!(Rank::Core.s(), 2);
        assert_eq!(Rank::Truss.r(), 2);
        assert_eq!(Rank::Nucleus.s(), 4);
        assert_eq!(Rank::Truss.threshold_name(), "gamma");
        assert_eq!(Rank::Nucleus.to_string(), "nucleus");
        assert_eq!(Rank::Core.element_name(), "vertices");
        assert_eq!("truss".parse::<Rank>(), Ok(Rank::Truss));
        let err = "triangle".parse::<Rank>().unwrap_err();
        assert!(err.to_string().contains("unknown rank 'triangle'"));
    }

    #[test]
    fn config_validation_uses_rank_specific_threshold_names() {
        for (config, name) in [
            (DecompConfig::core(0.0), "eta"),
            (DecompConfig::truss(1.5), "gamma"),
            (DecompConfig::nucleus(f64::NAN), "theta"),
        ] {
            match config.validate() {
                Err(NucleusError::InvalidThreshold { name: got, .. }) => {
                    assert_eq!(got, name)
                }
                other => panic!("expected InvalidThreshold, got {other:?}"),
            }
        }
    }

    #[test]
    fn hybrid_method_is_nucleus_only() {
        let hybrid = ScoreMethod::Hybrid(crate::config::ApproxThresholds::default());
        assert_eq!(
            DecompConfig::core(0.5).with_method(hybrid).validate(),
            Err(NucleusError::UnsupportedMethod {
                rank: "core",
                method: "hybrid",
            })
        );
        assert_eq!(
            DecompConfig::truss(0.5).with_method(hybrid).validate(),
            Err(NucleusError::UnsupportedMethod {
                rank: "truss",
                method: "hybrid",
            })
        );
        assert!(DecompConfig::nucleus(0.5)
            .with_method(hybrid)
            .validate()
            .is_ok());
    }

    #[test]
    fn certain_k5_has_known_core_truss_nucleus_numbers() {
        let g = complete(5, 1.0);
        let core = Decomposition::compute(&g, &DecompConfig::core(0.9)).unwrap();
        assert_eq!(core.rank(), Rank::Core);
        assert!(core.scores().iter().all(|&s| s == 4), "{:?}", core.scores());
        let truss = Decomposition::compute(&g, &DecompConfig::truss(0.9)).unwrap();
        assert!(truss.scores().iter().all(|&s| s == 3));
        let nucleus = Decomposition::compute(&g, &DecompConfig::nucleus(0.9)).unwrap();
        assert!(nucleus.scores().iter().all(|&s| s == 2));
        assert_eq!(core.num_elements(), 5);
        assert_eq!(truss.num_elements(), 10);
        assert_eq!(nucleus.num_elements(), 10);
    }

    #[test]
    fn nucleus_rank_matches_local_decomposition_bitwise() {
        let g = complete(6, 0.7);
        let unified = Decomposition::compute(&g, &DecompConfig::nucleus(0.2)).unwrap();
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        assert_eq!(unified.scores(), local.scores());
        assert_eq!(unified.initial_scores(), local.initial_scores());
        assert_eq!(unified.peel_stats(), local.peel_stats());
        assert_eq!(unified.method_counts(), local.method_counts());
    }

    #[test]
    fn initial_scores_bound_final_scores_at_every_rank() {
        let g = complete(6, 0.6);
        for config in [
            DecompConfig::core(0.3),
            DecompConfig::truss(0.3),
            DecompConfig::nucleus(0.3),
        ] {
            let d = Decomposition::compute(&g, &config).unwrap();
            assert_eq!(
                d.method_counts()[&ApproxMethod::DynamicProgramming],
                d.num_elements()
            );
            for t in 0..d.num_elements() {
                assert!(d.scores()[t] <= d.initial_scores()[t], "{:?}", config.rank);
            }
            assert_eq!(d.max_score(), d.scores().iter().copied().max().unwrap());
            assert_eq!(d.score(0), d.scores()[0]);
        }
    }

    #[test]
    fn results_are_parallelism_independent_at_every_rank() {
        let g = complete(7, 0.65);
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let base = Decomposition::compute(
                &g,
                &DecompConfig::new(rank, 0.2).with_parallelism(Parallelism::Sequential),
            )
            .unwrap();
            for threads in [2, 8] {
                let par = Decomposition::compute(
                    &g,
                    &DecompConfig::new(rank, 0.2).with_parallelism(Parallelism::fixed(threads)),
                )
                .unwrap();
                assert_eq!(par.scores(), base.scores(), "{rank} x{threads}");
                assert_eq!(par.initial_scores(), base.initial_scores());
                assert_eq!(par.peel_stats(), base.peel_stats());
            }
        }
    }

    #[test]
    fn sweep_matches_independent_runs_at_every_rank() {
        let g = complete(6, 0.7);
        let grid = vec![0.1, 0.3, 0.6, 0.9];
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let sweep = DecompSweep::compute(&g, &SweepConfig::exact(grid.clone()).with_rank(rank))
                .unwrap();
            assert_eq!(sweep.rank(), rank);
            assert_eq!(sweep.grid_len(), grid.len());
            assert_eq!(sweep.support_builds(), 1, "{rank}");
            assert_eq!(sweep.thresholds(), &grid[..]);
            let stats = sweep.peel_stats();
            for (gi, &threshold) in grid.iter().enumerate() {
                let solo = Decomposition::compute(&g, &DecompConfig::new(rank, threshold)).unwrap();
                assert_eq!(
                    sweep.scores_at_index(gi),
                    solo.scores(),
                    "{rank} @ {threshold}"
                );
                assert_eq!(sweep.initial_scores_at_index(gi), solo.initial_scores());
                assert_eq!(&stats[gi], solo.peel_stats());
            }
            assert_eq!(
                sweep.total_dp_calls(),
                stats.iter().map(|s| s.dp_calls).sum::<usize>()
            );
            assert_eq!(sweep.num_elements(), sweep.scores_at_index(0).len());
        }
    }

    #[test]
    fn sweep_rejects_malformed_grids_and_methods() {
        let g = complete(4, 0.5);
        assert!(matches!(
            DecompSweep::compute(&g, &SweepConfig::exact(vec![]).with_rank(Rank::Core)),
            Err(NucleusError::InvalidThetaGrid(_))
        ));
        assert!(matches!(
            DecompSweep::compute(
                &g,
                &SweepConfig::exact(vec![0.5, 0.2]).with_rank(Rank::Truss)
            ),
            Err(NucleusError::InvalidThetaGrid(_))
        ));
        assert!(matches!(
            DecompSweep::compute(
                &g,
                &SweepConfig::approximate(vec![0.5]).with_rank(Rank::Core)
            ),
            Err(NucleusError::UnsupportedMethod {
                rank: "core",
                method: "hybrid",
            })
        ));
        assert!(DecompSweep::compute(&g, &SweepConfig::approximate(vec![0.5])).is_ok());
    }

    #[test]
    fn handle_computations_share_one_support_and_stay_bit_identical() {
        let g = complete(6, 0.7);
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let handle = DecompHandle::build(&g, rank, Parallelism::Auto);
            assert_eq!(handle.rank(), rank);
            assert_eq!(Arc::strong_count(handle.support()), 1);
            let clone = handle.clone();
            assert_eq!(Arc::strong_count(handle.support()), 2);

            // Single-threshold runs off the shared support match
            // from-scratch runs exactly.
            let at = clone.compute_at(&DecompConfig::new(rank, 0.25)).unwrap();
            let solo = Decomposition::compute(&g, &DecompConfig::new(rank, 0.25)).unwrap();
            assert_eq!(at.scores(), solo.scores());
            assert_eq!(at.initial_scores(), solo.initial_scores());
            assert_eq!(at.method_counts(), solo.method_counts());
            assert_eq!(at.peel_stats(), solo.peel_stats());

            // A handle sweep performs zero new builds and matches a
            // from-scratch sweep exactly.
            let config = SweepConfig::exact(vec![0.1, 0.4, 0.8]).with_rank(rank);
            let shared = handle.sweep(&config).unwrap();
            assert_eq!(shared.support_builds(), 0);
            let fresh = DecompSweep::compute(&g, &config).unwrap();
            assert_eq!(fresh.support_builds(), 1);
            for gi in 0..config.thetas.len() {
                assert_eq!(shared.scores_at_index(gi), fresh.scores_at_index(gi));
                assert_eq!(
                    shared.initial_scores_at_index(gi),
                    fresh.initial_scores_at_index(gi)
                );
                assert_eq!(
                    shared.method_counts_at_index(gi),
                    fresh.method_counts_at_index(gi)
                );
                assert_eq!(
                    shared.peel_stats_at_index(gi),
                    fresh.peel_stats_at_index(gi)
                );
            }
        }
    }

    #[test]
    fn handle_rejects_cross_rank_requests() {
        let g = complete(5, 0.6);
        let handle = DecompHandle::build(&g, Rank::Truss, Parallelism::Sequential);
        assert!(matches!(
            handle.compute_at(&DecompConfig::core(0.5)),
            Err(NucleusError::RankMismatch {
                expected: "core",
                got: "truss",
            })
        ));
        assert!(matches!(
            handle.sweep(&SweepConfig::exact(vec![0.5])),
            Err(NucleusError::RankMismatch {
                expected: "nucleus",
                got: "truss",
            })
        ));
    }

    #[test]
    fn sweep_grid_lookups_and_nuclei_queries() {
        let g = complete(5, 0.9);
        let sweep = DecompSweep::compute(&g, &SweepConfig::exact(vec![0.1, 0.5])).unwrap();
        assert_eq!(sweep.grid_index_of(0.5), Some(1));
        assert_eq!(sweep.grid_index_of(0.3), None);
        assert!(sweep.scores_at(0.3).is_none());
        assert!(sweep.initial_scores_at(0.1).is_some());
        assert_eq!(
            sweep.max_score_at(0.1).unwrap(),
            sweep.max_score_at_index(0)
        );
        assert_eq!(
            sweep.require_grid_index(0.3),
            Err(NucleusError::ThresholdOffGrid {
                name: "theta",
                value: 0.3,
            })
        );
        assert!(sweep.nucleus_support().is_some());
        let solo = LocalNucleusDecomposition::compute(
            &g,
            &LocalConfig {
                theta: 0.1,
                method: ScoreMethod::DynamicProgramming,
                parallelism: Parallelism::Auto,
            },
        )
        .unwrap();
        let nuclei = sweep.k_nuclei_at(&g, 0.1, 1).unwrap();
        let expected = solo.k_nuclei(&g, 1);
        assert_eq!(nuclei.len(), expected.len());
        for (a, b) in nuclei.iter().zip(&expected) {
            assert_eq!(a.cliques, b.cliques);
        }
        assert!(matches!(
            sweep.k_nuclei_at(&g, 0.3, 1),
            Err(NucleusError::ThresholdOffGrid { .. })
        ));

        let truss = DecompSweep::compute(&g, &SweepConfig::exact(vec![0.5]).with_rank(Rank::Truss))
            .unwrap();
        assert!(truss.nucleus_support().is_none());
        assert!(matches!(
            truss.k_nuclei_at(&g, 0.5, 1),
            Err(NucleusError::RankMismatch {
                expected: "nucleus",
                got: "truss",
            })
        ));
    }

    #[test]
    fn decomp_config_expands_into_a_sweep_config() {
        let single = DecompConfig::truss(0.5).with_parallelism(Parallelism::Sequential);
        let sweep = single.sweep(vec![0.2, 0.5, 0.9]);
        assert_eq!(sweep.rank, Rank::Truss);
        assert_eq!(sweep.thetas, vec![0.2, 0.5, 0.9]);
        assert_eq!(sweep.method, single.method);
        assert_eq!(sweep.parallelism, Parallelism::Sequential);
        assert!(sweep.validate().is_ok());
    }

    #[test]
    fn apply_updates_matches_a_fresh_sweep_at_every_rank() {
        // Two K4s sharing a vertex plus a pendant edge: several
        // components, triangles and one 4-clique per block.
        let mut b = GraphBuilder::new();
        for &(u, v, p) in &[
            (0u32, 1u32, 0.9),
            (0, 2, 0.8),
            (0, 3, 0.7),
            (1, 2, 0.6),
            (1, 3, 0.5),
            (2, 3, 0.4),
            (3, 4, 0.9),
            (3, 5, 0.8),
            (4, 5, 0.7),
            (4, 6, 0.6),
            (5, 6, 0.5),
            (0, 7, 0.9),
        ] {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build();
        let batch = [
            EdgeUpdate::Insert {
                u: 3,
                v: 6,
                p: 0.45,
            },
            EdgeUpdate::Delete { u: 2, v: 3 },
            EdgeUpdate::Reweight {
                u: 0,
                v: 1,
                p: 0.15,
            },
        ];
        let grid = vec![0.05, 0.2, 0.5];
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let config = SweepConfig::exact(grid.clone()).with_rank(rank);
            let mut sweep = DecompSweep::compute(&g, &config).unwrap();
            let outcome = sweep.apply_updates(&g, &batch).unwrap();
            let report = outcome.report;
            assert_eq!(report.inserted_edges, 1, "{rank}");
            assert_eq!(report.removed_edges, 1);
            assert_eq!(report.reweighted_edges, 1);
            assert_eq!(report.repaired_points, grid.len());
            assert_eq!(report.recomputed_points, 0);
            assert!(report.affected_elements <= report.region_elements);

            let fresh = DecompSweep::compute(&outcome.graph, &config).unwrap();
            for (gi, theta) in grid.iter().enumerate() {
                assert_eq!(
                    sweep.scores_at_index(gi),
                    fresh.scores_at_index(gi),
                    "{rank} @ {theta}"
                );
                assert_eq!(
                    sweep.initial_scores_at_index(gi),
                    fresh.initial_scores_at_index(gi)
                );
                assert_eq!(
                    sweep.method_counts_at_index(gi),
                    fresh.method_counts_at_index(gi)
                );
            }

            // The repair path must beat a rebuild on score evaluations:
            // a rebuild spends grid·n initial evaluations plus the full
            // peels' dp_calls.
            let rebuild_calls: usize = grid.len() * fresh.num_elements()
                + fresh.peel_stats().iter().map(|s| s.dp_calls).sum::<usize>();
            assert!(
                report.repair_dp_calls <= rebuild_calls,
                "{rank}: repair {} > rebuild {rebuild_calls}",
                report.repair_dp_calls
            );

            // A second batch applies on top of the updated graph.
            let undo = [EdgeUpdate::Insert { u: 2, v: 3, p: 0.4 }];
            let outcome2 = sweep.apply_updates(&outcome.graph, &undo).unwrap();
            let fresh2 = DecompSweep::compute(&outcome2.graph, &config).unwrap();
            for gi in 0..grid.len() {
                assert_eq!(sweep.scores_at_index(gi), fresh2.scores_at_index(gi));
            }
        }
    }

    #[test]
    fn apply_updates_is_thread_count_independent() {
        let g = complete(7, 0.65);
        let batch = [
            EdgeUpdate::Delete { u: 0, v: 1 },
            EdgeUpdate::Reweight { u: 2, v: 3, p: 0.2 },
        ];
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let config = SweepConfig::exact(vec![0.1, 0.4]).with_rank(rank);
            let mut base = DecompSweep::compute(
                &g,
                &SweepConfig {
                    parallelism: Parallelism::Sequential,
                    ..config.clone()
                },
            )
            .unwrap();
            let base_outcome = base.apply_updates(&g, &batch).unwrap();
            for threads in [2, 8] {
                let mut par_sweep = DecompSweep::compute(
                    &g,
                    &SweepConfig {
                        parallelism: Parallelism::fixed(threads),
                        ..config.clone()
                    },
                )
                .unwrap();
                let outcome = par_sweep.apply_updates(&g, &batch).unwrap();
                assert_eq!(outcome.report, base_outcome.report, "{rank} x{threads}");
                for gi in 0..2 {
                    assert_eq!(
                        par_sweep.scores_at_index(gi),
                        base.scores_at_index(gi),
                        "{rank} x{threads}"
                    );
                    assert_eq!(
                        par_sweep.peel_stats_at_index(gi),
                        base.peel_stats_at_index(gi),
                        "{rank} x{threads}: repair PeelStats must be deterministic"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_updates_rejects_bad_batches_atomically() {
        let g = complete(5, 0.6);
        let config = SweepConfig::exact(vec![0.3]).with_rank(Rank::Truss);
        let mut sweep = DecompSweep::compute(&g, &config).unwrap();
        let before: Vec<u32> = sweep.scores_at_index(0).to_vec();
        // Second entry references an off-graph vertex: the whole batch
        // must be rejected with the typed error and index.
        let batch = [
            EdgeUpdate::Delete { u: 0, v: 1 },
            EdgeUpdate::Insert {
                u: 0,
                v: 99,
                p: 0.5,
            },
        ];
        match sweep.apply_updates(&g, &batch) {
            Err(NucleusError::Update(ugraph::UpdateError::OffGraphEndpoint {
                index: 1,
                vertex: 99,
                ..
            })) => {}
            other => panic!("expected OffGraphEndpoint, got {other:?}"),
        }
        assert_eq!(sweep.scores_at_index(0), &before[..], "sweep untouched");
    }

    #[test]
    fn hybrid_sweeps_recompute_points_on_update() {
        let g = complete(6, 0.7);
        let config = SweepConfig::approximate(vec![0.2, 0.6]);
        let mut sweep = DecompSweep::compute(&g, &config).unwrap();
        let batch = [EdgeUpdate::Delete { u: 0, v: 1 }];
        let outcome = sweep.apply_updates(&g, &batch).unwrap();
        assert_eq!(outcome.report.repaired_points, 0);
        assert_eq!(outcome.report.recomputed_points, 2);
        let fresh = DecompSweep::compute(&outcome.graph, &config).unwrap();
        for gi in 0..2 {
            assert_eq!(sweep.scores_at_index(gi), fresh.scores_at_index(gi));
            assert_eq!(
                sweep.method_counts_at_index(gi),
                fresh.method_counts_at_index(gi)
            );
            assert_eq!(
                sweep.peel_stats_at_index(gi),
                fresh.peel_stats_at_index(gi),
                "recomputed points carry full-run stats"
            );
        }
    }

    #[test]
    fn handle_updates_produce_a_repaired_handle() {
        let g = complete(6, 0.7);
        let handle = DecompHandle::build(&g, Rank::Truss, Parallelism::Sequential);
        let batch = [EdgeUpdate::Delete { u: 0, v: 1 }];
        let update = handle
            .apply_updates(&g, &batch, Parallelism::Sequential)
            .unwrap();
        assert_eq!(update.report.removed_edges, 1);
        assert_eq!(update.report.repaired_points, 0);
        assert_eq!(update.graph.num_edges(), g.num_edges() - 1);
        // Queries off the repaired handle match a fresh build.
        let config = DecompConfig::truss(0.3);
        let repaired = update.handle.compute_at(&config).unwrap();
        let fresh = Decomposition::compute(&update.graph, &config).unwrap();
        assert_eq!(repaired.scores(), fresh.scores());
        assert_eq!(repaired.initial_scores(), fresh.initial_scores());
        assert_eq!(repaired.peel_stats(), fresh.peel_stats());
    }

    #[test]
    fn scores_monotone_in_threshold_at_every_rank() {
        let g = complete(6, 0.6);
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let sweep = DecompSweep::compute(
                &g,
                &SweepConfig::exact(vec![0.05, 0.2, 0.5, 0.8]).with_rank(rank),
            )
            .unwrap();
            for gi in 1..sweep.grid_len() {
                for t in 0..sweep.num_elements() {
                    assert!(
                        sweep.scores_at_index(gi)[t] <= sweep.scores_at_index(gi - 1)[t],
                        "{rank}: scores must be non-increasing in the threshold"
                    );
                }
            }
        }
    }
}
