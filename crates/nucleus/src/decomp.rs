//! Unified (r,s)-decomposition surface.
//!
//! The paper's ℓ-NuDecomp is the (3,4) instance of the (r,s)-nucleus
//! family (Sarıyüce et al.); the probabilistic (k,η)-core (Bonchi et
//! al.) is (1,2) and the local (k,γ)-truss (Huang et al.) is (2,3) —
//! the same peel-with-Poisson-binomial-DP shape at every rank.  This
//! module is the one entry point that computes any of them on the
//! shared engine of [`ugraph::rs`]:
//!
//! * [`Rank`] selects the instance,
//! * [`DecompConfig`] is the builder-style configuration (rank,
//!   threshold, scoring method, parallelism), validated into the typed
//!   errors of [`crate::error`],
//! * [`Decomposition::compute`] runs one threshold,
//! * [`DecompSweep::compute`] amortizes one support build across a whole
//!   threshold grid, for any rank.
//!
//! Outputs are **bit-identical** to the historical per-rank entry points
//! (`probdecomp::EtaCoreDecomposition`, `probdecomp::GammaTrussDecomposition`,
//! [`LocalNucleusDecomposition`]): the supports gather the same floats in
//! the same order, the DP is the same arithmetic, and the deferred peel
//! reaches the same fixpoint as the frozen eager references (the DP
//! scorer is monotone under cell removal, which makes the peeling
//! fixpoint schedule-independent).  Differential proptests in
//! `tests/rs_engine_equivalence.rs` enforce this per rank.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use ugraph::rs::{self, CoreSupport, PeelStats, RsSupport, TailScratch, TrussSupport};
use ugraph::{par, Parallelism, UncertainGraph};

use crate::approx::ApproxMethod;
use crate::config::{LocalConfig, ScoreMethod, SweepConfig};
use crate::error::{NucleusError, Result};
use crate::local::{LocalNucleusDecomposition, ThetaSweep};

/// Which member of the (r,s)-nucleus family to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rank {
    /// (1,2): vertices scored by incident edges — the probabilistic
    /// (k,η)-core.
    Core,
    /// (2,3): edges scored by triangles — the local probabilistic
    /// (k,γ)-truss.
    Truss,
    /// (3,4): triangles scored by 4-cliques — the paper's ℓ-NuDecomp.
    Nucleus,
}

impl Rank {
    /// The element clique size `r`.
    pub fn r(&self) -> usize {
        match self {
            Rank::Core => 1,
            Rank::Truss => 2,
            Rank::Nucleus => 3,
        }
    }

    /// The cell clique size `s = r + 1`.
    pub fn s(&self) -> usize {
        self.r() + 1
    }

    /// Lower-case name (`core`, `truss`, `nucleus`), as accepted by
    /// [`FromStr`] and emitted in bench reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Rank::Core => "core",
            Rank::Truss => "truss",
            Rank::Nucleus => "nucleus",
        }
    }

    /// Conventional name of this rank's probability threshold: `eta`
    /// for the core, `gamma` for the truss, `theta` for the nucleus.
    pub fn threshold_name(&self) -> &'static str {
        match self {
            Rank::Core => "eta",
            Rank::Truss => "gamma",
            Rank::Nucleus => "theta",
        }
    }

    /// What the peeled elements are (`vertices`, `edges`, `triangles`).
    pub fn element_name(&self) -> &'static str {
        match self {
            Rank::Core => "vertices",
            Rank::Truss => "edges",
            Rank::Nucleus => "triangles",
        }
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rank name that [`Rank::from_str`] did not recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRankError(pub String);

impl fmt::Display for UnknownRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown rank '{}' (expected 'core', 'truss' or 'nucleus')",
            self.0
        )
    }
}

impl std::error::Error for UnknownRankError {}

impl FromStr for Rank {
    type Err = UnknownRankError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "core" => Ok(Rank::Core),
            "truss" => Ok(Rank::Truss),
            "nucleus" => Ok(Rank::Nucleus),
            other => Err(UnknownRankError(other.to_string())),
        }
    }
}

/// Builder-style configuration of a single-threshold (r,s)
/// decomposition.
///
/// Construct with [`core`](Self::core) / [`truss`](Self::truss) /
/// [`nucleus`](Self::nucleus), refine with the `with_*` methods, and
/// hand to [`Decomposition::compute`] — which validates into the typed
/// errors of [`NucleusError`] before touching the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompConfig {
    /// The (r,s) instance to compute.
    pub rank: Rank,
    /// The probability threshold (η, γ or θ depending on the rank),
    /// required in `(0, 1]`.
    pub threshold: f64,
    /// How scores are computed.  [`ScoreMethod::Hybrid`] is calibrated
    /// for the (3,4) rank and rejected elsewhere.
    pub method: ScoreMethod,
    /// Parallelism of the support build and initial scoring pass.
    /// Results are bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl DecompConfig {
    fn new(rank: Rank, threshold: f64) -> Self {
        DecompConfig {
            rank,
            threshold,
            method: ScoreMethod::DynamicProgramming,
            parallelism: Parallelism::Auto,
        }
    }

    /// Probabilistic (k,η)-core configuration.
    pub fn core(eta: f64) -> Self {
        Self::new(Rank::Core, eta)
    }

    /// Local probabilistic (k,γ)-truss configuration.
    pub fn truss(gamma: f64) -> Self {
        Self::new(Rank::Truss, gamma)
    }

    /// ℓ-NuDecomp configuration (equivalent to
    /// [`LocalConfig::exact`]).
    pub fn nucleus(theta: f64) -> Self {
        Self::new(Rank::Nucleus, theta)
    }

    /// Sets the scoring method ([`ScoreMethod::Hybrid`] is only valid at
    /// [`Rank::Nucleus`]; validation rejects it elsewhere).
    pub fn with_method(mut self, method: ScoreMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the parallelism of the support build and scoring passes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Validates the threshold range and the method/rank combination.
    pub fn validate(&self) -> Result<()> {
        if !(self.threshold > 0.0 && self.threshold <= 1.0) || self.threshold.is_nan() {
            return Err(NucleusError::InvalidThreshold {
                name: self.rank.threshold_name(),
                value: self.threshold,
            });
        }
        if self.rank != Rank::Nucleus && matches!(self.method, ScoreMethod::Hybrid(_)) {
            return Err(NucleusError::UnsupportedMethod {
                rank: self.rank.as_str(),
                method: "hybrid",
            });
        }
        // Delegate hybrid-hyperparameter checks (and re-check θ) to the
        // rank-3 config.
        self.local_config().validate().map_err(|e| match e {
            // Re-label the threshold under this rank's conventional name.
            NucleusError::InvalidThreshold { value, .. } if value == self.threshold => {
                NucleusError::InvalidThreshold {
                    name: self.rank.threshold_name(),
                    value,
                }
            }
            other => other,
        })
    }

    /// The equivalent rank-3 [`LocalConfig`] (used for the nucleus path
    /// and for hyperparameter validation).
    fn local_config(&self) -> LocalConfig {
        LocalConfig {
            theta: self.threshold,
            method: self.method,
            parallelism: self.parallelism,
        }
    }
}

/// Result of a unified (r,s) decomposition: the decomposition number of
/// every element (core number, truss number or ℓ-nucleusness, indexed by
/// vertex, edge or triangle id), plus the engine's deterministic perf
/// counters.
#[derive(Debug, Clone)]
pub struct Decomposition {
    config: DecompConfig,
    initial_scores: Vec<u32>,
    scores: Vec<u32>,
    method_counts: HashMap<ApproxMethod, usize>,
    stats: PeelStats,
}

impl Decomposition {
    /// Computes the decomposition selected by `config`, validating the
    /// configuration first.
    pub fn compute(graph: &UncertainGraph, config: &DecompConfig) -> Result<Self> {
        config.validate()?;
        match config.rank {
            Rank::Nucleus => {
                let local = LocalNucleusDecomposition::compute(graph, &config.local_config())?;
                Ok(Decomposition {
                    config: *config,
                    initial_scores: local.initial_scores().to_vec(),
                    scores: local.scores().to_vec(),
                    method_counts: local.method_counts().clone(),
                    stats: *local.peel_stats(),
                })
            }
            Rank::Core => {
                let support = CoreSupport::build(graph);
                Ok(Self::run_generic(config, &support))
            }
            Rank::Truss => {
                let support = TrussSupport::build(graph, config.parallelism);
                Ok(Self::run_generic(config, &support))
            }
        }
    }

    /// Runs the generic engine over a prebuilt support: parallel initial
    /// DP pass (ordered merge, so bit-identical for every thread count),
    /// then the deferred bucket-queue peel.
    fn run_generic<S: RsSupport + Sync>(config: &DecompConfig, support: &S) -> Self {
        let n = support.num_elements();
        let threshold = config.threshold;
        let scored: Vec<(u32, usize)> =
            par::par_map_init(config.parallelism, n, TailScratch::new, |scratch, t| {
                let k = scratch.score(support, t as u32, threshold, |_| true);
                (k, scratch.peak_bytes())
            });
        let mut kappa = Vec::with_capacity(n);
        let mut init_peak = 0usize;
        for (k, peak) in scored {
            kappa.push(k);
            // Per-item values are running per-chunk maxima; the overall
            // maximum is independent of the chunk partition.
            init_peak = init_peak.max(peak);
        }
        let initial_scores = kappa.clone();

        let mut scratch = TailScratch::new();
        let (scores, mut stats) = rs::peel_deferred(support, kappa, |t, cell_dead| {
            scratch.score(support, t, threshold, |c| !cell_dead[c as usize])
        });
        stats.peak_scratch_bytes = scratch.peak_bytes().max(init_peak);

        let mut method_counts = HashMap::new();
        method_counts.insert(ApproxMethod::DynamicProgramming, n);
        Decomposition {
            config: *config,
            initial_scores,
            scores,
            method_counts,
            stats,
        }
    }

    /// The validated configuration the decomposition ran with.
    pub fn config(&self) -> &DecompConfig {
        &self.config
    }

    /// The rank that was computed.
    pub fn rank(&self) -> Rank {
        self.config.rank
    }

    /// Decomposition number of element `id` (vertex, edge or triangle id
    /// depending on the rank).
    pub fn score(&self, id: u32) -> u32 {
        self.scores[id as usize]
    }

    /// Decomposition number of every element, indexed by element id.
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The initial scores (before peeling), indexed by element id.
    pub fn initial_scores(&self) -> &[u32] {
        &self.initial_scores
    }

    /// The largest decomposition number.
    pub fn max_score(&self) -> u32 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Number of peeled elements.
    pub fn num_elements(&self) -> usize {
        self.scores.len()
    }

    /// Evaluation method of each element's initial score computation.
    pub fn method_counts(&self) -> &HashMap<ApproxMethod, usize> {
        &self.method_counts
    }

    /// Deterministic perf counters of the peeling engine.
    pub fn peel_stats(&self) -> &PeelStats {
        &self.stats
    }
}

/// A threshold sweep at any rank: one support build amortized across a
/// whole grid, per-point scores and [`PeelStats`].
///
/// At [`Rank::Nucleus`] this delegates to [`ThetaSweep`] (the paper's
/// amortized index); at the other ranks it runs the generic engine per
/// grid point over the shared support.  Every per-point result is
/// bit-identical to an independent [`Decomposition::compute`] at that
/// threshold.
#[derive(Debug, Clone)]
pub struct DecompSweep {
    rank: Rank,
    thresholds: Vec<f64>,
    points: Vec<SweepPoint>,
    support_builds: usize,
}

#[derive(Debug, Clone)]
struct SweepPoint {
    scores: Vec<u32>,
    initial_scores: Vec<u32>,
    stats: PeelStats,
}

impl DecompSweep {
    /// Sweeps `config.thetas` (interpreted as the rank's threshold grid:
    /// η, γ or θ values) at the given rank.  The grid is validated like a
    /// θ grid — non-empty, finite, in `(0, 1]`, strictly ascending — and
    /// the method/rank combination like a [`DecompConfig`].
    pub fn compute(graph: &UncertainGraph, rank: Rank, config: &SweepConfig) -> Result<Self> {
        config.validate()?;
        if rank != Rank::Nucleus && matches!(config.method, ScoreMethod::Hybrid(_)) {
            return Err(NucleusError::UnsupportedMethod {
                rank: rank.as_str(),
                method: "hybrid",
            });
        }
        match rank {
            Rank::Nucleus => {
                let index = ThetaSweep::compute(graph, config)?;
                let points = (0..index.grid_len())
                    .map(|gi| SweepPoint {
                        scores: index.scores_at_index(gi).to_vec(),
                        initial_scores: index.initial_scores_at_index(gi).to_vec(),
                        stats: index.peel_stats()[gi],
                    })
                    .collect();
                Ok(DecompSweep {
                    rank,
                    thresholds: config.thetas.clone(),
                    points,
                    support_builds: index.support_builds(),
                })
            }
            Rank::Core => {
                let support = CoreSupport::build(graph);
                Ok(Self::sweep_generic(rank, config, &support))
            }
            Rank::Truss => {
                let support = TrussSupport::build(graph, config.parallelism);
                Ok(Self::sweep_generic(rank, config, &support))
            }
        }
    }

    fn sweep_generic<S: RsSupport + Sync>(rank: Rank, config: &SweepConfig, support: &S) -> Self {
        let grid_len = config.thetas.len();
        // Parallelize across grid points when there are several; inside a
        // grid-point worker the scoring runs sequentially (mirrors
        // ThetaSweep's schedule, and results are schedule-independent).
        let inner = if grid_len >= 2 {
            Parallelism::Sequential
        } else {
            config.parallelism
        };
        let points: Vec<SweepPoint> = par::par_map(config.parallelism, grid_len, |gi| {
            let point_config = DecompConfig {
                rank,
                threshold: config.thetas[gi],
                method: config.method,
                parallelism: inner,
            };
            let d = Decomposition::run_generic(&point_config, support);
            SweepPoint {
                scores: d.scores,
                initial_scores: d.initial_scores,
                stats: d.stats,
            }
        });
        DecompSweep {
            rank,
            thresholds: config.thetas.clone(),
            points,
            support_builds: 1,
        }
    }

    /// The rank the sweep was computed at.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The threshold grid, sorted ascending.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Number of grid points.
    pub fn grid_len(&self) -> usize {
        self.points.len()
    }

    /// Number of peeled elements (shared by every grid point).
    pub fn num_elements(&self) -> usize {
        self.points.first().map_or(0, |p| p.scores.len())
    }

    /// Support builds the engine performed — pinned to 1 by the CI perf
    /// gate, the whole point of the sweep.
    pub fn support_builds(&self) -> usize {
        self.support_builds
    }

    /// Decomposition numbers at grid point `index`.
    pub fn scores_at_index(&self, index: usize) -> &[u32] {
        &self.points[index].scores
    }

    /// Initial scores at grid point `index`.
    pub fn initial_scores_at_index(&self, index: usize) -> &[u32] {
        &self.points[index].initial_scores
    }

    /// Peeling perf counters of every grid point, in grid order.
    pub fn peel_stats(&self) -> Vec<PeelStats> {
        self.points.iter().map(|p| p.stats).collect()
    }

    /// Sum of peeling-time score recomputations across the grid.
    pub fn total_dp_calls(&self) -> usize {
        self.points.iter().map(|p| p.stats.dp_calls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn rank_metadata() {
        assert_eq!(Rank::Core.r(), 1);
        assert_eq!(Rank::Core.s(), 2);
        assert_eq!(Rank::Truss.r(), 2);
        assert_eq!(Rank::Nucleus.s(), 4);
        assert_eq!(Rank::Truss.threshold_name(), "gamma");
        assert_eq!(Rank::Nucleus.to_string(), "nucleus");
        assert_eq!(Rank::Core.element_name(), "vertices");
        assert_eq!("truss".parse::<Rank>(), Ok(Rank::Truss));
        let err = "triangle".parse::<Rank>().unwrap_err();
        assert!(err.to_string().contains("unknown rank 'triangle'"));
    }

    #[test]
    fn config_validation_uses_rank_specific_threshold_names() {
        for (config, name) in [
            (DecompConfig::core(0.0), "eta"),
            (DecompConfig::truss(1.5), "gamma"),
            (DecompConfig::nucleus(f64::NAN), "theta"),
        ] {
            match config.validate() {
                Err(NucleusError::InvalidThreshold { name: got, .. }) => {
                    assert_eq!(got, name)
                }
                other => panic!("expected InvalidThreshold, got {other:?}"),
            }
        }
    }

    #[test]
    fn hybrid_method_is_nucleus_only() {
        let hybrid = ScoreMethod::Hybrid(crate::config::ApproxThresholds::default());
        assert_eq!(
            DecompConfig::core(0.5).with_method(hybrid).validate(),
            Err(NucleusError::UnsupportedMethod {
                rank: "core",
                method: "hybrid",
            })
        );
        assert_eq!(
            DecompConfig::truss(0.5).with_method(hybrid).validate(),
            Err(NucleusError::UnsupportedMethod {
                rank: "truss",
                method: "hybrid",
            })
        );
        assert!(DecompConfig::nucleus(0.5)
            .with_method(hybrid)
            .validate()
            .is_ok());
    }

    #[test]
    fn certain_k5_has_known_core_truss_nucleus_numbers() {
        let g = complete(5, 1.0);
        let core = Decomposition::compute(&g, &DecompConfig::core(0.9)).unwrap();
        assert_eq!(core.rank(), Rank::Core);
        assert!(core.scores().iter().all(|&s| s == 4), "{:?}", core.scores());
        let truss = Decomposition::compute(&g, &DecompConfig::truss(0.9)).unwrap();
        assert!(truss.scores().iter().all(|&s| s == 3));
        let nucleus = Decomposition::compute(&g, &DecompConfig::nucleus(0.9)).unwrap();
        assert!(nucleus.scores().iter().all(|&s| s == 2));
        assert_eq!(core.num_elements(), 5);
        assert_eq!(truss.num_elements(), 10);
        assert_eq!(nucleus.num_elements(), 10);
    }

    #[test]
    fn nucleus_rank_matches_local_decomposition_bitwise() {
        let g = complete(6, 0.7);
        let unified = Decomposition::compute(&g, &DecompConfig::nucleus(0.2)).unwrap();
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        assert_eq!(unified.scores(), local.scores());
        assert_eq!(unified.initial_scores(), local.initial_scores());
        assert_eq!(unified.peel_stats(), local.peel_stats());
        assert_eq!(unified.method_counts(), local.method_counts());
    }

    #[test]
    fn initial_scores_bound_final_scores_at_every_rank() {
        let g = complete(6, 0.6);
        for config in [
            DecompConfig::core(0.3),
            DecompConfig::truss(0.3),
            DecompConfig::nucleus(0.3),
        ] {
            let d = Decomposition::compute(&g, &config).unwrap();
            assert_eq!(
                d.method_counts()[&ApproxMethod::DynamicProgramming],
                d.num_elements()
            );
            for t in 0..d.num_elements() {
                assert!(d.scores()[t] <= d.initial_scores()[t], "{:?}", config.rank);
            }
            assert_eq!(d.max_score(), d.scores().iter().copied().max().unwrap());
            assert_eq!(d.score(0), d.scores()[0]);
        }
    }

    #[test]
    fn results_are_parallelism_independent_at_every_rank() {
        let g = complete(7, 0.65);
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let base = Decomposition::compute(
                &g,
                &DecompConfig::new(rank, 0.2).with_parallelism(Parallelism::Sequential),
            )
            .unwrap();
            for threads in [2, 8] {
                let par = Decomposition::compute(
                    &g,
                    &DecompConfig::new(rank, 0.2).with_parallelism(Parallelism::fixed(threads)),
                )
                .unwrap();
                assert_eq!(par.scores(), base.scores(), "{rank} x{threads}");
                assert_eq!(par.initial_scores(), base.initial_scores());
                assert_eq!(par.peel_stats(), base.peel_stats());
            }
        }
    }

    #[test]
    fn sweep_matches_independent_runs_at_every_rank() {
        let g = complete(6, 0.7);
        let grid = vec![0.1, 0.3, 0.6, 0.9];
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let sweep = DecompSweep::compute(&g, rank, &SweepConfig::exact(grid.clone())).unwrap();
            assert_eq!(sweep.rank(), rank);
            assert_eq!(sweep.grid_len(), grid.len());
            assert_eq!(sweep.support_builds(), 1, "{rank}");
            assert_eq!(sweep.thresholds(), &grid[..]);
            let stats = sweep.peel_stats();
            for (gi, &threshold) in grid.iter().enumerate() {
                let solo = Decomposition::compute(&g, &DecompConfig::new(rank, threshold)).unwrap();
                assert_eq!(
                    sweep.scores_at_index(gi),
                    solo.scores(),
                    "{rank} @ {threshold}"
                );
                assert_eq!(sweep.initial_scores_at_index(gi), solo.initial_scores());
                assert_eq!(&stats[gi], solo.peel_stats());
            }
            assert_eq!(
                sweep.total_dp_calls(),
                stats.iter().map(|s| s.dp_calls).sum::<usize>()
            );
            assert_eq!(sweep.num_elements(), sweep.scores_at_index(0).len());
        }
    }

    #[test]
    fn sweep_rejects_malformed_grids_and_methods() {
        let g = complete(4, 0.5);
        assert!(matches!(
            DecompSweep::compute(&g, Rank::Core, &SweepConfig::exact(vec![])),
            Err(NucleusError::InvalidThetaGrid(_))
        ));
        assert!(matches!(
            DecompSweep::compute(&g, Rank::Truss, &SweepConfig::exact(vec![0.5, 0.2])),
            Err(NucleusError::InvalidThetaGrid(_))
        ));
        assert!(matches!(
            DecompSweep::compute(&g, Rank::Core, &SweepConfig::approximate(vec![0.5])),
            Err(NucleusError::UnsupportedMethod {
                rank: "core",
                method: "hybrid",
            })
        ));
        assert!(
            DecompSweep::compute(&g, Rank::Nucleus, &SweepConfig::approximate(vec![0.5])).is_ok()
        );
    }

    #[test]
    fn scores_monotone_in_threshold_at_every_rank() {
        let g = complete(6, 0.6);
        for rank in [Rank::Core, Rank::Truss, Rank::Nucleus] {
            let sweep =
                DecompSweep::compute(&g, rank, &SweepConfig::exact(vec![0.05, 0.2, 0.5, 0.8]))
                    .unwrap();
            for gi in 1..sweep.grid_len() {
                for t in 0..sweep.num_elements() {
                    assert!(
                        sweep.scores_at_index(gi)[t] <= sweep.scores_at_index(gi - 1)[t],
                        "{rank}: scores must be non-increasing in the threshold"
                    );
                }
            }
        }
    }
}
