//! Binomial approximation of the triangle-support distribution
//! (Section 5.3, Equations 14–15).
//!
//! When the completion probabilities `Pr(E_i)` are close to each other,
//! the Poisson-binomial sum ζ is well approximated by a Binomial
//! distribution with `n = c` trials and success probability `p = μ / n`
//! (Ehm 1991).  Tail probabilities follow the multiplicative recurrence of
//! Equation 15, giving `O(c)` evaluation.

/// `Pr[B(n, p) = k]`, computed stably through logarithms for large `n`.
pub fn pmf(n: usize, p: f64, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_choose = super::poisson::ln_factorial(n)
        - super::poisson::ln_factorial(k)
        - super::poisson::ln_factorial(n - k);
    (ln_choose + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// `Pr[B(n, p) ≥ k]`.
pub fn tail(n: usize, p: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Accumulate the CDF below k with the recurrence of Equation 15.
    let mut cdf = 0.0;
    let mut mass = pmf(n, p, 0);
    for j in 0..k {
        if j > 0 {
            mass = mass * ((n - j + 1) as f64 * p) / (j as f64 * (1.0 - p));
        }
        cdf += mass;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// The largest `k ≤ n` such that `triangle_prob · Pr[B(n, p) ≥ k] ≥ theta`
/// where `n` is the number of completion events and `p = μ / n`.
pub fn max_k(triangle_prob: f64, completion_probs: &[f64], theta: f64) -> u32 {
    if triangle_prob < theta {
        return 0;
    }
    let n = completion_probs.len();
    if n == 0 {
        return 0;
    }
    let p = super::stats::mean(completion_probs) / n as f64;
    if p >= 1.0 {
        return n as u32;
    }
    let mut best = 0u32;
    let mut cdf = 0.0f64;
    let mut mass = pmf(n, p, 0);
    for k in 0..=n {
        let tail_k = (1.0 - cdf).clamp(0.0, 1.0);
        if triangle_prob * tail_k >= theta {
            best = k as u32;
        } else {
            break;
        }
        if k < n {
            if k > 0 {
                mass = mass * ((n - k + 1) as f64 * p) / (k as f64 * (1.0 - p));
            }
            cdf += mass;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::dp;

    fn choose(n: usize, k: usize) -> f64 {
        if k > n {
            return 0.0;
        }
        let mut r = 1.0;
        for i in 0..k {
            r = r * (n - i) as f64 / (i + 1) as f64;
        }
        r
    }

    #[test]
    fn pmf_matches_direct_formula() {
        let (n, p): (usize, f64) = (10, 0.3);
        for k in 0..=n {
            let direct = choose(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
            assert!((pmf(n, p, k) - direct).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn pmf_degenerate_p() {
        assert_eq!(pmf(5, 0.0, 0), 1.0);
        assert_eq!(pmf(5, 0.0, 1), 0.0);
        assert_eq!(pmf(5, 1.0, 5), 1.0);
        assert_eq!(pmf(5, 1.0, 4), 0.0);
        assert_eq!(pmf(5, 0.5, 6), 0.0);
    }

    #[test]
    fn tail_boundaries() {
        assert_eq!(tail(10, 0.4, 0), 1.0);
        assert_eq!(tail(10, 0.4, 11), 0.0);
        assert!((tail(10, 0.4, 10) - 0.4f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn tail_complements_cdf() {
        let (n, p): (usize, f64) = (12, 0.6);
        for k in 1..=n {
            let cdf: f64 = (0..k).map(|j| pmf(n, p, j)).sum();
            assert!((tail(n, p, k) - (1.0 - cdf)).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn exact_for_identical_completion_probs() {
        // With identical Pr(E_i), the Binomial approximation is exact.
        let probs = vec![0.35; 15];
        let exact = dp::support_tail(&probs);
        for (k, &e) in exact.iter().enumerate() {
            assert!((tail(15, 0.35, k) - e).abs() < 1e-9, "k={k}");
        }
        for theta in [0.05, 0.2, 0.5, 0.8] {
            assert_eq!(
                max_k(0.9, &probs, theta),
                dp::max_k(0.9, &probs, theta),
                "theta={theta}"
            );
        }
    }

    #[test]
    fn max_k_zero_and_full_cases() {
        assert_eq!(max_k(0.05, &[0.9; 4], 0.1), 0);
        assert_eq!(max_k(1.0, &[], 0.5), 0);
        assert_eq!(max_k(1.0, &[1.0, 1.0, 1.0], 0.9), 3);
    }

    #[test]
    fn max_k_monotone_in_theta() {
        let probs = [0.5, 0.55, 0.45, 0.5, 0.52];
        let mut last = u32::MAX;
        for theta in [0.05, 0.1, 0.3, 0.6, 0.9] {
            let k = max_k(0.95, &probs, theta);
            assert!(k <= last);
            last = k;
        }
    }
}
