//! Statistical approximations of the triangle-support distribution and
//! the hybrid selection framework of Section 5.3.
//!
//! Every approximation answers the same two questions as the exact DP in
//! `O(c)` instead of `O(c²)` time:
//!
//! * the tail probability `Pr[ζ ≥ k]` for a given `k`, and
//! * the largest `k` such that `Pr(△) · Pr[ζ ≥ k] ≥ θ`.
//!
//! [`select_method`] implements the conditions (1)–(5) of the paper,
//! parameterized by the hyperparameters `A, B, C, D`
//! ([`crate::config::ApproxThresholds`]); [`hybrid_max_k`] applies the
//! selected method, falling back to dynamic programming when no condition
//! holds.

pub mod binomial;
pub mod clt;
pub mod poisson;
pub mod stats;
pub mod translated_poisson;

use crate::config::ApproxThresholds;
use crate::local::dp;

/// The method used to evaluate a triangle's support distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproxMethod {
    /// Plain Poisson approximation (Le Cam).
    Poisson,
    /// Translated Poisson approximation.
    TranslatedPoisson,
    /// Binomial approximation (Ehm).
    Binomial,
    /// Lyapunov CLT / normal approximation.
    Clt,
    /// Exact dynamic programming (fallback).
    DynamicProgramming,
}

impl ApproxMethod {
    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ApproxMethod::Poisson => "Poisson",
            ApproxMethod::TranslatedPoisson => "TranslatedPoisson",
            ApproxMethod::Binomial => "Binomial",
            ApproxMethod::Clt => "CLT",
            ApproxMethod::DynamicProgramming => "DP",
        }
    }
}

impl std::fmt::Display for ApproxMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Selects the approximation method for a triangle with the given
/// completion probabilities, following conditions (1)–(5) of Section 5.3.
pub fn select_method(completion_probs: &[f64], thresholds: &ApproxThresholds) -> ApproxMethod {
    let c = completion_probs.len();
    // (1) Large support count: CLT.
    if c >= thresholds.a {
        return ApproxMethod::Clt;
    }
    // (2) Small support count and small completion probabilities: Poisson.
    if c < thresholds.b && completion_probs.iter().all(|&p| p < thresholds.c_max) {
        return ApproxMethod::Poisson;
    }
    // (3) Large sum of squared probabilities: Translated Poisson.
    if stats::sum_of_squares(completion_probs) > 1.0 {
        return ApproxMethod::TranslatedPoisson;
    }
    // (4) Variance close to the Binomial's: Binomial.
    if stats::binomial_variance_ratio(completion_probs) >= thresholds.d {
        return ApproxMethod::Binomial;
    }
    // (5) Fallback: exact DP.
    ApproxMethod::DynamicProgramming
}

/// Tail probability `Pr[ζ ≥ k]` of the support distribution evaluated with
/// an explicit method.  Used by the accuracy experiments (Figure 6) to
/// compare approximations against the exact DP.
pub fn tail_probability(method: ApproxMethod, completion_probs: &[f64], k: usize) -> f64 {
    match method {
        ApproxMethod::Poisson => poisson::tail(stats::mean(completion_probs), k),
        ApproxMethod::TranslatedPoisson => translated_poisson::TranslatedPoisson::from_moments(
            stats::mean(completion_probs),
            stats::variance(completion_probs),
        )
        .tail(k),
        ApproxMethod::Binomial => {
            let n = completion_probs.len();
            if n == 0 {
                return if k == 0 { 1.0 } else { 0.0 };
            }
            binomial::tail(n, stats::mean(completion_probs) / n as f64, k)
        }
        ApproxMethod::Clt => clt::tail(
            stats::mean(completion_probs),
            stats::variance(completion_probs),
            k,
        ),
        ApproxMethod::DynamicProgramming => {
            if k > completion_probs.len() {
                0.0
            } else {
                dp::support_tail(completion_probs)[k]
            }
        }
    }
}

/// The largest `k` such that `triangle_prob · Pr[ζ ≥ k] ≥ theta`,
/// evaluated with an explicit method.
pub fn max_k_with_method(
    method: ApproxMethod,
    triangle_prob: f64,
    completion_probs: &[f64],
    theta: f64,
) -> u32 {
    match method {
        ApproxMethod::Poisson => poisson::max_k(
            triangle_prob,
            stats::mean(completion_probs),
            completion_probs.len(),
            theta,
        ),
        ApproxMethod::TranslatedPoisson => {
            translated_poisson::max_k(triangle_prob, completion_probs, theta)
        }
        ApproxMethod::Binomial => binomial::max_k(triangle_prob, completion_probs, theta),
        ApproxMethod::Clt => clt::max_k(triangle_prob, completion_probs, theta),
        ApproxMethod::DynamicProgramming => dp::max_k(triangle_prob, completion_probs, theta),
    }
}

/// The hybrid score computation (the `AP` algorithm): selects a method via
/// [`select_method`] and evaluates the largest qualifying `k`, returning
/// the method actually used.
pub fn hybrid_max_k(
    triangle_prob: f64,
    completion_probs: &[f64],
    theta: f64,
    thresholds: &ApproxThresholds,
) -> (u32, ApproxMethod) {
    hybrid_max_k_with_scratch(
        &mut dp::DpScratch::new(),
        triangle_prob,
        completion_probs,
        theta,
        thresholds,
    )
}

/// [`hybrid_max_k`] with a caller-provided [`dp::DpScratch`] for the DP
/// fallback, so the peeling engine's steady state allocates nothing.  The
/// arithmetic (method selection and evaluation) is identical.
pub fn hybrid_max_k_with_scratch(
    scratch: &mut dp::DpScratch,
    triangle_prob: f64,
    completion_probs: &[f64],
    theta: f64,
    thresholds: &ApproxThresholds,
) -> (u32, ApproxMethod) {
    let method = select_method(completion_probs, thresholds);
    let k = match method {
        ApproxMethod::DynamicProgramming => {
            dp::max_k_with_scratch(scratch, triangle_prob, completion_probs, theta)
        }
        other => max_k_with_method(other, triangle_prob, completion_probs, theta),
    };
    (k, method)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_display_names() {
        assert_eq!(ApproxMethod::Poisson.to_string(), "Poisson");
        assert_eq!(ApproxMethod::DynamicProgramming.name(), "DP");
        assert_eq!(ApproxMethod::Clt.to_string(), "CLT");
    }

    #[test]
    fn selection_follows_conditions() {
        let t = ApproxThresholds::default();
        // (1) c >= 200 → CLT.
        assert_eq!(select_method(&vec![0.5; 250], &t), ApproxMethod::Clt);
        // (2) c < 100 and small probabilities → Poisson.
        assert_eq!(select_method(&[0.1; 20], &t), ApproxMethod::Poisson);
        // (3) sum of squares > 1 → Translated Poisson (probabilities not
        // small, count between B and A).
        assert_eq!(
            select_method(&vec![0.9; 120], &t),
            ApproxMethod::TranslatedPoisson
        );
        // (4) nearly identical probabilities, not small, sum of squares of
        // a few large values > 1 fails only when few cliques... craft a
        // case: c = 30, probs ~0.3 but not < 0.25, sum sq = 2.7 > 1 →
        // condition (3) fires first, so use smaller probabilities that
        // still fail (2) because c >= B... impossible with defaults since
        // B < A. Instead tighten C so (2) fails: p = 0.3, c = 10,
        // sum sq = 0.9 < 1, ratio = 1 → Binomial.
        assert_eq!(select_method(&[0.3; 10], &t), ApproxMethod::Binomial);
        // (5) heterogeneous probabilities, sum of squares ≤ 1 and low
        // variance ratio → DP fallback.
        let mixed = vec![0.9, 0.05, 0.05, 0.05];
        assert!(stats::sum_of_squares(&mixed) <= 1.0);
        assert!(stats::binomial_variance_ratio(&mixed) < t.d);
        assert_eq!(select_method(&mixed, &t), ApproxMethod::DynamicProgramming);
    }

    #[test]
    fn selection_respects_custom_thresholds() {
        let t = ApproxThresholds {
            a: 5,
            b: 3,
            c_max: 0.5,
            d: 0.99,
        };
        assert_eq!(select_method(&[0.4; 6], &t), ApproxMethod::Clt);
        assert_eq!(select_method(&[0.4; 2], &t), ApproxMethod::Poisson);
    }

    #[test]
    fn tail_probability_all_methods_bounded() {
        let probs = vec![0.4; 30];
        for method in [
            ApproxMethod::Poisson,
            ApproxMethod::TranslatedPoisson,
            ApproxMethod::Binomial,
            ApproxMethod::Clt,
            ApproxMethod::DynamicProgramming,
        ] {
            for k in 0..=30usize {
                let t = tail_probability(method, &probs, k);
                assert!((0.0..=1.0).contains(&t), "{method} k={k} -> {t}");
            }
            assert_eq!(tail_probability(method, &probs, 0), 1.0);
        }
    }

    #[test]
    fn tail_probability_empty_support() {
        for method in [
            ApproxMethod::Poisson,
            ApproxMethod::Binomial,
            ApproxMethod::Clt,
            ApproxMethod::DynamicProgramming,
        ] {
            assert_eq!(tail_probability(method, &[], 0), 1.0);
            assert!(tail_probability(method, &[], 1) < 1e-9);
        }
    }

    #[test]
    fn approximations_are_close_to_dp_in_their_regime() {
        // Poisson regime: small probabilities.
        let small = vec![0.05; 40];
        // Binomial regime: identical moderate probabilities.
        let identical = vec![0.4; 40];
        // CLT regime: many events.
        let many: Vec<f64> = (0..400).map(|i| 0.2 + ((i % 5) as f64) * 0.1).collect();
        let cases = [
            (ApproxMethod::Poisson, &small),
            (ApproxMethod::Binomial, &identical),
            (ApproxMethod::Clt, &many),
        ];
        for (method, probs) in cases {
            let exact = dp::support_tail(probs);
            let mut max_err = 0.0f64;
            for (k, &e) in exact.iter().enumerate() {
                let err = (tail_probability(method, probs, k) - e).abs();
                max_err = max_err.max(err);
            }
            assert!(max_err < 0.07, "{method}: max error {max_err}");
        }
    }

    #[test]
    fn hybrid_matches_dp_scores_closely() {
        // The headline claim of Section 5.3: hybrid scores are practically
        // indistinguishable from DP scores.
        let t = ApproxThresholds::default();
        let regimes: Vec<Vec<f64>> = vec![
            vec![0.05; 30],
            vec![0.4; 50],
            vec![0.85; 150],
            (0..300).map(|i| 0.1 + ((i % 9) as f64) * 0.1).collect(),
        ];
        for probs in &regimes {
            for theta in [0.1, 0.3, 0.5] {
                let (approx_k, method) = hybrid_max_k(0.95, probs, theta, &t);
                let exact_k = dp::max_k(0.95, probs, theta);
                assert!(
                    (approx_k as i64 - exact_k as i64).abs() <= 1,
                    "c={} theta={theta} method={method}: {approx_k} vs {exact_k}",
                    probs.len()
                );
            }
        }
    }

    #[test]
    fn max_k_with_method_agrees_with_direct_calls() {
        let probs = vec![0.2; 20];
        assert_eq!(
            max_k_with_method(ApproxMethod::DynamicProgramming, 0.9, &probs, 0.3),
            dp::max_k(0.9, &probs, 0.3)
        );
        assert_eq!(
            max_k_with_method(ApproxMethod::Binomial, 0.9, &probs, 0.3),
            binomial::max_k(0.9, &probs, 0.3)
        );
    }
}
