//! Poisson approximation of the triangle-support distribution
//! (Section 5.3, Equations 8–10).
//!
//! Setting `λ = μ = Σ Pr(E_i)`, the Poisson distribution approximates ζ
//! with total-variation error at most `2 Σ Pr(E_i)²` (Le Cam's theorem,
//! Equation 9) — reliable when the `Pr(E_i)` and the clique count are
//! small.  Tail probabilities are evaluated with the incremental
//! recurrence of Equation 10, giving an `O(c)` score computation.

/// `Pr[Π_λ = k]` for a Poisson variable with parameter `lambda`.
///
/// Computed in log-space to avoid overflow of `k!` for large `k`.
pub fn pmf(lambda: f64, k: usize) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let k_f = k as f64;
    let log_p = -lambda + k_f * lambda.ln() - ln_factorial(k);
    log_p.exp()
}

/// `Pr[Π_λ ≥ k]` for a Poisson variable with parameter `lambda`.
pub fn tail(lambda: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    // 1 − Σ_{j<k} pmf(j), accumulated incrementally.
    let mut cdf = 0.0;
    let mut p = pmf(lambda, 0);
    for j in 0..k {
        if j > 0 {
            p = p * lambda / j as f64;
        }
        cdf += p;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// The largest `k ≤ max_support` such that
/// `triangle_prob · Pr[Π_λ ≥ k] ≥ theta`, using the incremental
/// recurrence of Equation 10.  Returns 0 when even `k = 0` fails.
pub fn max_k(triangle_prob: f64, lambda: f64, max_support: usize, theta: f64) -> u32 {
    if triangle_prob < theta {
        return 0;
    }
    let mut best = 0u32;
    let mut cdf = 0.0f64; // Pr[Π < k]
    let mut p = pmf(lambda, 0);
    for k in 0..=max_support {
        let tail_k = (1.0 - cdf).clamp(0.0, 1.0);
        if triangle_prob * tail_k >= theta {
            best = k as u32;
        } else {
            break;
        }
        // Advance cdf to Pr[Π < k+1] by adding pmf(k).
        if k > 0 {
            p = p * lambda / k as f64;
        }
        cdf += p;
    }
    best
}

/// Natural log of `k!` via the log-gamma function (Lanczos approximation).
pub(crate) fn ln_factorial(k: usize) -> f64 {
    ln_gamma(k as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
pub(crate) fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_matches_direct_formula_for_small_k() {
        let lambda = 2.5f64;
        for k in 0..10usize {
            let direct =
                (-lambda).exp() * lambda.powi(k as i32) / (1..=k).product::<usize>().max(1) as f64;
            assert!((pmf(lambda, k) - direct).abs() < 1e-10, "k = {k}");
        }
    }

    #[test]
    fn pmf_degenerate_lambda() {
        assert_eq!(pmf(0.0, 0), 1.0);
        assert_eq!(pmf(0.0, 3), 0.0);
    }

    #[test]
    fn tail_monotone_and_bounded() {
        let lambda = 4.0;
        let mut last = 1.0;
        for k in 0..20 {
            let t = tail(lambda, k);
            assert!(t <= last + 1e-12);
            assert!((0.0..=1.0).contains(&t));
            last = t;
        }
        assert_eq!(tail(lambda, 0), 1.0);
    }

    #[test]
    fn tail_complements_cdf() {
        let lambda = 3.0;
        for k in 1..15usize {
            let cdf: f64 = (0..k).map(|j| pmf(lambda, j)).sum();
            assert!((tail(lambda, k) - (1.0 - cdf)).abs() < 1e-9);
        }
    }

    #[test]
    fn max_k_consistent_with_tail_scan() {
        let lambda = 2.0;
        let tri = 0.8;
        let theta = 0.3;
        let max_support = 12;
        let expected = (0..=max_support)
            .filter(|&k| tri * tail(lambda, k) >= theta)
            .max()
            .unwrap_or(0) as u32;
        assert_eq!(max_k(tri, lambda, max_support, theta), expected);
    }

    #[test]
    fn max_k_zero_cases() {
        assert_eq!(max_k(0.1, 5.0, 10, 0.2), 0);
        assert_eq!(max_k(1.0, 0.0, 10, 0.5), 0);
    }

    #[test]
    fn ln_factorial_values() {
        assert!((ln_factorial(0) - 0.0).abs() < 1e-9);
        assert!((ln_factorial(1) - 0.0).abs() < 1e-9);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-9);
        assert!((ln_factorial(20) - 2.432_902_008_176_64e18f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn large_lambda_does_not_overflow() {
        let t = tail(500.0, 450);
        assert!(t > 0.9 && t <= 1.0);
        let t2 = tail(500.0, 600);
        assert!(t2 < 0.01);
    }
}
