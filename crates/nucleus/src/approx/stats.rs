//! Moment helpers shared by the statistical approximations.

/// Mean `μ = Σ Pr(E_i)` of the support variable ζ.
pub fn mean(completion_probs: &[f64]) -> f64 {
    completion_probs.iter().sum()
}

/// Variance `σ² = Σ Pr(E_i)·(1 − Pr(E_i))` of ζ.
pub fn variance(completion_probs: &[f64]) -> f64 {
    completion_probs.iter().map(|p| p * (1.0 - p)).sum()
}

/// `Σ Pr(E_i)²` — the quantity appearing in Le Cam's bound and in the
/// hybrid-selection condition (3).
pub fn sum_of_squares(completion_probs: &[f64]) -> f64 {
    completion_probs.iter().map(|p| p * p).sum()
}

/// Le Cam's bound on the total-variation error of the Poisson
/// approximation (Equation 9): `2 Σ Pr(E_i)² = 2(μ − σ²)`.
pub fn le_cam_bound(completion_probs: &[f64]) -> f64 {
    2.0 * sum_of_squares(completion_probs)
}

/// Ratio of the variance of ζ to the variance of a Binomial distribution
/// with `n = c` and `n·p = μ` — the quantity of the hybrid-selection
/// condition (4).  Returns 1 when both variances are zero, and 0 when only
/// the Binomial variance is zero.
pub fn binomial_variance_ratio(completion_probs: &[f64]) -> f64 {
    let n = completion_probs.len();
    if n == 0 {
        return 1.0;
    }
    let mu = mean(completion_probs);
    let p = mu / n as f64;
    let binom_var = n as f64 * p * (1.0 - p);
    let var = variance(completion_probs);
    if binom_var <= f64::EPSILON {
        if var <= f64::EPSILON {
            1.0
        } else {
            0.0
        }
    } else {
        var / binom_var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn moments_of_identical_probs() {
        let probs = vec![0.3; 10];
        assert_close(mean(&probs), 3.0);
        assert_close(variance(&probs), 10.0 * 0.3 * 0.7);
        assert_close(sum_of_squares(&probs), 10.0 * 0.09);
        assert_close(le_cam_bound(&probs), 2.0 * 0.9);
        // Identical probabilities: ζ is exactly Binomial, ratio is 1.
        assert_close(binomial_variance_ratio(&probs), 1.0);
    }

    #[test]
    fn moments_of_empty_set() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(binomial_variance_ratio(&[]), 1.0);
    }

    #[test]
    fn variance_ratio_below_one_for_heterogeneous_probs() {
        // Heterogeneous probabilities have smaller variance than the
        // matching Binomial (variance is concave in p).
        let probs = [0.1, 0.9, 0.1, 0.9];
        let ratio = binomial_variance_ratio(&probs);
        assert!(ratio < 1.0);
        assert!(ratio > 0.0);
    }

    #[test]
    fn variance_ratio_degenerate_cases() {
        // All certain events: both variances are 0.
        assert_close(binomial_variance_ratio(&[1.0, 1.0]), 1.0);
        // Mix of certain and impossible-ish events: Binomial variance > 0.
        let ratio = binomial_variance_ratio(&[1.0, 1e-12]);
        assert!(ratio < 1.0);
    }

    #[test]
    fn le_cam_identity() {
        let probs = [0.2, 0.4, 0.6];
        assert_close(
            le_cam_bound(&probs),
            2.0 * (mean(&probs) - variance(&probs)),
        );
    }
}
