//! Normal (Lyapunov CLT) approximation of the triangle-support
//! distribution (Section 5.3, Equation 13).
//!
//! When the clique count `c_△` (and hence the variance of ζ) is large,
//! Lyapunov's central limit theorem applies to the non-identically
//! distributed Bernoulli sum: `(ζ − μ) / σ` is approximately standard
//! normal, so `Pr[ζ ≥ k] ≈ 1 − Φ((k − μ) / σ)`.

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function, Abramowitz–Stegun approximation 7.1.26
/// (absolute error < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// `Pr[ζ ≥ k]` under the normal approximation with the given mean and
/// variance of ζ.  A zero variance degenerates to a point mass at the
/// mean.
pub fn tail(mean: f64, variance: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let k = k as f64;
    if variance <= f64::EPSILON {
        return if k <= mean { 1.0 } else { 0.0 };
    }
    let z = (k - mean) / variance.sqrt();
    (1.0 - normal_cdf(z)).clamp(0.0, 1.0)
}

/// The largest `k ≤ max_support` such that
/// `triangle_prob · Pr[ζ ≥ k] ≥ theta` under the normal approximation.
pub fn max_k(triangle_prob: f64, completion_probs: &[f64], theta: f64) -> u32 {
    if triangle_prob < theta {
        return 0;
    }
    let mean = super::stats::mean(completion_probs);
    let variance = super::stats::variance(completion_probs);
    let max_support = completion_probs.len();
    let mut best = 0u32;
    for k in 0..=max_support {
        if triangle_prob * tail(mean, variance, k) >= theta {
            best = k as u32;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::dp;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, expected) in cases {
            assert!((erf(x) - expected).abs() < 1e-6, "erf({x})");
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841344746),
            (-1.0, 0.158655254),
            (1.959964, 0.975),
            (-3.0, 0.001349898),
        ];
        for (x, expected) in cases {
            assert!((normal_cdf(x) - expected).abs() < 1e-5, "Phi({x})");
        }
    }

    #[test]
    fn tail_monotone_in_k() {
        let mut last = 1.0;
        for k in 0..50usize {
            let t = tail(20.0, 9.0, k);
            assert!(t <= last + 1e-12);
            assert!((0.0..=1.0).contains(&t));
            last = t;
        }
    }

    #[test]
    fn degenerate_variance() {
        assert_eq!(tail(5.0, 0.0, 3), 1.0);
        assert_eq!(tail(5.0, 0.0, 5), 1.0);
        assert_eq!(tail(5.0, 0.0, 6), 0.0);
    }

    #[test]
    fn approximates_dp_for_large_counts() {
        // 300 moderately sized probabilities: the CLT condition (1) of the
        // hybrid framework.  Compare the tail around the mean.
        let probs: Vec<f64> = (0..300)
            .map(|i| 0.3 + 0.4 * ((i % 10) as f64) / 10.0)
            .collect();
        let exact = dp::support_tail(&probs);
        let mean = crate::approx::stats::mean(&probs);
        let var = crate::approx::stats::variance(&probs);
        for k in [100usize, 140, 150, 160, 200] {
            let approx = tail(mean, var, k);
            assert!(
                (approx - exact[k]).abs() < 0.05,
                "k={k}: clt {approx} vs exact {}",
                exact[k]
            );
        }
    }

    #[test]
    fn max_k_close_to_dp_for_large_counts() {
        let probs: Vec<f64> = (0..250)
            .map(|i| 0.2 + 0.5 * ((i % 7) as f64) / 7.0)
            .collect();
        for theta in [0.1, 0.3, 0.5] {
            let exact = dp::max_k(0.95, &probs, theta);
            let approx = max_k(0.95, &probs, theta);
            assert!(
                (exact as i64 - approx as i64).abs() <= 1,
                "theta {theta}: exact {exact} approx {approx}"
            );
        }
    }

    #[test]
    fn max_k_zero_when_triangle_unlikely() {
        assert_eq!(max_k(0.01, &[0.5; 300], 0.5), 0);
    }
}
