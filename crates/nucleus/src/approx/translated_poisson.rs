//! Translated Poisson approximation (Section 5.3, Equations 11–12).
//!
//! When the `Pr(E_i)` are not small, the plain Poisson approximation's
//! variance `λ = μ` overshoots the true variance `σ² = μ − Σ Pr(E_i)²`.
//! The translated Poisson variable
//! `Y = ⌊λ₂⌋ + Π_{λ − ⌊λ₂⌋}` with `λ₂ = λ − σ²` matches the mean exactly
//! and the variance within 1 (Equation 11), and its tail follows the same
//! incremental recurrence as the plain Poisson after shifting by `⌊λ₂⌋`.

use super::poisson;

/// Parameters of the translated Poisson approximation for a given mean and
/// variance of ζ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranslatedPoisson {
    /// Integer shift `⌊λ₂⌋ = ⌊μ − σ²⌋`.
    pub shift: i64,
    /// Parameter of the Poisson part, `λ − ⌊λ₂⌋`.
    pub poisson_lambda: f64,
}

impl TranslatedPoisson {
    /// Builds the approximation from the mean and variance of ζ.
    pub fn from_moments(mean: f64, variance: f64) -> Self {
        let lambda2 = mean - variance;
        let shift = lambda2.floor() as i64;
        let shift = shift.max(0);
        TranslatedPoisson {
            shift,
            poisson_lambda: (mean - shift as f64).max(0.0),
        }
    }

    /// `Pr[Y ≥ k]`.
    pub fn tail(&self, k: usize) -> f64 {
        let k = k as i64;
        let residual = k - self.shift;
        if residual <= 0 {
            1.0
        } else {
            poisson::tail(self.poisson_lambda, residual as usize)
        }
    }

    /// The largest `k ≤ max_support` such that
    /// `triangle_prob · Pr[Y ≥ k] ≥ theta`.
    pub fn max_k(&self, triangle_prob: f64, max_support: usize, theta: f64) -> u32 {
        if triangle_prob < theta {
            return 0;
        }
        let mut best = 0u32;
        for k in 0..=max_support {
            if triangle_prob * self.tail(k) >= theta {
                best = k as u32;
            } else {
                break;
            }
        }
        best
    }
}

/// Convenience: the largest qualifying `k` directly from the completion
/// probabilities.
pub fn max_k(triangle_prob: f64, completion_probs: &[f64], theta: f64) -> u32 {
    let mean = super::stats::mean(completion_probs);
    let variance = super::stats::variance(completion_probs);
    TranslatedPoisson::from_moments(mean, variance).max_k(
        triangle_prob,
        completion_probs.len(),
        theta,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::stats;
    use crate::local::dp;

    #[test]
    fn moments_are_approximately_preserved() {
        let probs = vec![0.6; 40];
        let mean = stats::mean(&probs);
        let var = stats::variance(&probs);
        let tp = TranslatedPoisson::from_moments(mean, var);
        // Mean of Y = shift + poisson_lambda = mean (up to flooring).
        let y_mean = tp.shift as f64 + tp.poisson_lambda;
        assert!((y_mean - mean).abs() < 1e-9);
        // Variance of Y = poisson_lambda, within 1 of the true variance
        // (Equation 11).
        assert!((tp.poisson_lambda - var).abs() < 1.0);
    }

    #[test]
    fn tail_is_one_below_the_shift() {
        let tp = TranslatedPoisson::from_moments(10.0, 2.0);
        assert!(tp.shift >= 7);
        assert_eq!(tp.tail(0), 1.0);
        assert_eq!(tp.tail(tp.shift as usize), 1.0);
        assert!(tp.tail(tp.shift as usize + 40) < 1e-6);
    }

    #[test]
    fn tail_monotone() {
        let tp = TranslatedPoisson::from_moments(8.0, 3.0);
        let mut last = 1.0;
        for k in 0..30 {
            let t = tp.tail(k);
            assert!(t <= last + 1e-12);
            last = t;
        }
    }

    #[test]
    fn degenerate_certain_events() {
        // All events certain: mean = c, variance = 0 → Y = c exactly.
        let probs = vec![1.0; 5];
        let tp = TranslatedPoisson::from_moments(stats::mean(&probs), stats::variance(&probs));
        assert_eq!(tp.shift, 5);
        assert_eq!(tp.tail(5), 1.0);
        assert!(tp.tail(6) < 1.0);
    }

    #[test]
    fn closer_to_dp_than_poisson_for_large_probs() {
        // Large Pr(E_i): the translated Poisson should track the exact DP
        // tail better than the plain Poisson (the motivation of the
        // construction).
        let probs = vec![0.8; 50];
        let exact = dp::support_tail(&probs);
        let lambda = stats::mean(&probs);
        let tp = TranslatedPoisson::from_moments(lambda, stats::variance(&probs));
        let mut err_tp = 0.0;
        let mut err_poisson = 0.0;
        for (k, &e) in exact.iter().enumerate() {
            err_tp += (tp.tail(k) - e).abs();
            err_poisson += (super::poisson::tail(lambda, k) - e).abs();
        }
        assert!(
            err_tp < err_poisson,
            "translated {err_tp} should beat plain {err_poisson}"
        );
    }

    #[test]
    fn max_k_consistent_with_tail() {
        let probs = vec![0.7; 30];
        let tri = 0.9;
        let theta = 0.25;
        let k = max_k(tri, &probs, theta);
        let tp = TranslatedPoisson::from_moments(stats::mean(&probs), stats::variance(&probs));
        assert!(tri * tp.tail(k as usize) >= theta);
        if (k as usize) < probs.len() {
            assert!(tri * tp.tail(k as usize + 1) < theta);
        }
    }

    #[test]
    fn max_k_zero_when_triangle_unlikely() {
        assert_eq!(max_k(0.01, &[0.9, 0.9, 0.9], 0.5), 0);
    }
}
