//! Weakly-global probabilistic nucleus decomposition (w-NuDecomp,
//! Algorithm 3).
//!
//! The weakly-global indicator `1_w(G, △, k)` asks that the sampled world
//! *contain* a deterministic k-nucleus that includes the triangle — a
//! relaxation of the global semantics, but still NP-hard to decide
//! (Theorem 4.2).  The algorithm prunes with the local decomposition
//! (every w-(k,θ)-nucleus is an ℓ-(k,θ)-nucleus), samples `n` possible
//! worlds of each ℓ-nucleus, runs a deterministic nucleus decomposition on
//! every world, and keeps the triangles whose estimated probability of
//! lying in a k-nucleus reaches θ.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{EdgeId, EdgeSubgraph, Triangle, UncertainGraph, UnionFind, WorldSampler};

use crate::error::Result;
use crate::global::GlobalConfig;
use crate::local::LocalNucleusDecomposition;

/// One w-(k,θ)-nucleus found by Algorithm 3.
#[derive(Debug, Clone)]
pub struct WeaklyGlobalNucleus {
    /// The `k` this nucleus was extracted for.
    pub k: u32,
    /// The nucleus as a materialized subgraph of the input graph.
    pub subgraph: EdgeSubgraph,
    /// The triangles of the nucleus, in original vertex ids.
    pub triangles: Vec<Triangle>,
    /// The smallest estimated `P̂r(X_{H,△,w} ≥ k)` over the triangles.
    pub min_probability: f64,
}

impl WeaklyGlobalNucleus {
    /// Number of vertices of the nucleus.
    pub fn num_vertices(&self) -> usize {
        self.subgraph.num_vertices()
    }

    /// Number of edges of the nucleus.
    pub fn num_edges(&self) -> usize {
        self.subgraph.num_edges()
    }
}

/// Computes all w-(k,θ)-nuclei of `graph` for the given `k` (Algorithm 3).
pub fn weakly_global_nuclei(
    graph: &UncertainGraph,
    k: u32,
    config: &GlobalConfig,
) -> Result<Vec<WeaklyGlobalNucleus>> {
    config.sampling.validate()?;
    let local = LocalNucleusDecomposition::compute(graph, &config.local_config())?;
    weakly_global_nuclei_with_local(graph, k, config, &local)
}

/// Same as [`weakly_global_nuclei`] but reuses a precomputed local
/// decomposition (computed with the same θ).
pub fn weakly_global_nuclei_with_local(
    graph: &UncertainGraph,
    k: u32,
    config: &GlobalConfig,
    local: &LocalNucleusDecomposition,
) -> Result<Vec<WeaklyGlobalNucleus>> {
    config.sampling.validate()?;
    let n_samples = config.sampling.num_samples();
    let mut rng = ChaCha8Rng::seed_from_u64(config.sampling.seed);
    let mut solution = Vec::new();

    for candidate in local.k_nuclei(graph, k) {
        let sub = &candidate.subgraph;
        let h_graph = sub.graph();

        // Triangles of the candidate, in local vertex ids.
        let local_triangles: Vec<Triangle> = candidate
            .triangles
            .iter()
            .map(|t| {
                let [a, b, c] = t.vertices();
                Triangle::new(
                    sub.local_vertex(a).expect("vertex in candidate"),
                    sub.local_vertex(b).expect("vertex in candidate"),
                    sub.local_vertex(c).expect("vertex in candidate"),
                )
            })
            .collect();

        // Monte-Carlo: count, per triangle, the worlds in which it belongs
        // to a deterministic k-nucleus of the world.
        let sampler = WorldSampler::new(h_graph);
        let mut global_score = vec![0usize; local_triangles.len()];
        for _ in 0..n_samples {
            let world = sampler.sample(&mut rng);
            let det = world.materialize(h_graph);
            let decomp = detdecomp::NucleusDecomposition::compute(&det);
            let nuclei = decomp.k_nuclei(&det, k);
            if nuclei.is_empty() {
                continue;
            }
            for (i, t) in local_triangles.iter().enumerate() {
                if nuclei.iter().any(|n| n.contains_triangle(t)) {
                    global_score[i] += 1;
                }
            }
        }
        let estimates: Vec<f64> = global_score
            .iter()
            .map(|&s| s as f64 / n_samples as f64)
            .collect();

        // Qualifying triangles, grouped into connected unions (triangles
        // sharing an edge), each forming one w-(k,θ)-nucleus.
        let qualifying: Vec<usize> = estimates
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (p >= config.theta).then_some(i))
            .collect();
        if qualifying.is_empty() {
            continue;
        }
        let mut uf = UnionFind::new(candidate.triangles.len());
        for (a_pos, &a) in qualifying.iter().enumerate() {
            for &b in &qualifying[a_pos + 1..] {
                let ta = candidate.triangles[a];
                let tb = candidate.triangles[b];
                let shared = ta
                    .vertices()
                    .iter()
                    .filter(|v| tb.vertices().contains(v))
                    .count();
                if shared >= 2 {
                    uf.union(a as u32, b as u32);
                }
            }
        }
        // BTreeMap, not HashMap: groups come out ordered by root id, so
        // the solution order is reproducible run to run.
        let mut groups: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &i in &qualifying {
            groups.entry(uf.find(i as u32)).or_default().push(i);
        }
        for group in groups.into_values() {
            let triangles: Vec<Triangle> = group.iter().map(|&i| candidate.triangles[i]).collect();
            let min_probability = group
                .iter()
                .map(|&i| estimates[i])
                .fold(f64::INFINITY, f64::min);
            let mut edge_ids: Vec<EdgeId> = Vec::new();
            for t in &triangles {
                for (u, v) in t.edges() {
                    edge_ids.push(graph.edge_id(u, v).expect("triangle edge"));
                }
            }
            edge_ids.sort_unstable();
            edge_ids.dedup();
            solution.push(WeaklyGlobalNucleus {
                k,
                subgraph: EdgeSubgraph::induced_by_edges(graph, &edge_ids),
                triangles,
                min_probability,
            });
        }
    }

    solution.sort_by_key(|n| n.subgraph.original_vertices().to_vec());
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingConfig;
    use ugraph::GraphBuilder;

    fn figure2a_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.add_edge(1, 4, 0.6).unwrap();
        b.add_edge(2, 4, 0.7).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn figure2a_is_a_weakly_global_nucleus() {
        // Example 1 of the paper: the subgraph of Figure 2a is a
        // w-(1, 0.42)-nucleus.
        let g = figure2a_graph();
        let config = GlobalConfig::new(0.42)
            .with_sampling(SamplingConfig::default().with_num_samples(600).with_seed(2));
        let nuclei = weakly_global_nuclei(&g, 1, &config).unwrap();
        assert_eq!(nuclei.len(), 1);
        let n = &nuclei[0];
        assert_eq!(n.num_vertices(), 5);
        assert_eq!(n.k, 1);
        assert!(n.min_probability >= 0.42);
    }

    #[test]
    fn example2_k5_is_not_weakly_global_at_2() {
        // Example 2: K5 with all edges 0.6 is an ℓ-(2, 0.01)-nucleus but
        // not a w-(2, 0.01)-nucleus.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 0.6).unwrap();
            }
        }
        let g = b.build();
        let config = GlobalConfig::new(0.01).with_sampling(
            SamplingConfig::default()
                .with_num_samples(1000)
                .with_seed(4),
        );
        // Local nuclei exist at k = 2...
        let local =
            LocalNucleusDecomposition::compute(&g, &crate::config::LocalConfig::exact(0.01))
                .unwrap();
        assert_eq!(local.max_score(), 2);
        // ...but the weakly-global decomposition rejects them (the true
        // probability is 0.006 < 0.01; with 1000 samples the estimate is
        // almost surely below the threshold).
        let nuclei = weakly_global_nuclei(&g, 2, &config).unwrap();
        assert!(nuclei.is_empty());
    }

    #[test]
    fn estimates_agree_with_exact_oracle() {
        let g = figure2a_graph();
        let config = GlobalConfig::new(0.42)
            .with_sampling(SamplingConfig::default().with_num_samples(800).with_seed(9));
        let nuclei = weakly_global_nuclei(&g, 1, &config).unwrap();
        for n in &nuclei {
            for tri in &n.triangles {
                let exact = crate::exact::exact_weakly_global_tail(&g, tri, 1).unwrap();
                assert!(exact >= 0.42 - 0.1, "triangle {tri}: exact {exact}");
            }
        }
    }

    #[test]
    fn no_candidates_no_nuclei() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        let g = b.build();
        let nuclei = weakly_global_nuclei(&g, 1, &GlobalConfig::new(0.1)).unwrap();
        assert!(nuclei.is_empty());
    }

    #[test]
    fn weakly_global_contains_global() {
        // Every g-(k,θ)-nucleus triangle set should also appear inside a
        // w-(k,θ)-nucleus (the containment chain of Section 3).  θ = 0.3
        // keeps the true probabilities (0.42 and 0.5) comfortably above
        // the threshold so Monte-Carlo noise cannot flip the comparison.
        let g = figure2a_graph();
        let config = GlobalConfig::new(0.3)
            .with_sampling(SamplingConfig::default().with_num_samples(600).with_seed(6));
        let global = crate::global::global_nuclei(&g, 1, &config).unwrap();
        let weak = weakly_global_nuclei(&g, 1, &config).unwrap();
        for gn in &global {
            for tri in &gn.triangles {
                assert!(
                    weak.iter().any(|wn| wn.triangles.contains(tri)),
                    "global triangle {tri} missing from every weakly-global nucleus"
                );
            }
        }
    }
}
