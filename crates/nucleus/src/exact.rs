//! Exact oracles by exhaustive possible-world enumeration.
//!
//! These functions compute the probabilities of Definition 4 *exactly* by
//! enumerating all `2^m` possible worlds, and are therefore usable only
//! for tiny graphs (at most [`ugraph::possible_world::MAX_EXHAUSTIVE_EDGES`]
//! edges).  They serve as ground truth for the Monte-Carlo estimators of
//! Algorithms 2 and 3, and make the hardness reductions of Section 4
//! executable on small instances.

use ugraph::possible_world::{enumerate_all_worlds, MAX_EXHAUSTIVE_EDGES};
use ugraph::{ConnectedComponents, Triangle, UncertainGraph};

use crate::error::{NucleusError, Result};

fn check_size(graph: &UncertainGraph) -> Result<()> {
    if graph.num_edges() > MAX_EXHAUSTIVE_EDGES {
        return Err(NucleusError::GraphTooLargeForExact {
            num_edges: graph.num_edges(),
            max_edges: MAX_EXHAUSTIVE_EDGES,
        });
    }
    Ok(())
}

fn check_triangle(graph: &UncertainGraph, triangle: &Triangle) -> Result<()> {
    let [a, b, c] = triangle.vertices();
    if graph.has_edge(a, b) && graph.has_edge(b, c) && graph.has_edge(a, c) {
        Ok(())
    } else {
        Err(NucleusError::UnknownTriangle {
            vertices: triangle.vertices(),
        })
    }
}

/// Exact `Pr(X_{𝒢,△,ℓ} ≥ k)`: the probability that `△` exists and is
/// contained in at least `k` 4-cliques of the sampled world.
pub fn exact_local_tail(graph: &UncertainGraph, triangle: &Triangle, k: u32) -> Result<f64> {
    check_size(graph)?;
    check_triangle(graph, triangle)?;
    let [a, b, c] = triangle.vertices();
    let mut total = 0.0;
    for world in enumerate_all_worlds(graph) {
        if !world.contains_triangle(graph, a, b, c) {
            continue;
        }
        let det = world.materialize(graph);
        let support = det.common_neighbors3(a, b, c).len() as u32;
        if support >= k {
            total += world.probability(graph);
        }
    }
    Ok(total)
}

/// Exact `Pr(X_{𝒢,△,g} ≥ k)`: the probability that `△` exists and the
/// sampled world itself is a deterministic k-nucleus (Definition 4, μ = g).
///
/// Worlds are judged with [`detdecomp::is_k_nucleus_lenient`]: every
/// triangle of the world needs 4-clique support ≥ k and all triangles must
/// be 4-clique-connected, while stray edges outside every 4-clique are
/// ignored — the interpretation under which the paper's worked example
/// (Figure 2, `Pr = 0.06 + 0.21 = 0.27`) comes out exactly.
pub fn exact_global_tail(graph: &UncertainGraph, triangle: &Triangle, k: u32) -> Result<f64> {
    check_size(graph)?;
    check_triangle(graph, triangle)?;
    let [a, b, c] = triangle.vertices();
    let mut total = 0.0;
    for world in enumerate_all_worlds(graph) {
        if !world.contains_triangle(graph, a, b, c) {
            continue;
        }
        let det = world.materialize(graph);
        if detdecomp::is_k_nucleus_lenient(&det, k) {
            total += world.probability(graph);
        }
    }
    Ok(total)
}

/// Exact `Pr(X_{𝒢,△,w} ≥ k)`: the probability that `△` exists and the
/// sampled world contains a deterministic k-nucleus containing `△`
/// (Definition 4, μ = w).
pub fn exact_weakly_global_tail(
    graph: &UncertainGraph,
    triangle: &Triangle,
    k: u32,
) -> Result<f64> {
    check_size(graph)?;
    check_triangle(graph, triangle)?;
    let [a, b, c] = triangle.vertices();
    let mut total = 0.0;
    for world in enumerate_all_worlds(graph) {
        if !world.contains_triangle(graph, a, b, c) {
            continue;
        }
        let det = world.materialize(graph);
        if triangle_in_k_nucleus(&det, triangle, k) {
            total += world.probability(graph);
        }
    }
    Ok(total)
}

/// `true` when `graph` (deterministic structure) contains a k-(3,4)-nucleus
/// that includes `triangle`: some 4-clique through the triangle has all
/// four of its triangles with deterministic nucleusness ≥ k.
pub fn triangle_in_k_nucleus(graph: &UncertainGraph, triangle: &Triangle, k: u32) -> bool {
    let decomp = detdecomp::NucleusDecomposition::compute(graph);
    let Some(id) = decomp.triangle_index().id_of(triangle) else {
        return false;
    };
    if decomp.nucleusness(id) < k {
        return false;
    }
    // Nucleusness ≥ k guarantees membership in a k-nucleus whenever the
    // triangle has at least one qualifying clique; verify explicitly so
    // that the k = 0 corner case (triangle in no 4-clique) is handled.
    decomp
        .k_nuclei(graph, k)
        .iter()
        .any(|n| n.contains_triangle(triangle))
}

/// Exact network reliability (Definition 6): the probability that a
/// sampled world is connected over *all* vertices of the graph.
pub fn network_reliability(graph: &UncertainGraph) -> Result<f64> {
    check_size(graph)?;
    if graph.num_vertices() == 0 {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for world in enumerate_all_worlds(graph) {
        let det = world.materialize(graph);
        if ConnectedComponents::new(&det).is_connected() {
            total += world.probability(graph);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn k4(p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, p).unwrap();
        }
        b.build()
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn local_tail_matches_dp_on_k4() {
        let g = k4(0.7);
        let t = Triangle::new(0, 1, 2);
        // DP: Pr(△)·Pr[ζ ≥ k] with one completion event of prob 0.7³.
        let tri_prob = 0.7f64.powi(3);
        let e = 0.7f64.powi(3);
        assert_close(exact_local_tail(&g, &t, 0).unwrap(), tri_prob);
        assert_close(exact_local_tail(&g, &t, 1).unwrap(), tri_prob * e);
        assert_close(exact_local_tail(&g, &t, 2).unwrap(), 0.0);
    }

    #[test]
    fn local_tail_matches_dp_on_random_graph() {
        use crate::config::LocalConfig;
        use crate::local::LocalNucleusDecomposition;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let edges = ugraph::generators::gnm_edges(8, 16, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            8,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.3)).unwrap();
        for (id, tri) in local.triangle_index().iter() {
            let probs = local.support().completion_probs(id);
            let tri_prob = local.support().triangle_prob(id);
            for k in 0..=probs.len() as u32 {
                let dp = crate::local::dp::local_tail_probability(tri_prob, &probs, k as usize);
                let exact = exact_local_tail(&g, &tri, k).unwrap();
                assert!(
                    (dp - exact).abs() < 1e-9,
                    "triangle {tri} k={k}: dp {dp} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn global_tail_on_paper_figure3a() {
        // Figure 3a: K4 on {1,2,3,5} with five certain edges and edge
        // (2,5) = 0.5.  The only world that is a 1-nucleus keeps all
        // edges, so Pr(X ≥ 1) = 0.5 for every triangle.
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        let g = b.build();
        let t = Triangle::new(1, 3, 5);
        assert_close(exact_global_tail(&g, &t, 1).unwrap(), 0.5);
    }

    #[test]
    fn global_tail_on_paper_figure2a() {
        // The ℓ-(1,0.42)-nucleus of Figure 2a is NOT a g-(1,0.42)-nucleus:
        // for triangle (1,3,5), Pr(X_g ≥ 1) = 0.06 + 0.21 = 0.27.
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.add_edge(1, 4, 0.6).unwrap();
        b.add_edge(2, 4, 0.7).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build();
        let t = Triangle::new(1, 3, 5);
        assert_close(exact_global_tail(&g, &t, 1).unwrap(), 0.27);
    }

    #[test]
    fn weakly_global_on_paper_figure2a() {
        // The same subgraph IS a w-(1, 0.42)-nucleus: the 4-cliques
        // containing each triangle are 1-nuclei appearing with probability
        // at least 0.42.
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.add_edge(1, 4, 0.6).unwrap();
        b.add_edge(2, 4, 0.7).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build();
        for tri in [
            Triangle::new(1, 3, 5),
            Triangle::new(1, 2, 3),
            Triangle::new(1, 2, 4),
        ] {
            let p = exact_weakly_global_tail(&g, &tri, 1).unwrap();
            assert!(p >= 0.42, "triangle {tri}: {p}");
        }
    }

    #[test]
    fn weakly_global_example2_figure3c() {
        // Figure 3c / Example 2: K5 with all edges 0.6 is an
        // ℓ-(2, 0.01)-nucleus but not a w-(2, 0.01)-nucleus:
        // Pr(X_w ≥ 2) = 0.6^10 ≈ 0.006 < 0.01.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 0.6).unwrap();
            }
        }
        let g = b.build();
        let t = Triangle::new(0, 1, 2);
        let p = exact_weakly_global_tail(&g, &t, 2).unwrap();
        assert_close(p, 0.6f64.powi(10));
        assert!(p < 0.01);
    }

    #[test]
    fn ordering_of_the_three_semantics() {
        // For every triangle and every k: g ≤ w ≤ ℓ.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let edges = ugraph::generators::gnm_edges(7, 14, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            7,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.3,
                high: 1.0,
            },
            &mut rng,
        );
        let triangles = ugraph::triangles::enumerate_triangles(&g);
        for tri in triangles {
            for k in 1..3u32 {
                let l = exact_local_tail(&g, &tri, k).unwrap();
                let w = exact_weakly_global_tail(&g, &tri, k).unwrap();
                let gg = exact_global_tail(&g, &tri, k).unwrap();
                assert!(gg <= w + 1e-12, "triangle {tri} k={k}: g {gg} > w {w}");
                assert!(w <= l + 1e-12, "triangle {tri} k={k}: w {w} > l {l}");
            }
        }
    }

    #[test]
    fn reliability_of_simple_graphs() {
        // Single edge: reliability = p.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.7).unwrap();
        let g = b.build();
        assert_close(network_reliability(&g).unwrap(), 0.7);

        // Triangle with p everywhere: connected iff at least 2 edges
        // present: 3p²(1−p) + p³.
        let g = k4(1.0);
        assert_close(network_reliability(&g).unwrap(), 1.0);
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let tri = b.build();
        assert_close(network_reliability(&tri).unwrap(), 3.0 * 0.25 * 0.5 + 0.125);
    }

    #[test]
    fn errors_for_bad_inputs() {
        let g = k4(0.5);
        let missing = Triangle::new(0, 1, 7);
        assert!(matches!(
            exact_local_tail(&g, &missing, 1),
            Err(NucleusError::UnknownTriangle { .. })
        ));
        // Too many edges for exhaustive enumeration.
        let mut b = GraphBuilder::new();
        for i in 0..30u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let big = b.build();
        assert!(matches!(
            network_reliability(&big),
            Err(NucleusError::GraphTooLargeForExact { .. })
        ));
    }

    #[test]
    fn triangle_in_k_nucleus_checks() {
        let g = k4(1.0);
        let t = Triangle::new(0, 1, 2);
        assert!(triangle_in_k_nucleus(&g, &t, 1));
        assert!(!triangle_in_k_nucleus(&g, &t, 2));
        assert!(!triangle_in_k_nucleus(&g, &Triangle::new(0, 1, 9), 1));
        // Plain triangle: no 4-clique, so not even in a 0-nucleus.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let tri_graph = b.build();
        assert!(!triangle_in_k_nucleus(&tri_graph, &t, 0));
    }
}
