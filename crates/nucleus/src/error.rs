//! Error type for the probabilistic nucleus decomposition.

use std::fmt;

/// Why a θ grid was rejected by [`SweepConfig`](crate::config::SweepConfig)
/// validation.  Each malformed mode is its own variant so callers (and
/// tests) can distinguish an empty grid from an unsorted one without
/// string matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThetaGridError {
    /// The grid has no entries.
    Empty,
    /// An entry is NaN.
    NaN {
        /// Position of the offending entry.
        index: usize,
    },
    /// An entry is outside the valid threshold range `(0, 1]`.
    OutOfRange {
        /// Position of the offending entry.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// An entry is smaller than its predecessor (the grid must be sorted
    /// ascending).
    NotSorted {
        /// Position of the entry that breaks the order.
        index: usize,
    },
    /// An entry equals its predecessor (grid points must be distinct).
    Duplicate {
        /// Position of the repeated entry.
        index: usize,
        /// The repeated value.
        value: f64,
    },
}

impl fmt::Display for ThetaGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThetaGridError::Empty => write!(f, "theta grid is empty"),
            ThetaGridError::NaN { index } => {
                write!(f, "theta grid entry {index} is NaN")
            }
            ThetaGridError::OutOfRange { index, value } => {
                write!(f, "theta grid entry {index} is {value}, outside (0, 1]")
            }
            ThetaGridError::NotSorted { index } => {
                write!(
                    f,
                    "theta grid entry {index} is smaller than its predecessor \
                     (grid must be sorted ascending)"
                )
            }
            ThetaGridError::Duplicate { index, value } => {
                write!(f, "theta grid entry {index} duplicates the value {value}")
            }
        }
    }
}

/// Errors produced by the decomposition algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum NucleusError {
    /// A threshold parameter was outside its valid range.
    InvalidThreshold {
        /// Name of the parameter (`theta`, `epsilon`, `delta`, …).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A θ grid handed to the sweep engine was malformed.
    InvalidThetaGrid(ThetaGridError),
    /// The requested scoring method is not available at the requested
    /// rank of the (r,s)-nucleus family (the hybrid statistical
    /// approximations are calibrated for (3,4) only).
    UnsupportedMethod {
        /// The requested rank (`core`, `truss`, `nucleus`).
        rank: &'static str,
        /// The rejected scoring method.
        method: &'static str,
    },
    /// An operation was issued against a support handle, sweep or index
    /// built for a different rank of the (r,s)-nucleus family (e.g. a
    /// nucleus extraction against a truss sweep).
    RankMismatch {
        /// The rank the operation requires (`core`, `truss`, `nucleus`).
        expected: &'static str,
        /// The rank the handle was built for.
        got: &'static str,
    },
    /// A threshold queried on a sweep is not one of its grid points
    /// (sweep lookups are exact-match only).
    ThresholdOffGrid {
        /// Conventional name of the threshold (`eta`, `gamma`, `theta`).
        name: &'static str,
        /// The requested off-grid value.
        value: f64,
    },
    /// The requested operation needs an exhaustive enumeration of possible
    /// worlds, but the graph has too many edges.
    GraphTooLargeForExact {
        /// Number of edges of the offending graph.
        num_edges: usize,
        /// Maximum number of edges supported.
        max_edges: usize,
    },
    /// A referenced triangle does not exist in the graph.
    UnknownTriangle {
        /// The vertices of the missing triangle.
        vertices: [u32; 3],
    },
    /// Propagated graph error.
    Graph(ugraph::GraphError),
    /// An edge-update batch was rejected before any state was modified.
    Update(ugraph::UpdateError),
}

impl fmt::Display for NucleusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NucleusError::InvalidThreshold { name, value } => {
                write!(f, "invalid value {value} for parameter '{name}'")
            }
            NucleusError::InvalidThetaGrid(e) => write!(f, "invalid theta grid: {e}"),
            NucleusError::UnsupportedMethod { rank, method } => write!(
                f,
                "scoring method '{method}' is not supported by the {rank} decomposition"
            ),
            NucleusError::RankMismatch { expected, got } => write!(
                f,
                "operation requires a {expected}-rank handle, but this one was built for {got}"
            ),
            NucleusError::ThresholdOffGrid { name, value } => write!(
                f,
                "{name} = {value} is not a grid point of this sweep (lookups are exact-match)"
            ),
            NucleusError::GraphTooLargeForExact {
                num_edges,
                max_edges,
            } => write!(
                f,
                "exact possible-world enumeration supports at most {max_edges} edges, got {num_edges}"
            ),
            NucleusError::UnknownTriangle { vertices } => write!(
                f,
                "triangle ({}, {}, {}) does not exist in the graph",
                vertices[0], vertices[1], vertices[2]
            ),
            NucleusError::Graph(e) => write!(f, "graph error: {e}"),
            NucleusError::Update(e) => write!(f, "update rejected: {e}"),
        }
    }
}

impl std::error::Error for NucleusError {}

impl From<ugraph::GraphError> for NucleusError {
    fn from(e: ugraph::GraphError) -> Self {
        NucleusError::Graph(e)
    }
}

impl From<ugraph::UpdateError> for NucleusError {
    fn from(e: ugraph::UpdateError) -> Self {
        NucleusError::Update(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NucleusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NucleusError::InvalidThreshold {
            name: "theta",
            value: 1.5,
        };
        assert!(e.to_string().contains("theta"));

        let e = NucleusError::GraphTooLargeForExact {
            num_edges: 100,
            max_edges: 24,
        };
        assert!(e.to_string().contains("100"));

        let e = NucleusError::UnknownTriangle {
            vertices: [1, 2, 3],
        };
        assert!(e.to_string().contains("(1, 2, 3)"));

        let g: NucleusError = ugraph::GraphError::SelfLoop { vertex: 4 }.into();
        assert!(g.to_string().contains("graph error"));

        let e = NucleusError::RankMismatch {
            expected: "nucleus",
            got: "truss",
        };
        assert!(e.to_string().contains("nucleus"));
        assert!(e.to_string().contains("truss"));

        let e = NucleusError::ThresholdOffGrid {
            name: "theta",
            value: 0.33,
        };
        assert!(e.to_string().contains("0.33"));
        assert!(e.to_string().contains("theta"));

        let u: NucleusError = ugraph::UpdateError::EdgeMissing {
            index: 3,
            edge: (1, 2),
        }
        .into();
        assert!(u.to_string().starts_with("update rejected:"));
        assert!(u.to_string().contains('3'));
    }

    #[test]
    fn theta_grid_display_messages() {
        let cases: [(ThetaGridError, &str); 5] = [
            (ThetaGridError::Empty, "empty"),
            (ThetaGridError::NaN { index: 2 }, "NaN"),
            (
                ThetaGridError::OutOfRange {
                    index: 1,
                    value: 1.5,
                },
                "outside (0, 1]",
            ),
            (ThetaGridError::NotSorted { index: 3 }, "sorted"),
            (
                ThetaGridError::Duplicate {
                    index: 1,
                    value: 0.5,
                },
                "duplicates",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
            let wrapped = NucleusError::InvalidThetaGrid(e);
            assert!(wrapped.to_string().starts_with("invalid theta grid:"));
        }
    }
}
