//! Error type for the probabilistic nucleus decomposition.

use std::fmt;

/// Errors produced by the decomposition algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum NucleusError {
    /// A threshold parameter was outside its valid range.
    InvalidThreshold {
        /// Name of the parameter (`theta`, `epsilon`, `delta`, …).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The requested operation needs an exhaustive enumeration of possible
    /// worlds, but the graph has too many edges.
    GraphTooLargeForExact {
        /// Number of edges of the offending graph.
        num_edges: usize,
        /// Maximum number of edges supported.
        max_edges: usize,
    },
    /// A referenced triangle does not exist in the graph.
    UnknownTriangle {
        /// The vertices of the missing triangle.
        vertices: [u32; 3],
    },
    /// Propagated graph error.
    Graph(ugraph::GraphError),
}

impl fmt::Display for NucleusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NucleusError::InvalidThreshold { name, value } => {
                write!(f, "invalid value {value} for parameter '{name}'")
            }
            NucleusError::GraphTooLargeForExact {
                num_edges,
                max_edges,
            } => write!(
                f,
                "exact possible-world enumeration supports at most {max_edges} edges, got {num_edges}"
            ),
            NucleusError::UnknownTriangle { vertices } => write!(
                f,
                "triangle ({}, {}, {}) does not exist in the graph",
                vertices[0], vertices[1], vertices[2]
            ),
            NucleusError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for NucleusError {}

impl From<ugraph::GraphError> for NucleusError {
    fn from(e: ugraph::GraphError) -> Self {
        NucleusError::Graph(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NucleusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NucleusError::InvalidThreshold {
            name: "theta",
            value: 1.5,
        };
        assert!(e.to_string().contains("theta"));

        let e = NucleusError::GraphTooLargeForExact {
            num_edges: 100,
            max_edges: 24,
        };
        assert!(e.to_string().contains("100"));

        let e = NucleusError::UnknownTriangle {
            vertices: [1, 2, 3],
        };
        assert!(e.to_string().contains("(1, 2, 3)"));

        let g: NucleusError = ugraph::GraphError::SelfLoop { vertex: 4 }.into();
        assert!(g.to_string().contains("graph error"));
    }
}
