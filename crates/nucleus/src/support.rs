//! Per-triangle 4-clique support structure.
//!
//! Section 5.1 of the paper expresses the probabilistic support of a
//! triangle `△ = (u, v, w)` through the independent Bernoulli variables
//! `E_i`: for every common neighbour `z_i` of the triangle's vertices,
//! `E_i = 1` when the three edges `(u, z_i)`, `(v, z_i)`, `(w, z_i)` all
//! exist, which happens with probability
//! `Pr(E_i) = p(u, z_i) · p(v, z_i) · p(w, z_i)`.  The `E_i` of one
//! triangle are mutually independent because the edge sets are disjoint.
//!
//! [`SupportStructure`] precomputes, for every triangle, the list of
//! 4-cliques containing it together with the corresponding `Pr(E_i)`, plus
//! the triangle's own existence probability `Pr(△)` — everything the DP,
//! the statistical approximations and the peeling loop need.

use ugraph::par::{self, Parallelism};
use ugraph::rs::RsSupport;
use ugraph::{
    FourClique, FourCliqueEnumerator, Triangle, TriangleId, TriangleIndex, UncertainGraph,
};

/// One 4-clique, expressed through the dense ids of its four triangles and
/// the completion probability `Pr(E_i)` associated with each of them.
#[derive(Debug, Clone)]
pub struct CliqueRecord {
    /// The 4-clique in original vertex ids.
    pub clique: FourClique,
    /// Dense ids of the clique's four triangles (aligned with
    /// [`FourClique::triangles`]).
    pub triangles: [TriangleId; 4],
    /// `completion_probs[i]` is `Pr(E)` for `triangles[i]`: the probability
    /// that the three edges connecting the remaining vertex to that
    /// triangle all exist.
    pub completion_probs: [f64; 4],
}

impl CliqueRecord {
    /// Position of triangle `t` inside this clique (0..4).
    pub fn slot_of(&self, t: TriangleId) -> Option<usize> {
        self.triangles.iter().position(|&x| x == t)
    }

    /// `Pr(E_i)` for triangle `t`, or `None` when `t` is not a triangle of
    /// this clique.
    pub fn completion_prob(&self, t: TriangleId) -> Option<f64> {
        self.slot_of(t).map(|i| self.completion_probs[i])
    }
}

/// The support structure of a probabilistic graph: triangles, 4-cliques,
/// and the per-triangle completion probabilities.
#[derive(Debug, Clone)]
pub struct SupportStructure {
    index: TriangleIndex,
    triangle_probs: Vec<f64>,
    cliques: Vec<CliqueRecord>,
    cliques_of: Vec<Vec<u32>>,
}

impl SupportStructure {
    /// Builds the support structure of `graph`.
    pub fn build(graph: &UncertainGraph) -> Self {
        Self::build_with(graph, Parallelism::Sequential)
    }

    /// [`SupportStructure::build`] with an explicit [`Parallelism`]
    /// setting.
    ///
    /// Triangle enumeration, 4-clique enumeration, triangle-probability
    /// computation and clique-record construction all run as chunked
    /// parallel scans; chunk results are merged in index order, so the
    /// structure is bit-identical to the sequential build for every thread
    /// count.
    pub fn build_with(graph: &UncertainGraph, parallelism: Parallelism) -> Self {
        let index = TriangleIndex::build_with(graph, parallelism);
        let raw_cliques = FourCliqueEnumerator::with_parallelism(graph, parallelism).into_cliques();
        Self::assemble(graph, index, raw_cliques, parallelism)
    }

    /// Repairs the structure after an edge-update batch, reusing every
    /// triangle and 4-clique untouched by the batch instead of
    /// re-enumerating the whole graph.
    ///
    /// `new_graph` is the post-update graph and `inserted` the canonical
    /// `(u, v)` pairs of the net-inserted edges (as reported by
    /// [`ugraph::update::GraphDelta::inserted`]).  Surviving triangles and
    /// cliques are those whose edges all still exist; new ones can only
    /// contain an inserted edge, so a local enumeration around `inserted`
    /// completes the set.  Both runs are sorted and disjoint, so a merge
    /// reproduces the global enumeration order and the result is
    /// bit-identical to `SupportStructure::build_with(new_graph, _)`.
    pub fn repair(
        &self,
        new_graph: &UncertainGraph,
        inserted: &[(u32, u32)],
        parallelism: Parallelism,
    ) -> Self {
        let index = self.index.repair(new_graph, inserted);

        let survivors = self
            .cliques
            .iter()
            .map(|r| r.clique)
            .filter(|q| q.edges().iter().all(|&(u, v)| new_graph.has_edge(u, v)));
        let additions = ugraph::cliques::four_cliques_containing_edges(new_graph, inserted);
        // Survivors existed before the batch, additions contain a
        // net-inserted edge: the sorted runs are disjoint.
        let mut raw_cliques = Vec::with_capacity(self.cliques.len() + additions.len());
        let mut add = additions.into_iter().peekable();
        for q in survivors {
            while add.peek().is_some_and(|a| *a < q) {
                raw_cliques.push(add.next().unwrap());
            }
            raw_cliques.push(q);
        }
        raw_cliques.extend(add);

        Self::assemble(new_graph, index, raw_cliques, parallelism)
    }

    /// Shared tail of [`SupportStructure::build_with`] and
    /// [`SupportStructure::repair`]: computes triangle probabilities and
    /// clique records over an already-enumerated (sorted) triangle index
    /// and 4-clique list.
    fn assemble(
        graph: &UncertainGraph,
        index: TriangleIndex,
        raw_cliques: Vec<FourClique>,
        parallelism: Parallelism,
    ) -> Self {
        let triangles = index.triangles();
        let triangle_probs: Vec<f64> = par::par_map(parallelism, triangles.len(), |i| {
            triangles[i]
                .probability(graph)
                .expect("indexed triangle exists")
        });

        let cliques: Vec<CliqueRecord> = par::par_map(parallelism, raw_cliques.len(), |ci| {
            let clique = raw_cliques[ci];
            let tris = clique.triangles();
            let mut triangle_ids = [0 as TriangleId; 4];
            let mut completion_probs = [0.0f64; 4];
            let vertices = clique.vertices();
            for (slot, tri) in tris.iter().enumerate() {
                let id = index.id_of(tri).expect("triangle of clique is indexed");
                triangle_ids[slot] = id;
                // The completing vertex is the one vertex of the clique not
                // in the triangle.
                let z = vertices
                    .iter()
                    .copied()
                    .find(|v| !tri.contains(*v))
                    .expect("clique has exactly one vertex outside each triangle");
                let [a, b, c] = tri.vertices();
                let p = graph.edge_probability(a, z).expect("clique edge")
                    * graph.edge_probability(b, z).expect("clique edge")
                    * graph.edge_probability(c, z).expect("clique edge");
                completion_probs[slot] = p;
            }
            CliqueRecord {
                clique,
                triangles: triangle_ids,
                completion_probs,
            }
        });

        // The reverse index is a cheap sequential fill: O(4 · #cliques)
        // pushes into per-triangle lists, ordered by clique id exactly as
        // in the sequential build.  Clique indices are packed into `u32`
        // ids; the narrowing goes through the checked constructor so a
        // count past 2^32 fails typed instead of wrapping.
        if let Some(last) = cliques.len().checked_sub(1) {
            ugraph::error::checked_id("4-clique", last)
                .expect("4-clique count exceeds the packed 32-bit id space");
        }
        let mut cliques_of: Vec<Vec<u32>> = vec![Vec::new(); index.len()];
        for (record_id, record) in cliques.iter().enumerate() {
            for &t in &record.triangles {
                cliques_of[t as usize].push(record_id as u32);
            }
        }

        SupportStructure {
            index,
            triangle_probs,
            cliques,
            cliques_of,
        }
    }

    /// The triangle index the structure is expressed over.
    pub fn triangle_index(&self) -> &TriangleIndex {
        &self.index
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.index.len()
    }

    /// Number of 4-cliques.
    pub fn num_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// The triangle with dense id `t`.
    pub fn triangle(&self, t: TriangleId) -> Triangle {
        self.index.triangle(t)
    }

    /// Existence probability `Pr(△)` of triangle `t`.
    pub fn triangle_prob(&self, t: TriangleId) -> f64 {
        self.triangle_probs[t as usize]
    }

    /// The clique record with index `c`.
    pub fn clique(&self, c: u32) -> &CliqueRecord {
        &self.cliques[c as usize]
    }

    /// All clique records.
    pub fn cliques(&self) -> &[CliqueRecord] {
        &self.cliques
    }

    /// Indices of the cliques containing triangle `t` (the deterministic
    /// support of `t` is the length of this slice).
    pub fn cliques_of(&self, t: TriangleId) -> &[u32] {
        &self.cliques_of[t as usize]
    }

    /// Deterministic support `c_△` of triangle `t` (number of 4-cliques
    /// containing it).
    pub fn support(&self, t: TriangleId) -> usize {
        self.cliques_of[t as usize].len()
    }

    /// The completion probabilities `Pr(E_i)` of triangle `t` over the
    /// cliques accepted by `filter` (which receives the clique index).
    pub fn completion_probs_filtered<F>(&self, t: TriangleId, filter: F) -> Vec<f64>
    where
        F: FnMut(u32) -> bool,
    {
        let mut out = Vec::new();
        self.completion_probs_into(t, filter, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`SupportStructure::completion_probs_filtered`]: clears `out` and
    /// fills it with the accepted `Pr(E_i)` in clique-id order (the same
    /// order the allocating variant returns).  The peeling engine's score
    /// recomputations run through this with a reused buffer.
    pub fn completion_probs_into<F>(&self, t: TriangleId, mut filter: F, out: &mut Vec<f64>)
    where
        F: FnMut(u32) -> bool,
    {
        out.clear();
        for &c in &self.cliques_of[t as usize] {
            if filter(c) {
                out.push(
                    self.cliques[c as usize]
                        .completion_prob(t)
                        .expect("clique listed for t contains t"),
                );
            }
        }
    }

    /// The completion probabilities `Pr(E_i)` of triangle `t` over all its
    /// cliques.
    pub fn completion_probs(&self, t: TriangleId) -> Vec<f64> {
        self.completion_probs_filtered(t, |_| true)
    }

    /// The triangles that share a 4-clique with `t` (its peeling
    /// neighbours), without duplicates.
    pub fn neighbor_triangles(&self, t: TriangleId) -> Vec<TriangleId> {
        let mut out = Vec::new();
        for &c in &self.cliques_of[t as usize] {
            for &other in &self.cliques[c as usize].triangles {
                if other != t {
                    out.push(other);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The (3,4) instance of the generic engine: elements are triangles,
/// cells are 4-cliques.
///
/// The inherent accessors stay the primary API within this crate; the
/// trait view is what lets the shared `ugraph::rs` peeling engine drive a
/// nucleus decomposition.  Both go through the same fields, so scores are
/// identical whichever path gathers them.
impl RsSupport for SupportStructure {
    fn num_elements(&self) -> usize {
        self.num_triangles()
    }

    fn num_cells(&self) -> usize {
        self.num_cliques()
    }

    fn element_prob(&self, t: u32) -> f64 {
        self.triangle_prob(t)
    }

    fn cells_of(&self, t: u32) -> &[u32] {
        &self.cliques_of[t as usize]
    }

    fn cell_elements(&self, c: u32) -> &[u32] {
        &self.cliques[c as usize].triangles
    }

    fn completion_prob(&self, c: u32, t: u32) -> f64 {
        self.cliques[c as usize]
            .completion_prob(t)
            .expect("clique listed for t contains t")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn k4(p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, p).unwrap();
        }
        b.build()
    }

    fn k5(p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn k4_support_structure() {
        let g = k4(0.5);
        let s = SupportStructure::build(&g);
        assert_eq!(s.num_triangles(), 4);
        assert_eq!(s.num_cliques(), 1);
        for t in 0..4u32 {
            assert_eq!(s.support(t), 1);
            assert!((s.triangle_prob(t) - 0.125).abs() < 1e-12);
            let probs = s.completion_probs(t);
            assert_eq!(probs.len(), 1);
            assert!((probs[0] - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn k5_support_counts() {
        let g = k5(0.9);
        let s = SupportStructure::build(&g);
        assert_eq!(s.num_triangles(), 10);
        assert_eq!(s.num_cliques(), 5);
        for t in 0..10u32 {
            // In K5, each triangle is in 2 of the 5 4-cliques.
            assert_eq!(s.support(t), 2);
            assert_eq!(s.completion_probs(t).len(), 2);
            // Each neighbour list: triangles sharing a clique with t.
            // Each of the two cliques contributes 3 other triangles, and
            // the two sets are disjoint (they share only t).
            assert_eq!(s.neighbor_triangles(t).len(), 6);
        }
    }

    #[test]
    fn completion_probability_values() {
        // K4 with distinct edge probabilities; verify Pr(E_i) of triangle
        // (0,1,2) with completing vertex 3 is p03*p13*p23.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.8).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        b.add_edge(0, 3, 0.6).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(2, 3, 0.4).unwrap();
        let g = b.build();
        let s = SupportStructure::build(&g);
        let t = s.triangle_index().id_of(&Triangle::new(0, 1, 2)).unwrap();
        let probs = s.completion_probs(t);
        assert_eq!(probs.len(), 1);
        assert!((probs[0] - 0.6 * 0.5 * 0.4).abs() < 1e-12);
        assert!((s.triangle_prob(t) - 0.9 * 0.8 * 0.7).abs() < 1e-12);

        // For the triangle (0,1,3) the completing vertex is 2.
        let t2 = s.triangle_index().id_of(&Triangle::new(0, 1, 3)).unwrap();
        let probs2 = s.completion_probs(t2);
        assert!((probs2[0] - 0.8 * 0.7 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn clique_record_slots() {
        let g = k4(0.5);
        let s = SupportStructure::build(&g);
        let record = s.clique(0);
        for &t in &record.triangles {
            assert!(record.slot_of(t).is_some());
            assert!(record.completion_prob(t).is_some());
        }
        assert_eq!(record.slot_of(99), None);
        assert_eq!(record.completion_prob(99), None);
    }

    #[test]
    fn filtered_completion_probs() {
        let g = k5(0.5);
        let s = SupportStructure::build(&g);
        let t = 0u32;
        let all = s.completion_probs(t);
        assert_eq!(all.len(), 2);
        let first_clique = s.cliques_of(t)[0];
        let filtered = s.completion_probs_filtered(t, |c| c != first_clique);
        assert_eq!(filtered.len(), 1);
        let none = s.completion_probs_filtered(t, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn probs_into_matches_allocating_variant_and_clears_buffer() {
        let g = k5(0.7);
        let s = SupportStructure::build(&g);
        let mut buf = vec![99.0; 8]; // stale contents must be discarded
        for t in 0..s.num_triangles() as TriangleId {
            let first = s.cliques_of(t)[0];
            for keep_first in [true, false] {
                let expected = s.completion_probs_filtered(t, |c| keep_first || c != first);
                s.completion_probs_into(t, |c| keep_first || c != first, &mut buf);
                assert_eq!(buf.len(), expected.len());
                for (a, b) in buf.iter().zip(&expected) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let g = k5(0.7);
        let sequential = SupportStructure::build(&g);
        for threads in [1, 2, 8] {
            let par = SupportStructure::build_with(&g, Parallelism::fixed(threads));
            assert_eq!(par.num_triangles(), sequential.num_triangles());
            assert_eq!(par.num_cliques(), sequential.num_cliques());
            for t in 0..sequential.num_triangles() as TriangleId {
                assert_eq!(par.triangle(t), sequential.triangle(t));
                assert_eq!(
                    par.triangle_prob(t).to_bits(),
                    sequential.triangle_prob(t).to_bits()
                );
                assert_eq!(par.cliques_of(t), sequential.cliques_of(t));
            }
            for c in 0..sequential.num_cliques() as u32 {
                let (a, b) = (par.clique(c), sequential.clique(c));
                assert_eq!(a.clique, b.clique);
                assert_eq!(a.triangles, b.triangles);
                for slot in 0..4 {
                    assert_eq!(
                        a.completion_probs[slot].to_bits(),
                        b.completion_probs[slot].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn trait_view_matches_inherent_accessors_bitwise() {
        let g = k5(0.7);
        let s = SupportStructure::build(&g);
        assert_eq!(RsSupport::num_elements(&s), s.num_triangles());
        assert_eq!(RsSupport::num_cells(&s), s.num_cliques());
        let mut via_trait = Vec::new();
        for t in 0..s.num_triangles() as TriangleId {
            assert_eq!(
                RsSupport::element_prob(&s, t).to_bits(),
                s.triangle_prob(t).to_bits()
            );
            assert_eq!(RsSupport::cells_of(&s, t), s.cliques_of(t));
            assert_eq!(RsSupport::support(&s, t), s.support(t));
            let first = s.cliques_of(t)[0];
            RsSupport::completion_probs_into(&s, t, |c| c != first, &mut via_trait);
            let inherent = s.completion_probs_filtered(t, |c| c != first);
            assert_eq!(via_trait.len(), inherent.len());
            for (a, b) in via_trait.iter().zip(&inherent) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        for c in 0..s.num_cliques() as u32 {
            assert_eq!(RsSupport::cell_elements(&s, c), &s.clique(c).triangles);
        }
    }

    #[test]
    fn repair_is_bit_identical_to_a_fresh_build() {
        use ugraph::{apply_edge_updates, EdgeUpdate};
        // Two K4s sharing vertex 3, plus a pendant edge.
        let mut b = GraphBuilder::new();
        for &(u, v, p) in &[
            (0, 1, 0.9),
            (0, 2, 0.8),
            (0, 3, 0.7),
            (1, 2, 0.6),
            (1, 3, 0.5),
            (2, 3, 0.4),
            (3, 4, 0.9),
            (3, 5, 0.8),
            (4, 5, 0.7),
            (4, 6, 0.6),
            (5, 6, 0.5),
            (0, 7, 0.9),
        ] {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build();
        let s = SupportStructure::build(&g);

        let batches: Vec<Vec<EdgeUpdate>> = vec![
            // Inserts completing a new 4-clique (3,4,5,6) and a clique on
            // the first K4's fringe.
            vec![
                EdgeUpdate::Insert {
                    u: 3,
                    v: 6,
                    p: 0.45,
                },
                EdgeUpdate::Insert {
                    u: 1,
                    v: 7,
                    p: 0.35,
                },
                EdgeUpdate::Insert {
                    u: 0,
                    v: 4,
                    p: 0.25,
                },
            ],
            // Deletes destroying cliques/triangles.
            vec![
                EdgeUpdate::Delete { u: 2, v: 3 },
                EdgeUpdate::Delete { u: 4, v: 5 },
            ],
            // Mixed batch with netting (insert then delete the same edge).
            vec![
                EdgeUpdate::Insert {
                    u: 2,
                    v: 4,
                    p: 0.55,
                },
                EdgeUpdate::Reweight {
                    u: 0,
                    v: 1,
                    p: 0.15,
                },
                EdgeUpdate::Insert {
                    u: 6,
                    v: 7,
                    p: 0.65,
                },
                EdgeUpdate::Delete { u: 6, v: 7 },
            ],
        ];

        for batch in batches {
            let delta = apply_edge_updates(&g, &batch).unwrap();
            let fresh = SupportStructure::build(&delta.graph);
            for threads in [1, 2, 8] {
                let repaired = s.repair(&delta.graph, &delta.inserted, Parallelism::fixed(threads));
                assert_eq!(repaired.num_triangles(), fresh.num_triangles());
                assert_eq!(repaired.num_cliques(), fresh.num_cliques());
                for t in 0..fresh.num_triangles() as TriangleId {
                    assert_eq!(repaired.triangle(t), fresh.triangle(t));
                    assert_eq!(
                        repaired.triangle_prob(t).to_bits(),
                        fresh.triangle_prob(t).to_bits()
                    );
                    assert_eq!(repaired.cliques_of(t), fresh.cliques_of(t));
                }
                for c in 0..fresh.num_cliques() as u32 {
                    let (a, b) = (repaired.clique(c), fresh.clique(c));
                    assert_eq!(a.clique, b.clique);
                    assert_eq!(a.triangles, b.triangles);
                    for slot in 0..4 {
                        assert_eq!(
                            a.completion_probs[slot].to_bits(),
                            b.completion_probs[slot].to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn triangle_without_cliques() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        let g = b.build();
        let s = SupportStructure::build(&g);
        assert_eq!(s.num_triangles(), 1);
        assert_eq!(s.num_cliques(), 0);
        assert_eq!(s.support(0), 0);
        assert!(s.completion_probs(0).is_empty());
        assert!(s.neighbor_triangles(0).is_empty());
        assert_eq!(s.triangle(0), Triangle::new(0, 1, 2));
    }
}
