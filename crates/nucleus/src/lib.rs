//! # nucleus — probabilistic nucleus decomposition
//!
//! Reproduction of the algorithms of *"Nucleus Decomposition in
//! Probabilistic Graphs: Hardness and Algorithms"* (Esfahani, Srinivasan,
//! Thomo, Wu — ICDE 2022): the local, global and weakly-global
//! k-(3,4)-nucleus decompositions of a probabilistic graph.
//!
//! ## The three semantics
//!
//! For a probabilistic subgraph `H`, a triangle `△` of `H`, threshold
//! `θ ∈ (0, 1]` and integer `k ≥ 0` (Definitions 4 and 5):
//!
//! * **local** (`ℓ`): `Pr[△ exists and is contained in ≥ k 4-cliques of
//!   the sampled world] ≥ θ` for every triangle of `H` — computable in
//!   polynomial time ([`local`]).
//! * **global** (`g`): the sampled world must itself be a deterministic
//!   k-nucleus containing `△` — #P-hard, approximated by Monte-Carlo
//!   sampling over pruned candidates ([`global`]).
//! * **weakly-global** (`w`): the sampled world must contain a
//!   deterministic k-nucleus containing `△` — NP-hard, approximated the
//!   same way ([`weakly_global`]).
//!
//! ## Quick start
//!
//! ```
//! use nucleus::{LocalConfig, LocalNucleusDecomposition};
//! use ugraph::GraphBuilder;
//!
//! // A probabilistic 5-clique.
//! let mut b = GraphBuilder::new();
//! for u in 0..5u32 {
//!     for v in (u + 1)..5u32 {
//!         b.add_edge(u, v, 0.8).unwrap();
//!     }
//! }
//! let graph = b.build();
//!
//! let decomp = LocalNucleusDecomposition::compute(&graph, &LocalConfig::exact(0.1)).unwrap();
//! assert_eq!(decomp.max_score(), 2);
//! let nuclei = decomp.k_nuclei(&graph, 2);
//! assert_eq!(nuclei.len(), 1);
//! assert_eq!(nuclei[0].num_vertices(), 5);
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`support`] | 5.1 | per-triangle 4-clique completion probabilities |
//! | [`decomp`] | — | unified (r,s) surface: [`DecompConfig`], [`Decomposition`], [`DecompSweep`] over core/truss/nucleus |
//! | [`local`] | 5.1–5.2 | exact DP and the peeling algorithm (Algorithm 1) |
//! | [`local::sweep`] | 5, §7 sweeps | θ-sweep index: one support build amortized over a θ grid, O(log grid) (θ, k) queries |
//! | [`approx`] | 5.3 | Poisson / Translated-Poisson / Binomial / CLT approximations and the hybrid selector |
//! | [`global`] | 6 | Algorithm 2 (Monte-Carlo g-(k,θ)-nuclei) |
//! | [`weakly_global`] | 6 | Algorithm 3 (Monte-Carlo w-(k,θ)-nuclei) |
//! | [`sampling`] | 6, Lemma 4 | Hoeffding sample sizes, world sampling |
//! | [`exact`] | 3–4 | exhaustive possible-world oracles (ground truth for tests) |
//! | [`hardness`] | 4 | executable reduction gadgets (reliability → g, k-clique → w) |

pub mod approx;
pub mod config;
pub mod decomp;
pub mod error;
pub mod exact;
pub mod global;
pub mod hardness;
pub mod local;
pub mod sampling;
pub mod support;
pub mod weakly_global;

pub use approx::ApproxMethod;
pub use config::{ApproxThresholds, LocalConfig, SamplingConfig, ScoreMethod, SweepConfig};
pub use decomp::{
    DecompConfig, DecompHandle, DecompSweep, Decomposition, HandleUpdate, Rank, RankSupport,
    SupportRepair, UnknownRankError, UpdateOutcome, UpdateReport,
};
pub use error::{NucleusError, Result, ThetaGridError};
pub use global::{global_nuclei, GlobalConfig, GlobalNucleus};
pub use local::{LocalNucleusDecomposition, NucleusIndex, PeelStats, ThetaSweep};
pub use support::SupportStructure;
// Re-exported so update callers don't need a direct `ugraph` dependency.
pub use ugraph::{EdgeUpdate, UpdateError};
pub use weakly_global::{weakly_global_nuclei, WeaklyGlobalNucleus};
