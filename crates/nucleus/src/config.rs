//! Configuration types for the probabilistic nucleus decompositions.

use ugraph::Parallelism;

use crate::error::{NucleusError, Result, ThetaGridError};

/// Hyperparameters of the hybrid approximation framework (Section 5.3).
///
/// The conditions, checked in order for every triangle support query
/// (where `c` is the number of 4-cliques containing the triangle and
/// `Pr(E_i)` are the completion probabilities):
///
/// 1. `c ≥ a` → Lyapunov CLT (normal) approximation,
/// 2. `c < b` and all `Pr(E_i) < c_max` → Poisson approximation,
/// 3. `Σ Pr(E_i)² > 1` → Translated Poisson approximation,
/// 4. variance ratio ≥ `d` → Binomial approximation,
/// 5. otherwise → exact dynamic programming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxThresholds {
    /// Clique-count threshold `A` above which CLT is used.
    pub a: usize,
    /// Clique-count threshold `B` below which Poisson may be used.
    pub b: usize,
    /// Probability threshold `C` below which Poisson may be used.
    pub c_max: f64,
    /// Variance-ratio threshold `D` above which Binomial may be used.
    pub d: f64,
}

impl Default for ApproxThresholds {
    /// The values identified in the paper: `A = 200`, `B = 100`,
    /// `C = 0.25`, `D = 0.9`.
    fn default() -> Self {
        ApproxThresholds {
            a: 200,
            b: 100,
            c_max: 0.25,
            d: 0.9,
        }
    }
}

/// How the per-triangle support scores `κ` are computed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ScoreMethod {
    /// Exact dynamic programming for every triangle (the `DP` algorithm of
    /// the paper).
    #[default]
    DynamicProgramming,
    /// The hybrid statistical approximation framework (the `AP` algorithm
    /// of the paper), falling back to dynamic programming when no
    /// approximation condition holds.
    Hybrid(ApproxThresholds),
}

/// Configuration of the local nucleus decomposition (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalConfig {
    /// Probability threshold θ of Definition 5.
    pub theta: f64,
    /// How support scores are computed.
    pub method: ScoreMethod,
    /// Parallelism of the support-structure construction (triangle and
    /// 4-clique enumeration, completion probabilities).  Results are
    /// bit-identical for every setting; defaults to [`Parallelism::Auto`].
    pub parallelism: Parallelism,
}

impl LocalConfig {
    /// Exact DP configuration with the given threshold.
    pub fn exact(theta: f64) -> Self {
        LocalConfig {
            theta,
            method: ScoreMethod::DynamicProgramming,
            parallelism: Parallelism::Auto,
        }
    }

    /// Hybrid approximation configuration with the paper's default
    /// hyperparameters.
    pub fn approximate(theta: f64) -> Self {
        LocalConfig {
            theta,
            method: ScoreMethod::Hybrid(ApproxThresholds::default()),
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets the parallelism of the support-structure construction.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Validates the threshold.
    pub fn validate(&self) -> Result<()> {
        if !(self.theta > 0.0 && self.theta <= 1.0) || self.theta.is_nan() {
            return Err(NucleusError::InvalidThreshold {
                name: "theta",
                value: self.theta,
            });
        }
        validate_method(&self.method)
    }
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig::exact(0.1)
    }
}

/// Validates a scoring method's hyperparameters (shared by
/// [`LocalConfig`] and [`SweepConfig`]).
fn validate_method(method: &ScoreMethod) -> Result<()> {
    if let ScoreMethod::Hybrid(t) = method {
        if !(t.c_max > 0.0 && t.c_max <= 1.0) {
            return Err(NucleusError::InvalidThreshold {
                name: "approx.c_max",
                value: t.c_max,
            });
        }
        if !(t.d > 0.0 && t.d <= 1.0) {
            return Err(NucleusError::InvalidThreshold {
                name: "approx.d",
                value: t.d,
            });
        }
    }
    Ok(())
}

/// Validates a θ grid: non-empty, every entry finite and in `(0, 1]`,
/// sorted strictly ascending (no duplicates).  Each malformed mode maps
/// to its own [`ThetaGridError`] variant.
pub fn validate_theta_grid(thetas: &[f64]) -> Result<()> {
    if thetas.is_empty() {
        return Err(NucleusError::InvalidThetaGrid(ThetaGridError::Empty));
    }
    for (index, &value) in thetas.iter().enumerate() {
        if value.is_nan() {
            return Err(NucleusError::InvalidThetaGrid(ThetaGridError::NaN {
                index,
            }));
        }
        if !(value > 0.0 && value <= 1.0) {
            return Err(NucleusError::InvalidThetaGrid(ThetaGridError::OutOfRange {
                index,
                value,
            }));
        }
    }
    for index in 1..thetas.len() {
        if thetas[index] < thetas[index - 1] {
            return Err(NucleusError::InvalidThetaGrid(ThetaGridError::NotSorted {
                index,
            }));
        }
        if thetas[index] == thetas[index - 1] {
            return Err(NucleusError::InvalidThetaGrid(ThetaGridError::Duplicate {
                index,
                value: thetas[index],
            }));
        }
    }
    Ok(())
}

/// Configuration of a threshold-sweep decomposition
/// ([`DecompSweep`](crate::decomp::DecompSweep)): one support build
/// amortized across a whole grid of thresholds, at any rank of the
/// (r,s)-nucleus family.
///
/// This is the single validated builder behind every sweep surface:
/// [`ThetaSweep`](crate::local::sweep::ThetaSweep) is the `rank =
/// nucleus` instance (the constructors default to that rank for
/// source compatibility), and a single-threshold
/// [`DecompConfig`](crate::decomp::DecompConfig) expands into one via
/// [`DecompConfig::sweep`](crate::decomp::DecompConfig::sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The (r,s) instance to sweep.  The grid entries are interpreted as
    /// this rank's threshold (η, γ or θ).
    pub rank: crate::decomp::Rank,
    /// The threshold grid, sorted strictly ascending, every entry in
    /// `(0, 1]`.
    pub thetas: Vec<f64>,
    /// How support scores are computed (shared by every grid point).
    /// [`ScoreMethod::Hybrid`] is calibrated for the nucleus rank and
    /// rejected elsewhere.
    pub method: ScoreMethod,
    /// Parallelism of the support build and of the per-threshold peels
    /// (grids with ≥ 2 points peel grid points concurrently).  Results
    /// are bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl SweepConfig {
    /// Exact-DP sweep over the given grid, at the nucleus rank.
    pub fn exact(thetas: Vec<f64>) -> Self {
        SweepConfig {
            rank: crate::decomp::Rank::Nucleus,
            thetas,
            method: ScoreMethod::DynamicProgramming,
            parallelism: Parallelism::Auto,
        }
    }

    /// Hybrid-approximation sweep with the paper's default
    /// hyperparameters, at the nucleus rank.
    pub fn approximate(thetas: Vec<f64>) -> Self {
        SweepConfig {
            rank: crate::decomp::Rank::Nucleus,
            thetas,
            method: ScoreMethod::Hybrid(ApproxThresholds::default()),
            parallelism: Parallelism::Auto,
        }
    }

    /// Selects the (r,s) instance the grid sweeps.
    pub fn with_rank(mut self, rank: crate::decomp::Rank) -> Self {
        self.rank = rank;
        self
    }

    /// Sets the parallelism of the sweep.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Validates the grid ([`validate_theta_grid`]), the scoring method's
    /// hyperparameters, and the method/rank combination (hybrid scoring
    /// is nucleus-only).
    pub fn validate(&self) -> Result<()> {
        validate_theta_grid(&self.thetas)?;
        validate_method(&self.method)?;
        if self.rank != crate::decomp::Rank::Nucleus
            && matches!(self.method, ScoreMethod::Hybrid(_))
        {
            return Err(NucleusError::UnsupportedMethod {
                rank: self.rank.as_str(),
                method: "hybrid",
            });
        }
        Ok(())
    }
}

/// Monte-Carlo sampling configuration for the global and weakly-global
/// algorithms (Algorithms 2 and 3).
///
/// By Hoeffding's inequality (Lemma 4), `n ≥ ⌈ln(2/δ) / (2ε²)⌉` samples
/// give an estimate within `ε` of the true probability with confidence
/// `1 − δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Additive error bound ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Optional explicit sample-count override (the paper uses `n = 200`
    /// for ε = δ = 0.1).
    pub num_samples_override: Option<usize>,
    /// RNG seed for reproducible sampling.
    pub seed: u64,
}

impl SamplingConfig {
    /// Creates a configuration with the given error bound and confidence.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        SamplingConfig {
            epsilon,
            delta,
            num_samples_override: None,
            seed: 0x5eed,
        }
    }

    /// Overrides the Hoeffding-derived number of samples.
    pub fn with_num_samples(mut self, n: usize) -> Self {
        self.num_samples_override = Some(n);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of possible worlds to sample (Lemma 4), or the override.
    pub fn num_samples(&self) -> usize {
        if let Some(n) = self.num_samples_override {
            return n;
        }
        crate::sampling::hoeffding_sample_size(self.epsilon, self.delta)
    }

    /// Validates ε and δ.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) || self.epsilon.is_nan() {
            return Err(NucleusError::InvalidThreshold {
                name: "epsilon",
                value: self.epsilon,
            });
        }
        if !(self.delta > 0.0 && self.delta <= 1.0) || self.delta.is_nan() {
            return Err(NucleusError::InvalidThreshold {
                name: "delta",
                value: self.delta,
            });
        }
        Ok(())
    }
}

impl Default for SamplingConfig {
    /// ε = 0.1, δ = 0.1 as in the paper's experiments.
    fn default() -> Self {
        SamplingConfig::new(0.1, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_match_paper() {
        let t = ApproxThresholds::default();
        assert_eq!(t.a, 200);
        assert_eq!(t.b, 100);
        assert_eq!(t.c_max, 0.25);
        assert_eq!(t.d, 0.9);
    }

    #[test]
    fn local_config_constructors() {
        let e = LocalConfig::exact(0.3);
        assert_eq!(e.theta, 0.3);
        assert_eq!(e.method, ScoreMethod::DynamicProgramming);
        assert_eq!(e.parallelism, Parallelism::Auto);
        let a = LocalConfig::approximate(0.3);
        assert!(matches!(a.method, ScoreMethod::Hybrid(_)));
        assert!(e.validate().is_ok());
        assert!(a.validate().is_ok());
        let s = e.with_parallelism(Parallelism::Sequential);
        assert_eq!(s.parallelism, Parallelism::Sequential);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn local_config_validation() {
        assert!(LocalConfig::exact(0.0).validate().is_err());
        assert!(LocalConfig::exact(1.1).validate().is_err());
        assert!(LocalConfig::exact(f64::NAN).validate().is_err());
        let mut cfg = LocalConfig::approximate(0.5);
        if let ScoreMethod::Hybrid(ref mut t) = cfg.method {
            t.c_max = 0.0;
        }
        assert!(cfg.validate().is_err());
        let mut cfg = LocalConfig::approximate(0.5);
        if let ScoreMethod::Hybrid(ref mut t) = cfg.method {
            t.d = 2.0;
        }
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn sweep_config_constructors() {
        let e = SweepConfig::exact(vec![0.1, 0.3, 0.9]);
        assert_eq!(e.method, ScoreMethod::DynamicProgramming);
        assert_eq!(e.parallelism, Parallelism::Auto);
        assert!(e.validate().is_ok());
        let a = SweepConfig::approximate(vec![0.2]).with_parallelism(Parallelism::Sequential);
        assert!(matches!(a.method, ScoreMethod::Hybrid(_)));
        assert_eq!(a.parallelism, Parallelism::Sequential);
        assert!(a.validate().is_ok());
        // A grid touching the boundaries of (0, 1] is valid.
        assert!(SweepConfig::exact(vec![f64::MIN_POSITIVE, 1.0])
            .validate()
            .is_ok());
    }

    #[test]
    fn sweep_config_rank_defaults_to_nucleus_and_is_settable() {
        use crate::decomp::Rank;
        assert_eq!(SweepConfig::exact(vec![0.5]).rank, Rank::Nucleus);
        assert_eq!(SweepConfig::approximate(vec![0.5]).rank, Rank::Nucleus);
        let c = SweepConfig::exact(vec![0.5]).with_rank(Rank::Truss);
        assert_eq!(c.rank, Rank::Truss);
        assert!(c.validate().is_ok());
        // Hybrid scoring is calibrated for the nucleus rank only.
        assert_eq!(
            SweepConfig::approximate(vec![0.5])
                .with_rank(Rank::Core)
                .validate(),
            Err(NucleusError::UnsupportedMethod {
                rank: "core",
                method: "hybrid",
            })
        );
    }

    #[test]
    fn empty_grid_is_rejected() {
        assert_eq!(
            SweepConfig::exact(vec![]).validate(),
            Err(NucleusError::InvalidThetaGrid(ThetaGridError::Empty))
        );
    }

    #[test]
    fn nan_grid_entry_is_rejected() {
        assert_eq!(
            SweepConfig::exact(vec![0.1, f64::NAN, 0.5]).validate(),
            Err(NucleusError::InvalidThetaGrid(ThetaGridError::NaN {
                index: 1
            }))
        );
    }

    #[test]
    fn out_of_range_grid_entries_are_rejected() {
        for (grid, index, value) in [
            (vec![0.0, 0.5], 0, 0.0),
            (vec![-0.2, 0.5], 0, -0.2),
            (vec![0.5, 1.5], 1, 1.5),
            (vec![0.5, f64::INFINITY], 1, f64::INFINITY),
        ] {
            assert_eq!(
                SweepConfig::exact(grid).validate(),
                Err(NucleusError::InvalidThetaGrid(ThetaGridError::OutOfRange {
                    index,
                    value
                }))
            );
        }
    }

    #[test]
    fn unsorted_grid_is_rejected() {
        assert_eq!(
            SweepConfig::exact(vec![0.5, 0.2, 0.8]).validate(),
            Err(NucleusError::InvalidThetaGrid(ThetaGridError::NotSorted {
                index: 1
            }))
        );
    }

    #[test]
    fn duplicate_grid_entry_is_rejected() {
        assert_eq!(
            SweepConfig::exact(vec![0.2, 0.5, 0.5]).validate(),
            Err(NucleusError::InvalidThetaGrid(ThetaGridError::Duplicate {
                index: 2,
                value: 0.5
            }))
        );
    }

    #[test]
    fn sweep_config_validates_method_thresholds_too() {
        let mut cfg = SweepConfig::approximate(vec![0.5]);
        if let ScoreMethod::Hybrid(ref mut t) = cfg.method {
            t.c_max = 0.0;
        }
        assert!(matches!(
            cfg.validate(),
            Err(NucleusError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn sampling_config_sample_count() {
        let cfg = SamplingConfig::new(0.1, 0.1);
        // ln(20)/(2*0.01) = 149.8 → 150.
        assert_eq!(cfg.num_samples(), 150);
        let cfg = cfg.with_num_samples(200);
        assert_eq!(cfg.num_samples(), 200);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn sampling_config_validation() {
        assert!(SamplingConfig::new(0.0, 0.1).validate().is_err());
        assert!(SamplingConfig::new(0.1, 0.0).validate().is_err());
        assert!(SamplingConfig::new(0.1, 1.5).validate().is_err());
        assert!(SamplingConfig::new(0.2, 0.05).validate().is_ok());
    }

    #[test]
    fn sampling_seed_is_configurable() {
        let cfg = SamplingConfig::default().with_seed(7);
        assert_eq!(cfg.seed, 7);
    }
}
