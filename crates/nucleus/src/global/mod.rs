//! Global probabilistic nucleus decomposition (g-NuDecomp, Algorithm 2).
//!
//! Computing `Pr(X_{H,△,g} ≥ k)` exactly requires all `2^{|E(H)|}`
//! possible worlds of the candidate subgraph and is #P-hard (Theorem 4.1),
//! so the algorithm combines two ideas:
//!
//! 1. **Search-space pruning**: every g-(k,θ)-nucleus is contained in an
//!    ℓ-(k,θ)-nucleus, so candidates are assembled only from the 4-cliques
//!    of the local decomposition's qualifying cliques.
//! 2. **Monte-Carlo estimation**: for each candidate `H`, `n` possible
//!    worlds of `H` are sampled (Lemma 4 fixes `n` from ε, δ) and the
//!    indicator `1_g` — the sampled world is a deterministic k-nucleus
//!    containing the triangle — is averaged per triangle.

use std::collections::{HashMap, HashSet};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{EdgeId, EdgeSubgraph, Triangle, TriangleId, UncertainGraph, WorldSampler};

use ugraph::Parallelism;

use crate::config::{LocalConfig, SamplingConfig, ScoreMethod};
use crate::error::Result;
use crate::local::LocalNucleusDecomposition;

/// Configuration of the global (and weakly-global) decompositions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalConfig {
    /// Probability threshold θ of Definition 5.
    pub theta: f64,
    /// Score method for the local pruning step.
    pub score_method: ScoreMethod,
    /// Monte-Carlo sampling parameters.
    pub sampling: SamplingConfig,
    /// Parallelism of the local pruning step's support construction.
    pub parallelism: Parallelism,
}

impl GlobalConfig {
    /// Creates a configuration with the given θ and default sampling.
    pub fn new(theta: f64) -> Self {
        GlobalConfig {
            theta,
            score_method: ScoreMethod::DynamicProgramming,
            sampling: SamplingConfig::default(),
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets the sampling configuration.
    pub fn with_sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = sampling;
        self
    }

    /// Sets the local score method used for pruning.
    pub fn with_score_method(mut self, method: ScoreMethod) -> Self {
        self.score_method = method;
        self
    }

    /// Sets the parallelism of the local pruning step.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    pub(crate) fn local_config(&self) -> LocalConfig {
        LocalConfig {
            theta: self.theta,
            method: self.score_method,
            parallelism: self.parallelism,
        }
    }
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig::new(0.001)
    }
}

/// One g-(k,θ)-nucleus found by Algorithm 2.
#[derive(Debug, Clone)]
pub struct GlobalNucleus {
    /// The `k` this nucleus was extracted for.
    pub k: u32,
    /// The nucleus as a materialized subgraph of the input graph.
    pub subgraph: EdgeSubgraph,
    /// The triangles of the nucleus, in original vertex ids.
    pub triangles: Vec<Triangle>,
    /// The smallest estimated `P̂r(X_{H,△,g} ≥ k)` over the triangles.
    pub min_probability: f64,
}

impl GlobalNucleus {
    /// Number of vertices of the nucleus.
    pub fn num_vertices(&self) -> usize {
        self.subgraph.num_vertices()
    }

    /// Number of edges of the nucleus.
    pub fn num_edges(&self) -> usize {
        self.subgraph.num_edges()
    }
}

/// Computes all g-(k,θ)-nuclei of `graph` for the given `k` (Algorithm 2).
pub fn global_nuclei(
    graph: &UncertainGraph,
    k: u32,
    config: &GlobalConfig,
) -> Result<Vec<GlobalNucleus>> {
    config.sampling.validate()?;
    let local = LocalNucleusDecomposition::compute(graph, &config.local_config())?;
    global_nuclei_with_local(graph, k, config, &local)
}

/// Same as [`global_nuclei`] but reuses a precomputed local decomposition
/// (which must have been computed with the same θ).
pub fn global_nuclei_with_local(
    graph: &UncertainGraph,
    k: u32,
    config: &GlobalConfig,
    local: &LocalNucleusDecomposition,
) -> Result<Vec<GlobalNucleus>> {
    config.sampling.validate()?;
    let support = local.support();
    let scores = local.scores();

    // Candidate space C: the 4-cliques whose four triangles all reach
    // ℓ-nucleusness ≥ k (the union of the ℓ-(k,θ)-nuclei).
    let candidate_cliques: Vec<u32> = (0..support.num_cliques() as u32)
        .filter(|&c| {
            support
                .clique(c)
                .triangles
                .iter()
                .all(|&t| scores[t as usize] >= k)
        })
        .collect();
    if candidate_cliques.is_empty() {
        return Ok(Vec::new());
    }
    let candidate_set: HashSet<u32> = candidate_cliques.iter().copied().collect();

    // cliques-of-triangle restricted to the candidate space.
    let mut candidate_cliques_of: HashMap<TriangleId, Vec<u32>> = HashMap::new();
    for &c in &candidate_cliques {
        for &t in &support.clique(c).triangles {
            candidate_cliques_of.entry(t).or_default().push(c);
        }
    }

    let n_samples = config.sampling.num_samples();
    let mut rng = ChaCha8Rng::seed_from_u64(config.sampling.seed);
    let mut tested: HashSet<Vec<u32>> = HashSet::new();
    let mut accepted: HashSet<Vec<EdgeId>> = HashSet::new();
    let mut solution = Vec::new();

    // Seed triangles in ascending id order — never in `HashMap` hash
    // order, which varies per process.  Each *new* candidate H consumes a
    // slice of the shared RNG stream, so the iteration order decides
    // which worlds each candidate is tested against; a stable order is
    // what makes the Monte-Carlo results reproducible run to run.
    let mut seed_triangles: Vec<TriangleId> = candidate_cliques_of.keys().copied().collect();
    seed_triangles.sort_unstable();

    for seed_triangle in seed_triangles {
        // Build the candidate H by 4-clique closure (lines 5-7).
        let mut h_cliques: HashSet<u32> = candidate_cliques_of[&seed_triangle]
            .iter()
            .copied()
            .collect();
        loop {
            // Triangles currently in H and their clique counts within H.
            let mut tri_count: HashMap<TriangleId, usize> = HashMap::new();
            for &c in &h_cliques {
                for &t in &support.clique(c).triangles {
                    *tri_count.entry(t).or_insert(0) += 1;
                }
            }
            let mut added = false;
            for (&t, &count) in &tri_count {
                if count < k as usize {
                    if let Some(extra) = candidate_cliques_of.get(&t) {
                        for &c in extra {
                            if candidate_set.contains(&c) && h_cliques.insert(c) {
                                added = true;
                            }
                        }
                    }
                }
            }
            if !added {
                break;
            }
        }

        let mut clique_key: Vec<u32> = h_cliques.iter().copied().collect();
        clique_key.sort_unstable();
        if !tested.insert(clique_key.clone()) {
            continue; // identical candidate already evaluated
        }

        // Materialize H.
        let mut edge_ids: Vec<EdgeId> = Vec::new();
        let mut triangles: Vec<Triangle> = Vec::new();
        for &c in &clique_key {
            let record = support.clique(c);
            for (u, v) in record.clique.edges() {
                edge_ids.push(graph.edge_id(u, v).expect("clique edge"));
            }
            for t in record.clique.triangles() {
                triangles.push(t);
            }
        }
        edge_ids.sort_unstable();
        edge_ids.dedup();
        triangles.sort_unstable();
        triangles.dedup();
        let sub = EdgeSubgraph::induced_by_edges(graph, &edge_ids);
        let h_graph = sub.graph();

        // Triangles of H in local vertex ids.
        let local_triangles: Vec<Triangle> = triangles
            .iter()
            .map(|t| {
                let [a, b, c] = t.vertices();
                Triangle::new(
                    sub.local_vertex(a).expect("vertex in H"),
                    sub.local_vertex(b).expect("vertex in H"),
                    sub.local_vertex(c).expect("vertex in H"),
                )
            })
            .collect();

        // Monte-Carlo estimation of Pr(X_{H,△,g} ≥ k) per triangle.
        let sampler = WorldSampler::new(h_graph);
        let mut hits = vec![0usize; local_triangles.len()];
        for _ in 0..n_samples {
            let world = sampler.sample(&mut rng);
            let det = world.materialize(h_graph);
            if !detdecomp::is_k_nucleus_lenient(&det, k) {
                continue;
            }
            for (i, t) in local_triangles.iter().enumerate() {
                let [a, b, c] = t.vertices();
                if world.contains_triangle(h_graph, a, b, c) {
                    hits[i] += 1;
                }
            }
        }
        let estimates: Vec<f64> = hits.iter().map(|&h| h as f64 / n_samples as f64).collect();
        let min_probability = estimates.iter().copied().fold(f64::INFINITY, f64::min);
        if estimates.iter().all(|&p| p >= config.theta) && accepted.insert(edge_ids.clone()) {
            solution.push(GlobalNucleus {
                k,
                subgraph: sub,
                triangles,
                min_probability,
            });
        }
    }

    solution.sort_by_key(|n| n.subgraph.original_vertices().to_vec());
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn figure3a_graph() -> UncertainGraph {
        // K4 on {1,2,3,5}: five certain edges plus (2,5) = 0.5.
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn finds_the_paper_figure3a_nucleus() {
        let g = figure3a_graph();
        let config = GlobalConfig::new(0.42)
            .with_sampling(SamplingConfig::default().with_num_samples(400).with_seed(3));
        let nuclei = global_nuclei(&g, 1, &config).unwrap();
        assert_eq!(nuclei.len(), 1);
        let n = &nuclei[0];
        assert_eq!(n.num_vertices(), 4);
        assert_eq!(n.num_edges(), 6);
        assert_eq!(n.triangles.len(), 4);
        // The true probability is 0.5; the estimate must be within the
        // Hoeffding bound of it.
        assert!((n.min_probability - 0.5).abs() < 0.1);
    }

    #[test]
    fn rejects_when_threshold_is_too_high() {
        let g = figure3a_graph();
        let config = GlobalConfig::new(0.8)
            .with_sampling(SamplingConfig::default().with_num_samples(400).with_seed(3));
        let nuclei = global_nuclei(&g, 1, &config).unwrap();
        assert!(nuclei.is_empty());
    }

    #[test]
    fn estimates_agree_with_exact_oracle() {
        // On a tiny graph, the accepted nuclei must be exactly those whose
        // exact global tail clears θ.
        let g = figure3a_graph();
        let theta = 0.42;
        let config = GlobalConfig::new(theta).with_sampling(
            SamplingConfig::default()
                .with_num_samples(800)
                .with_seed(11),
        );
        let nuclei = global_nuclei(&g, 1, &config).unwrap();
        assert_eq!(nuclei.len(), 1);
        for tri in &nuclei[0].triangles {
            let exact = crate::exact::exact_global_tail(&g, tri, 1).unwrap();
            assert!(exact >= theta - 0.1, "triangle {tri}: exact {exact}");
        }
    }

    #[test]
    fn figure2a_subgraph_is_not_a_global_nucleus_at_042() {
        // The full 5-vertex subgraph of Figure 2a has Pr(X_g ≥ 1) = 0.27
        // for its triangles, so at θ = 0.42 the only g-(1,θ)-nuclei are the
        // two K4s of Figure 3 (their candidates are generated from their
        // seed triangles).
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.add_edge(1, 4, 0.6).unwrap();
        b.add_edge(2, 4, 0.7).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build();
        let config = GlobalConfig::new(0.42)
            .with_sampling(SamplingConfig::default().with_num_samples(600).with_seed(5));
        let nuclei = global_nuclei(&g, 1, &config).unwrap();
        // Candidate construction starts from each triangle and pulls in
        // every candidate clique containing it; triangles shared by both
        // K4s pull in both cliques, producing the 5-vertex candidate with
        // probability 0.27 < θ which is rejected.  Triangles unique to one
        // K4 still yield candidates == that K4... except triangle (1,2,3)
        // belongs to both.  Triangles like (1,3,5) only belong to the K4
        // {1,2,3,5}, giving exactly the Figure 3a nucleus.
        assert!(!nuclei.is_empty());
        for n in &nuclei {
            assert_eq!(n.num_vertices(), 4);
            assert!(n.min_probability >= 0.3);
        }
    }

    #[test]
    fn empty_result_when_no_local_nuclei() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        let g = b.build();
        let nuclei = global_nuclei(&g, 1, &GlobalConfig::new(0.1)).unwrap();
        assert!(nuclei.is_empty());
    }

    #[test]
    fn invalid_sampling_config_is_rejected() {
        let g = figure3a_graph();
        let config = GlobalConfig::new(0.1).with_sampling(SamplingConfig::new(0.0, 0.1));
        assert!(global_nuclei(&g, 1, &config).is_err());
    }
}
