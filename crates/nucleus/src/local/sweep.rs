//! θ-sweep decomposition index: one support build, many thresholds.
//!
//! Every quantity Algorithm 1 derives from the graph *except* the scores
//! themselves — the triangle index, the 4-clique enumeration, the
//! completion probabilities `Pr(E_i)` — is independent of the threshold
//! θ, yet the paper's experiments (and any serving workload answering
//! "(θ, k)-nucleus?" queries) recompute all of it per θ.  This module
//! amortizes the dominant cost: [`ThetaSweep`] builds the
//! [`SupportStructure`] **exactly once**, then peels every grid point,
//! and packages the results as a [`NucleusIndex`]: per-θ score vectors,
//! initial scores, method counts and [`PeelStats`], queryable in O(log
//! grid) by [`scores_at`](NucleusIndex::scores_at) /
//! [`k_nuclei_at`](NucleusIndex::k_nuclei_at).
//!
//! Since the unified-API redesign, both types are **thin nucleus-rank
//! wrappers** over [`DecompSweep`] — the one sweep engine of the
//! workspace, which also sweeps the (1,2) core and (2,3) truss ranks.
//! New code should prefer [`DecompSweep`] with a
//! [`SweepConfig`] (whose `rank` defaults to nucleus); this surface is
//! kept source-compatible for the paper-facing θ vocabulary and the
//! triangle-specific queries.
//!
//! Every per-θ result is **bit-identical** to an independent
//! [`LocalNucleusDecomposition::compute`](super::LocalNucleusDecomposition::compute)
//! at that θ, for every parallelism setting — scores, initial scores,
//! method counts *and* perf counters (all thread-count-independent by
//! construction).  A differential proptest suite
//! (`tests/theta_sweep_equivalence.rs`) enforces this, and the exact-DP
//! rows of the index are checked non-increasing in θ (Definition 5: a
//! larger threshold can only shrink every tail set, so κ_θ(△) and ν_θ(△)
//! are monotone).
//!
//! The engine counts its support builds ([`NucleusIndex::support_builds`])
//! so the amortization claim is CI-gateable: `experiments thetasweep`
//! emits the counter into its JSON report and `bench-compare` pins it
//! to 1.

use std::collections::HashMap;
use std::sync::Arc;

use ugraph::{Triangle, TriangleIndex, UncertainGraph};

use crate::approx::ApproxMethod;
use crate::config::SweepConfig;
use crate::decomp::{DecompHandle, DecompSweep, Rank, RankSupport};
use crate::error::{NucleusError, Result};
use crate::local::{nuclei, PeelStats};
use crate::support::SupportStructure;

/// The θ-sweep engine: validates the grid once, then amortizes one
/// support-structure build across every threshold of the grid.
///
/// This is the `rank = nucleus` instance of [`DecompSweep`]; the
/// configuration's rank must be [`Rank::Nucleus`] (the [`SweepConfig`]
/// constructors default to it).
#[derive(Debug, Clone)]
pub struct ThetaSweep {
    config: SweepConfig,
}

impl ThetaSweep {
    /// Creates a sweep engine, validating `config` (grid, scoring
    /// hyperparameters, and that the rank is nucleus) up front.
    pub fn new(config: SweepConfig) -> Result<Self> {
        config.validate()?;
        if config.rank != Rank::Nucleus {
            return Err(NucleusError::RankMismatch {
                expected: Rank::Nucleus.as_str(),
                got: config.rank.as_str(),
            });
        }
        Ok(ThetaSweep { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// One-shot convenience: validate, build the support structure once,
    /// sweep the grid.
    pub fn compute(graph: &UncertainGraph, config: &SweepConfig) -> Result<NucleusIndex> {
        Self::new(config.clone())?.run(graph)
    }

    /// Builds the support structure (exactly once, with
    /// `config.parallelism`) and sweeps the grid over it.
    pub fn run(&self, graph: &UncertainGraph) -> Result<NucleusIndex> {
        Ok(NucleusIndex {
            sweep: DecompSweep::compute(graph, &self.config)?,
        })
    }

    /// Sweeps the grid over a prebuilt [`SupportStructure`] (the caller
    /// amortized the build; [`NucleusIndex::support_builds`] reports 0).
    pub fn run_with_support(&self, support: SupportStructure) -> Result<NucleusIndex> {
        let handle = DecompHandle::from_support(Arc::new(RankSupport::Nucleus(support)));
        Ok(NucleusIndex {
            sweep: handle.sweep(&self.config)?,
        })
    }
}

/// A multi-threshold decomposition index: per-triangle score vectors at
/// every grid point, over one shared [`SupportStructure`].  One build
/// answers any (θ, k) query on the grid.
///
/// A thin wrapper over a nucleus-rank [`DecompSweep`] (see
/// [`as_sweep`](Self::as_sweep)), kept for the θ vocabulary and the
/// triangle-specific queries.
#[derive(Debug, Clone)]
pub struct NucleusIndex {
    sweep: DecompSweep,
}

impl NucleusIndex {
    /// The underlying rank-generic sweep.
    pub fn as_sweep(&self) -> &DecompSweep {
        &self.sweep
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SweepConfig {
        self.sweep.config()
    }

    /// The θ grid, sorted ascending.
    pub fn thetas(&self) -> &[f64] {
        self.sweep.thresholds()
    }

    /// Number of grid points.
    pub fn grid_len(&self) -> usize {
        self.sweep.grid_len()
    }

    /// Number of triangles (shared by every grid point).
    pub fn num_triangles(&self) -> usize {
        self.sweep.num_elements()
    }

    /// The shared support structure.
    pub fn support(&self) -> &SupportStructure {
        self.sweep
            .nucleus_support()
            .expect("NucleusIndex wraps a nucleus-rank sweep by construction")
    }

    /// The shared triangle index.
    pub fn triangle_index(&self) -> &TriangleIndex {
        self.support().triangle_index()
    }

    /// Support-structure builds the engine performed (1 via
    /// [`ThetaSweep::run`], 0 via [`ThetaSweep::run_with_support`]).
    pub fn support_builds(&self) -> usize {
        self.sweep.support_builds()
    }

    /// Grid position of `theta` (exact match, O(log grid) binary search
    /// over the sorted grid), or `None` when θ is not a grid point.
    pub fn grid_index_of(&self, theta: f64) -> Option<usize> {
        self.sweep.grid_index_of(theta)
    }

    /// ℓ-nucleusness of every triangle at grid point `index` (panics when
    /// out of range; use [`scores_at`](Self::scores_at) for θ lookup).
    pub fn scores_at_index(&self, index: usize) -> &[u32] {
        self.sweep.scores_at_index(index)
    }

    /// ℓ-nucleusness of every triangle at threshold `theta`, or `None`
    /// when θ is not a grid point.
    pub fn scores_at(&self, theta: f64) -> Option<&[u32]> {
        self.sweep.scores_at(theta)
    }

    /// Initial κ scores at grid point `index`.
    pub fn initial_scores_at_index(&self, index: usize) -> &[u32] {
        self.sweep.initial_scores_at_index(index)
    }

    /// Initial κ scores at threshold `theta`, or `None` off the grid.
    pub fn initial_scores_at(&self, theta: f64) -> Option<&[u32]> {
        self.sweep.initial_scores_at(theta)
    }

    /// Per-θ evaluation-method counts at threshold `theta`.
    pub fn method_counts_at(&self, theta: f64) -> Option<&HashMap<ApproxMethod, usize>> {
        self.grid_index_of(theta)
            .map(|i| self.sweep.method_counts_at_index(i))
    }

    /// Per-θ peeling perf counters at threshold `theta`.
    pub fn peel_stats_at(&self, theta: f64) -> Option<&PeelStats> {
        self.grid_index_of(theta)
            .map(|i| self.sweep.peel_stats_at_index(i))
    }

    /// Peeling perf counters of every grid point, in grid order.
    pub fn peel_stats(&self) -> Vec<PeelStats> {
        self.sweep.peel_stats()
    }

    /// Sum of peeling-time score recomputations across the grid.
    pub fn total_dp_calls(&self) -> usize {
        self.sweep.total_dp_calls()
    }

    /// The largest ℓ-nucleusness at threshold `theta`, or `None` off the
    /// grid.
    pub fn max_score_at(&self, theta: f64) -> Option<u32> {
        self.sweep.max_score_at(theta)
    }

    /// ℓ-nucleusness of `triangle` across the whole grid (one entry per
    /// grid point, non-increasing for the exact-DP scorer), or `None`
    /// when the triangle is not in the graph.
    pub fn scores_across_grid(&self, triangle: &Triangle) -> Option<Vec<u32>> {
        let t = self.triangle_index().id_of(triangle)?;
        Some(
            (0..self.grid_len())
                .map(|gi| self.sweep.scores_at_index(gi)[t as usize])
                .collect(),
        )
    }

    /// `true` when every triangle's score row (final and initial) is
    /// non-increasing as θ grows across the grid.  Always holds for the
    /// exact-DP scorer; the metamorphic test suite asserts it.
    pub fn is_monotone_in_theta(&self) -> bool {
        self.sweep.is_monotone_in_threshold()
    }

    /// The maximal ℓ-(k,θ)-nuclei at grid point `theta`, or `None` off
    /// the grid.  The support structure is shared, so this is a pure
    /// O(cliques) extraction — no enumeration, no scoring.
    pub fn k_nuclei_at(
        &self,
        graph: &UncertainGraph,
        theta: f64,
        k: u32,
    ) -> Option<Vec<detdecomp::NucleusSubgraph>> {
        self.grid_index_of(theta).map(|i| {
            nuclei::extract_k_nuclei(graph, self.support(), self.sweep.scores_at_index(i), k)
        })
    }

    /// The union of all ℓ-(k,θ)-nuclei edges at grid point `theta`
    /// (candidate space of the global algorithm), or `None` off the grid.
    pub fn k_nuclei_union_edges_at(
        &self,
        graph: &UncertainGraph,
        theta: f64,
        k: u32,
    ) -> Option<Vec<ugraph::EdgeId>> {
        self.grid_index_of(theta).map(|i| {
            nuclei::k_nuclei_union_edges(graph, self.support(), self.sweep.scores_at_index(i), k)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalConfig;
    use crate::error::{NucleusError, ThetaGridError};
    use crate::local::LocalNucleusDecomposition;
    use ugraph::{GraphBuilder, Parallelism};

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn sweep_matches_independent_runs_on_a_fixture() {
        let g = complete(6, 0.7);
        let grid = vec![0.05, 0.2, 0.4, 0.6, 0.9];
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(grid.clone())).unwrap();
        assert_eq!(index.support_builds(), 1);
        assert_eq!(index.grid_len(), 5);
        for &theta in &grid {
            let solo = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
            assert_eq!(index.scores_at(theta).unwrap(), solo.scores());
            assert_eq!(
                index.initial_scores_at(theta).unwrap(),
                solo.initial_scores()
            );
            assert_eq!(index.method_counts_at(theta).unwrap(), solo.method_counts());
            assert_eq!(index.peel_stats_at(theta).unwrap(), solo.peel_stats());
            assert_eq!(index.max_score_at(theta).unwrap(), solo.max_score());
        }
    }

    #[test]
    fn run_with_support_reports_zero_builds() {
        let g = complete(5, 0.8);
        let sweep = ThetaSweep::new(SweepConfig::exact(vec![0.1, 0.5])).unwrap();
        let support = SupportStructure::build(&g);
        let index = sweep.run_with_support(support).unwrap();
        assert_eq!(index.support_builds(), 0);
        let direct = sweep.run(&g).unwrap();
        assert_eq!(direct.support_builds(), 1);
        for gi in 0..index.grid_len() {
            assert_eq!(index.scores_at_index(gi), direct.scores_at_index(gi));
            assert_eq!(
                index.initial_scores_at_index(gi),
                direct.initial_scores_at_index(gi)
            );
        }
    }

    #[test]
    fn theta_sweep_is_the_nucleus_instance_of_decomp_sweep() {
        let g = complete(6, 0.7);
        let grid = vec![0.1, 0.4, 0.8];
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(grid.clone())).unwrap();
        assert_eq!(index.as_sweep().rank(), Rank::Nucleus);
        let generic = DecompSweep::compute(&g, &SweepConfig::exact(grid.clone())).unwrap();
        for gi in 0..grid.len() {
            assert_eq!(index.scores_at_index(gi), generic.scores_at_index(gi));
            assert_eq!(
                index.initial_scores_at_index(gi),
                generic.initial_scores_at_index(gi)
            );
            assert_eq!(index.peel_stats()[gi], *generic.peel_stats_at_index(gi));
        }
        // A non-nucleus rank is a typed construction error.
        assert_eq!(
            ThetaSweep::new(SweepConfig::exact(vec![0.5]).with_rank(Rank::Truss)).unwrap_err(),
            NucleusError::RankMismatch {
                expected: "nucleus",
                got: "truss",
            }
        );
    }

    #[test]
    fn grid_lookup_is_exact_match_only() {
        let g = complete(5, 0.6);
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(vec![0.1, 0.3, 0.7])).unwrap();
        assert_eq!(index.grid_index_of(0.3), Some(1));
        assert_eq!(index.grid_index_of(0.2), None);
        assert!(index.scores_at(0.2).is_none());
        assert!(index.initial_scores_at(0.31).is_none());
        assert!(index.method_counts_at(f64::NAN).is_none());
        assert!(index.peel_stats_at(0.9).is_none());
        assert!(index.max_score_at(0.0).is_none());
        assert_eq!(index.thetas(), &[0.1, 0.3, 0.7]);
    }

    #[test]
    fn invalid_grids_are_rejected_before_any_work() {
        let g = complete(4, 0.5);
        assert_eq!(
            ThetaSweep::compute(&g, &SweepConfig::exact(vec![])).unwrap_err(),
            NucleusError::InvalidThetaGrid(ThetaGridError::Empty)
        );
        assert!(ThetaSweep::new(SweepConfig::exact(vec![0.5, 0.1])).is_err());
    }

    #[test]
    fn monotone_rows_and_per_triangle_queries() {
        let g = complete(6, 0.65);
        let index =
            ThetaSweep::compute(&g, &SweepConfig::exact(vec![0.05, 0.2, 0.5, 0.8])).unwrap();
        assert!(index.is_monotone_in_theta());
        let tri = index.triangle_index().triangle(0);
        let row = index.scores_across_grid(&tri).unwrap();
        assert_eq!(row.len(), 4);
        assert!(row.windows(2).all(|w| w[1] <= w[0]));
        assert!(index
            .scores_across_grid(&Triangle::new(90, 91, 92))
            .is_none());
    }

    #[test]
    fn k_nuclei_queries_match_single_theta_decompositions() {
        let g = complete(5, 0.9);
        let grid = vec![0.1, 0.5];
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(grid.clone())).unwrap();
        for &theta in &grid {
            let solo = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
            for k in 1..=2 {
                let from_index = index.k_nuclei_at(&g, theta, k).unwrap();
                let from_solo = solo.k_nuclei(&g, k);
                assert_eq!(from_index.len(), from_solo.len());
                for (a, b) in from_index.iter().zip(&from_solo) {
                    assert_eq!(a.cliques, b.cliques);
                    assert_eq!(a.triangles, b.triangles);
                }
                assert_eq!(
                    index.k_nuclei_union_edges_at(&g, theta, k).unwrap(),
                    solo.k_nuclei_union_edges(&g, k)
                );
            }
        }
        assert!(index.k_nuclei_at(&g, 0.33, 1).is_none());
    }

    #[test]
    fn sweep_is_identical_for_every_parallelism() {
        let g = complete(7, 0.6);
        let grid = vec![0.05, 0.15, 0.4, 0.75];
        let base = ThetaSweep::compute(
            &g,
            &SweepConfig::exact(grid.clone()).with_parallelism(Parallelism::Sequential),
        )
        .unwrap();
        for threads in [2, 8] {
            let par = ThetaSweep::compute(
                &g,
                &SweepConfig::exact(grid.clone()).with_parallelism(Parallelism::fixed(threads)),
            )
            .unwrap();
            for gi in 0..grid.len() {
                assert_eq!(
                    par.scores_at_index(gi),
                    base.scores_at_index(gi),
                    "threads = {threads}"
                );
                assert_eq!(
                    par.initial_scores_at_index(gi),
                    base.initial_scores_at_index(gi)
                );
                assert_eq!(par.peel_stats()[gi], base.peel_stats()[gi]);
            }
        }
    }

    #[test]
    fn single_point_grid_equals_a_plain_decomposition() {
        let g = complete(6, 0.7);
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(vec![0.25])).unwrap();
        let solo = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.25)).unwrap();
        assert_eq!(index.grid_len(), 1);
        assert_eq!(index.scores_at(0.25).unwrap(), solo.scores());
        assert_eq!(index.total_dp_calls(), solo.peel_stats().dp_calls);
    }

    #[test]
    fn empty_graph_sweeps_cleanly() {
        let g = UncertainGraph::empty(4);
        let index = ThetaSweep::compute(&g, &SweepConfig::exact(vec![0.1, 0.9])).unwrap();
        assert_eq!(index.num_triangles(), 0);
        assert_eq!(index.max_score_at(0.1), Some(0));
        assert!(index.is_monotone_in_theta());
        assert!(index.k_nuclei_at(&g, 0.9, 1).unwrap().is_empty());
    }

    #[test]
    fn hybrid_sweep_matches_independent_hybrid_runs() {
        let g = complete(7, 0.55);
        let grid = vec![0.05, 0.3, 0.7];
        let index = ThetaSweep::compute(&g, &SweepConfig::approximate(grid.clone())).unwrap();
        for &theta in &grid {
            let solo =
                LocalNucleusDecomposition::compute(&g, &LocalConfig::approximate(theta)).unwrap();
            assert_eq!(index.scores_at(theta).unwrap(), solo.scores());
            assert_eq!(index.method_counts_at(theta).unwrap(), solo.method_counts());
        }
    }
}
