//! Exact Poisson-binomial dynamic programming (Section 5.1 of the
//! paper).
//!
//! The DP is not (3,4)-specific: the same recurrence scores every rank
//! of the (r,s)-nucleus family, so the implementation lives in
//! [`ugraph::rs::dp`] where the probabilistic core (1,2) and truss (2,3)
//! engines share it.  This module re-exports it under its historical
//! path; the arithmetic is unchanged, so scores remain bit-identical to
//! earlier releases.
//!
//! In nucleus terms: `element_prob` is `Pr(△)`, the completion
//! probabilities are the `Pr(E_i)` of the 4-clique completion events of
//! the triangle (see [`crate::support`]), and [`max_k`] yields the
//! largest `k` with `Pr(X_{𝒢,△,ℓ} ≥ k) ≥ θ` (Proposition 5.1).

pub use ugraph::rs::dp::{
    local_tail_probability, max_k, max_k_with_scratch, support_pmf, support_tail, table_bytes,
    DpScratch,
};
