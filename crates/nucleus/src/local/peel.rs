//! The ℓ-NuDecomp peeling engine.
//!
//! Algorithm 1 peels triangles in non-decreasing order of their current
//! nucleus score κ.  The first implementation (kept verbatim as
//! [`super::reference`]) paid three avoidable costs on the hot path:
//!
//! 1. a `BinaryHeap` with lazy deletion, `O(log n)` per operation and full
//!    of stale entries,
//! 2. an **eager** full score recomputation (the `O(c²)` Poisson-binomial
//!    DP) for every affected triangle of every dead clique, and
//! 3. a fresh `Vec` allocation per completion-probability gather and per
//!    DP table.
//!
//! This module replaces all three for the exact-DP scorer by
//! instantiating the **generic (r,s) engine** of [`ugraph::rs`] at rank
//! (3,4) — [`SupportStructure`] implements
//! [`RsSupport`](ugraph::rs::RsSupport), and the probabilistic core and
//! truss decompositions drive the very same loop at ranks (1,2) and
//! (2,3):
//!
//! * **Monotone bucket queue** ([`ugraph::rs::BucketQueue`]): priorities
//!   are bounded by the largest initial κ and the drain level never
//!   decreases, so a `Vec<Vec<TriangleId>>` indexed by κ gives `O(1)`
//!   push/pop.
//! * **Deferred recompute** ([`ugraph::rs::peel_deferred`]): a clique
//!   death only decrements an alive-clique counter, marks the triangle
//!   dirty and (when needed) requeues it at the current level.  The DP
//!   runs at most once per pop, over the *batched* set of deaths since
//!   the last evaluation — and is skipped entirely when the cheap upper
//!   bound `min(κ, alive)` cannot exceed the current level, because the
//!   clamped score is then pinned to the level no matter what the DP
//!   would say.
//! * **Scratch arena** (`ScoreScratch`): the probability gather buffer
//!   and the DP pmf/tail tables are reused across evaluations, so the
//!   steady state allocates nothing.
//!
//! Deferral is only applied to the exact DP scorer because its score
//! function is *monotone* (removing a clique never raises κ — the tail of
//! the Poisson-binomial distribution is pointwise dominated), which makes
//! the peeling fixpoint independent of evaluation order.  The statistical
//! approximations of the hybrid scorer do not share that guarantee (e.g.
//! dropping a low-probability event can *raise* a Binomial tail
//! estimate), so [`ScoreMethod::Hybrid`] runs the eager heap loop —
//! still through the scratch arena — and stays bit-identical to the
//! reference by construction.
//!
//! The engine reports its work through [`PeelStats`]: deterministic
//! counters (never wall-clock) that CI diffs against a committed baseline
//! via `experiments bench-compare`, so an algorithmic-work regression
//! fails the build even though wall time is too noisy to gate on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use ugraph::par;
use ugraph::TriangleId;

use crate::approx::{self, ApproxMethod};
use crate::config::{LocalConfig, ScoreMethod};
use crate::local::dp::{self, DpScratch};
use crate::support::SupportStructure;

/// Deterministic perf counters — the generic engine's, re-exported under
/// the historical path.  In this crate `dp_calls` counts peel-phase DP
/// (or hybrid) evaluations; the initial κ pass is reported through
/// [`method_counts`](super::LocalNucleusDecomposition::method_counts)
/// instead.
pub use ugraph::rs::PeelStats;

/// Reusable scoring arena: one per worker thread (initial pass) or per
/// engine (peeling), so the steady state allocates nothing.
pub(crate) struct ScoreScratch {
    config: LocalConfig,
    probs: Vec<f64>,
    dp: DpScratch,
    /// Running maximum of the per-evaluation logical scratch requirement.
    peak_bytes: usize,
}

impl ScoreScratch {
    pub(crate) fn new(config: &LocalConfig) -> Self {
        ScoreScratch {
            config: *config,
            probs: Vec::new(),
            dp: DpScratch::new(),
            peak_bytes: 0,
        }
    }

    /// Scores triangle `t` over the cliques accepted by `filter`,
    /// returning the score and the evaluation method.  Bit-identical to
    /// scoring `support.completion_probs_filtered(t, filter)` through the
    /// allocating entry points.
    pub(crate) fn score<F>(
        &mut self,
        support: &SupportStructure,
        t: TriangleId,
        filter: F,
    ) -> (u32, ApproxMethod)
    where
        F: FnMut(u32) -> bool,
    {
        support.completion_probs_into(t, filter, &mut self.probs);
        let tri_prob = support.triangle_prob(t);
        let theta = self.config.theta;
        let (k, method) = match self.config.method {
            ScoreMethod::DynamicProgramming => (
                dp::max_k_with_scratch(&mut self.dp, tri_prob, &self.probs, theta),
                ApproxMethod::DynamicProgramming,
            ),
            ScoreMethod::Hybrid(thresholds) => approx::hybrid_max_k_with_scratch(
                &mut self.dp,
                tri_prob,
                &self.probs,
                theta,
                &thresholds,
            ),
        };
        // The DP tables are only materialized when the DP actually ran
        // (`max_k` returns early for sub-θ triangles without touching
        // them).
        let c = self.probs.len();
        let dp_tables = method == ApproxMethod::DynamicProgramming && tri_prob >= theta;
        let needed =
            c * std::mem::size_of::<f64>() + if dp_tables { dp::table_bytes(c) } else { 0 };
        self.peak_bytes = self.peak_bytes.max(needed);
        (k, method)
    }
}

/// Result of the initial κ pass.
pub(super) struct InitialScores {
    /// κ(△) over all cliques, indexed by triangle id.
    pub kappa: Vec<u32>,
    /// Evaluation method per triangle, accumulated in triangle-id order.
    pub method_counts: HashMap<ApproxMethod, usize>,
    /// Peak logical scratch bytes of the pass.
    pub peak_scratch_bytes: usize,
}

/// Computes the initial κ score of every triangle, in parallel chunks
/// with one [`ScoreScratch`] per chunk.  The per-chunk results are merged
/// in triangle-id order ([`par::par_map_init`]'s ordered-merge contract),
/// so scores, method counts and the scratch peak are identical for every
/// [`Parallelism`](ugraph::Parallelism) setting.
pub(super) fn initial_scores(support: &SupportStructure, config: &LocalConfig) -> InitialScores {
    let nt = support.num_triangles();
    let scored: Vec<(u32, ApproxMethod, usize)> = par::par_map_init(
        config.parallelism,
        nt,
        || ScoreScratch::new(config),
        |scratch, t| {
            let (k, method) = scratch.score(support, t as TriangleId, |_| true);
            (k, method, scratch.peak_bytes)
        },
    );
    let mut kappa = Vec::with_capacity(nt);
    let mut method_counts: HashMap<ApproxMethod, usize> = HashMap::new();
    let mut peak_scratch_bytes = 0usize;
    for (k, method, peak) in scored {
        kappa.push(k);
        *method_counts.entry(method).or_insert(0) += 1;
        // Per-item values are running per-chunk maxima; the overall
        // maximum equals the maximum over individual evaluations, which
        // is independent of the chunk partition.
        peak_scratch_bytes = peak_scratch_bytes.max(peak);
    }
    InitialScores {
        kappa,
        method_counts,
        peak_scratch_bytes,
    }
}

/// Peels the triangles given their initial κ scores, returning the final
/// ℓ-nucleusness of every triangle plus the engine's perf counters.
///
/// Dispatches on the scorer: the exact DP runs the deferred bucket-queue
/// engine, the hybrid approximations run the eager heap engine (see the
/// module docs for why).
pub(super) fn peel(
    support: &SupportStructure,
    config: &LocalConfig,
    kappa: Vec<u32>,
) -> (Vec<u32>, PeelStats) {
    match config.method {
        ScoreMethod::DynamicProgramming => peel_deferred(support, config, kappa),
        ScoreMethod::Hybrid(_) => peel_eager(support, config, kappa),
    }
}

/// The deferred bucket-queue engine (exact DP scorer only): the generic
/// [`ugraph::rs::peel_deferred`] instantiated with the (3,4) support and
/// the scratch-arena DP rescorer.  The generic loop owns the invariants
/// (κ upper bounds, alive counters, `min(κ, alive)` skip bound, lazy
/// deletion) and the `dp_calls`/`recompute_skips`/`buckets_touched`
/// counters; this wrapper folds the scratch arena's high-water mark into
/// the stats, exactly as the pre-generic engine did.
fn peel_deferred(
    support: &SupportStructure,
    config: &LocalConfig,
    kappa: Vec<u32>,
) -> (Vec<u32>, PeelStats) {
    let mut scratch = ScoreScratch::new(config);
    let (scores, mut stats) = ugraph::rs::peel_deferred(support, kappa, |t, clique_dead| {
        let (fresh, _) = scratch.score(support, t, |c| !clique_dead[c as usize]);
        fresh
    });
    stats.peak_scratch_bytes = scratch.peak_bytes;
    (scores, stats)
}

/// The eager heap engine: the reference algorithm (recompute on every
/// clique death, `BinaryHeap` with lazy deletion) driven through the
/// scratch arena.  Used for the hybrid scorer, whose approximations are
/// not monotone under clique removal — evaluating them over different
/// alive sets than the reference could flip a borderline score, so the
/// evaluation schedule is kept identical.
fn peel_eager(
    support: &SupportStructure,
    config: &LocalConfig,
    mut kappa: Vec<u32>,
) -> (Vec<u32>, PeelStats) {
    let nt = kappa.len();
    let nc = support.num_cliques();
    let mut stats = PeelStats::default();
    let mut scratch = ScoreScratch::new(config);

    let mut scores = vec![0u32; nt];
    let mut processed = vec![false; nt];
    let mut clique_dead = vec![false; nc];
    let mut heap: BinaryHeap<Reverse<(u32, TriangleId)>> = (0..nt)
        .map(|t| Reverse((kappa[t], t as TriangleId)))
        .collect();
    let mut level = 0u32;

    while let Some(Reverse((s, t))) = heap.pop() {
        let ti = t as usize;
        if processed[ti] || s != kappa[ti] {
            continue;
        }
        processed[ti] = true;
        level = level.max(s);
        scores[ti] = level;

        for &c in support.cliques_of(t) {
            if clique_dead[c as usize] {
                continue;
            }
            clique_dead[c as usize] = true;
            for &other in &support.clique(c).triangles {
                let oi = other as usize;
                if other == t || processed[oi] {
                    continue;
                }
                if kappa[oi] <= level {
                    stats.recompute_skips += 1;
                    continue;
                }
                let (fresh, _) = scratch.score(support, other, |cc| !clique_dead[cc as usize]);
                stats.dp_calls += 1;
                let recomputed = fresh.max(level);
                if recomputed < kappa[oi] {
                    kappa[oi] = recomputed;
                    heap.push(Reverse((recomputed, other)));
                }
            }
        }
    }

    stats.peak_scratch_bytes = scratch.peak_bytes;
    stats.peak_rss_bytes = ugraph::metrics::peak_rss_bytes();
    (scores, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{GraphBuilder, UncertainGraph};

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    // The bucket-queue unit tests moved to `ugraph::rs` together with the
    // queue itself; what stays here exercises the (3,4) instantiation.

    #[test]
    fn deferred_engine_skips_recomputes_via_the_cheap_bound() {
        // K5, every edge certain, θ small: every triangle has κ = 2 and
        // the whole graph peels at level 2.  Every pop of a dirty
        // triangle happens at level 2 with bound min(κ=2, alive) ≤ 2, so
        // the cheap bound resolves every single one — zero DP
        // recomputations against 5 · 3 = 15 (actually fewer after the
        // kappa ≤ level skip) in the eager engine.
        let g = complete(5, 1.0);
        let config = LocalConfig::exact(0.5);
        let support = SupportStructure::build(&g);
        let init = initial_scores(&support, &config);
        assert!(init.kappa.iter().all(|&k| k == 2));
        let (scores, stats) = peel_deferred(&support, &config, init.kappa.clone());
        assert!(scores.iter().all(|&s| s == 2));
        assert_eq!(stats.dp_calls, 0, "cheap bound must defeat every pop");
        assert!(stats.recompute_skips > 0);
        assert!(stats.buckets_touched >= 1);
        // No recompute ran, so the *peel-phase* scratch was never used;
        // the decomposition folds the initial pass's peak in.
        assert_eq!(stats.peak_scratch_bytes, 0);
        let full = super::super::LocalNucleusDecomposition::compute(&g, &config).unwrap();
        assert!(full.peel_stats().peak_scratch_bytes > 0);

        let (eager_scores, eager_stats) = peel_eager(&support, &config, init.kappa);
        assert_eq!(scores, eager_scores);
        // The eager engine dodges these pops through its own kappa ≤
        // level check and counts them as skips too.
        assert_eq!(eager_stats.dp_calls, 0);
        assert!(eager_stats.recompute_skips > 0);
    }

    #[test]
    fn deferred_engine_recomputes_when_the_bound_is_inconclusive() {
        // K5 on {0,1,2,4,5} plus a pendant 4-clique {0,1,2,3}: the hub
        // triangle (0,1,2) starts at κ = 3, the pendant's side triangles
        // at κ = 1, the other K5 triangles at κ = 2.  Peeling the pendant
        // at level 1 kills one hub clique, requeueing the hub at level 1
        // where its bound min(κ=3, alive=2) = 2 > 1 is inconclusive: the
        // engine must run one batched DP to learn the hub now sits at 2.
        let mut b = GraphBuilder::new();
        for &u in &[0u32, 1, 2, 4, 5] {
            for &v in &[0u32, 1, 2, 4, 5] {
                if u < v {
                    b.add_edge(u, v, 1.0).unwrap();
                }
            }
        }
        for &u in &[0u32, 1, 2] {
            b.add_edge(u, 3, 1.0).unwrap();
        }
        let g = b.build();
        let config = LocalConfig::exact(0.5);
        let support = SupportStructure::build(&g);
        let init = initial_scores(&support, &config);
        let (deferred, stats) = peel_deferred(&support, &config, init.kappa.clone());
        let (eager, eager_stats) = peel_eager(&support, &config, init.kappa);
        assert_eq!(deferred, eager);
        assert!(stats.dp_calls > 0, "inconclusive bounds must recompute");
        assert!(
            stats.dp_calls <= eager_stats.dp_calls,
            "deferral must never recompute more than the eager engine \
             ({} vs {})",
            stats.dp_calls,
            eager_stats.dp_calls
        );
        assert!(stats.peak_scratch_bytes > 0);
    }

    #[test]
    fn stats_are_deterministic_across_repeat_runs() {
        let g = complete(6, 0.7);
        let config = LocalConfig::exact(0.2);
        let support = SupportStructure::build(&g);
        let init = initial_scores(&support, &config);
        let (scores_a, stats_a) = peel_deferred(&support, &config, init.kappa.clone());
        let (scores_b, stats_b) = peel_deferred(&support, &config, init.kappa);
        assert_eq!(scores_a, scores_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn initial_pass_is_identical_for_every_parallelism() {
        use ugraph::Parallelism;
        let g = complete(7, 0.6);
        let support = SupportStructure::build(&g);
        let base = initial_scores(&support, &LocalConfig::exact(0.15));
        for threads in [1, 2, 8] {
            let cfg = LocalConfig::exact(0.15).with_parallelism(Parallelism::fixed(threads));
            let par = initial_scores(&support, &cfg);
            assert_eq!(par.kappa, base.kappa, "threads = {threads}");
            assert_eq!(par.method_counts, base.method_counts);
            assert_eq!(par.peak_scratch_bytes, base.peak_scratch_bytes);
        }
    }
}

/// Property suite: the production engine must be **bit-identical** to the
/// frozen [`reference`](super::reference) engine — scores, initial scores
/// and method counts — on random graphs, across θ, both scorers and every
/// parallelism setting.  This is the contract that lets the deferred
/// engine skip work: any observable divergence is a bug, not a tradeoff.
#[cfg(test)]
mod equivalence_proptests {
    use proptest::prelude::*;

    use super::super::reference;
    use super::super::LocalNucleusDecomposition;
    use crate::config::LocalConfig;
    use crate::support::SupportStructure;
    use ugraph::{GraphBuilder, Parallelism, UncertainGraph};

    /// A random probabilistic graph dense enough to grow 4-cliques.
    fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
        (4..=max_v)
            .prop_flat_map(move |n| {
                let pairs: Vec<(u32, u32)> = (0..n)
                    .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                    .collect();
                let m = pairs.len();
                (
                    Just(pairs),
                    proptest::collection::vec(0.0f64..1.0, m),
                    proptest::collection::vec(0.01f64..=1.0, m),
                )
            })
            .prop_map(move |(pairs, coin, probs)| {
                let mut b = GraphBuilder::new();
                for (i, (u, v)) in pairs.into_iter().enumerate() {
                    if coin[i] < density {
                        b.add_edge(u, v, probs[i]).unwrap();
                    }
                }
                b.build()
            })
    }

    fn assert_engines_agree(g: &UncertainGraph, config_for: impl Fn(Parallelism) -> LocalConfig) {
        let support = SupportStructure::build(g);
        let oracle = reference::decompose(&support, &config_for(Parallelism::Sequential)).unwrap();
        for par in [
            Parallelism::Sequential,
            Parallelism::fixed(2),
            Parallelism::fixed(8),
        ] {
            let engine =
                LocalNucleusDecomposition::with_support(support.clone(), &config_for(par)).unwrap();
            prop_assert_eq!(engine.scores(), &oracle.scores[..], "parallelism = {}", par);
            prop_assert_eq!(engine.initial_scores(), &oracle.initial_scores[..]);
            prop_assert_eq!(engine.method_counts(), &oracle.method_counts);
        }
    }

    proptest! {
        // Default config: 64 cases, scaled up via PROPTEST_CASES in CI's
        // thorough job.
        #![proptest_config(ProptestConfig::default())]

        /// Exact-DP scorer: the deferred bucket-queue engine against the
        /// eager heap reference.
        #[test]
        fn dp_engine_bit_identical_to_reference(
            g in arb_graph(11, 0.75),
            theta in 0.02f64..0.95,
        ) {
            assert_engines_agree(&g, |par| LocalConfig::exact(theta).with_parallelism(par));
        }

        /// Hybrid scorer: the eager scratch-arena engine against the
        /// allocating reference (same evaluation schedule by design).
        #[test]
        fn hybrid_engine_bit_identical_to_reference(
            g in arb_graph(10, 0.8),
            theta in 0.02f64..0.95,
        ) {
            assert_engines_agree(&g, |par| {
                LocalConfig::approximate(theta).with_parallelism(par)
            });
        }
    }
}
