//! The ℓ-NuDecomp peeling engine.
//!
//! Algorithm 1 peels triangles in non-decreasing order of their current
//! nucleus score κ.  The first implementation (kept verbatim as
//! [`super::reference`]) paid three avoidable costs on the hot path:
//!
//! 1. a `BinaryHeap` with lazy deletion, `O(log n)` per operation and full
//!    of stale entries,
//! 2. an **eager** full score recomputation (the `O(c²)` Poisson-binomial
//!    DP) for every affected triangle of every dead clique, and
//! 3. a fresh `Vec` allocation per completion-probability gather and per
//!    DP table.
//!
//! This module replaces all three for the exact-DP scorer:
//!
//! * **Monotone bucket queue** ([`BucketQueue`]): priorities are bounded
//!   by the largest initial κ and the drain level never decreases, so a
//!   `Vec<Vec<TriangleId>>` indexed by κ gives `O(1)` push/pop.
//! * **Deferred recompute**: a clique death only decrements an
//!   alive-clique counter, marks the triangle dirty and (when needed)
//!   requeues it at the current level.  The DP runs at most once per pop,
//!   over the *batched* set of deaths since the last evaluation — and is
//!   skipped entirely when the cheap upper bound `min(κ, alive)` cannot
//!   exceed the current level, because the clamped score is then pinned
//!   to the level no matter what the DP would say.
//! * **Scratch arena** ([`ScoreScratch`]): the probability gather buffer
//!   and the DP pmf/tail tables are reused across evaluations, so the
//!   steady state allocates nothing.
//!
//! Deferral is only applied to the exact DP scorer because its score
//! function is *monotone* (removing a clique never raises κ — the tail of
//! the Poisson-binomial distribution is pointwise dominated), which makes
//! the peeling fixpoint independent of evaluation order.  The statistical
//! approximations of the hybrid scorer do not share that guarantee (e.g.
//! dropping a low-probability event can *raise* a Binomial tail
//! estimate), so [`ScoreMethod::Hybrid`] runs the eager heap loop —
//! still through the scratch arena — and stays bit-identical to the
//! reference by construction.
//!
//! The engine reports its work through [`PeelStats`]: deterministic
//! counters (never wall-clock) that CI diffs against a committed baseline
//! via `experiments bench-compare`, so an algorithmic-work regression
//! fails the build even though wall time is too noisy to gate on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use ugraph::par;
use ugraph::TriangleId;

use crate::approx::{self, ApproxMethod};
use crate::config::{LocalConfig, ScoreMethod};
use crate::local::dp::{self, DpScratch};
use crate::support::SupportStructure;

/// Deterministic perf counters of one decomposition run.
///
/// Every field is a function of the graph and the configuration only —
/// independent of wall clock, thread count and allocator behaviour — so
/// the counters can be committed to a benchmark baseline and gated on in
/// CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeelStats {
    /// Full score recomputations performed during peeling (DP or, for the
    /// hybrid scorer, whichever approximation was selected).  The initial
    /// κ pass is not included: it is always exactly one evaluation per
    /// triangle and is reported through
    /// [`method_counts`](super::LocalNucleusDecomposition::method_counts).
    pub dp_calls: usize,
    /// Score recomputations avoided because the score was already pinned
    /// to the current level.  Deferred engine: pops of a dirty triangle
    /// resolved by the cheap `min(κ, alive)` bound alone.  Eager engine:
    /// per-neighbour `κ ≤ level` skips inside the clique-death loop (the
    /// reference implementation's own shortcut).  The two denominators
    /// differ, so don't compare this field across scorer kinds.
    pub recompute_skips: usize,
    /// Distinct bucket-queue priorities that ever held an entry (0 for
    /// the eager heap engine, which has no buckets).
    pub buckets_touched: usize,
    /// Logical high-water mark, in bytes, of the per-evaluation scratch:
    /// the probability gather buffer plus — when the DP tables were
    /// actually filled — the pmf/tail tables.  Counted from requested
    /// element counts, not allocator capacities, so it is identical for
    /// every thread count.
    pub peak_scratch_bytes: usize,
}

/// Reusable scoring arena: one per worker thread (initial pass) or per
/// engine (peeling), so the steady state allocates nothing.
pub(crate) struct ScoreScratch {
    config: LocalConfig,
    probs: Vec<f64>,
    dp: DpScratch,
    /// Running maximum of the per-evaluation logical scratch requirement.
    peak_bytes: usize,
}

impl ScoreScratch {
    pub(crate) fn new(config: &LocalConfig) -> Self {
        ScoreScratch {
            config: *config,
            probs: Vec::new(),
            dp: DpScratch::new(),
            peak_bytes: 0,
        }
    }

    /// Scores triangle `t` over the cliques accepted by `filter`,
    /// returning the score and the evaluation method.  Bit-identical to
    /// scoring `support.completion_probs_filtered(t, filter)` through the
    /// allocating entry points.
    pub(crate) fn score<F>(
        &mut self,
        support: &SupportStructure,
        t: TriangleId,
        filter: F,
    ) -> (u32, ApproxMethod)
    where
        F: FnMut(u32) -> bool,
    {
        support.completion_probs_into(t, filter, &mut self.probs);
        let tri_prob = support.triangle_prob(t);
        let theta = self.config.theta;
        let (k, method) = match self.config.method {
            ScoreMethod::DynamicProgramming => (
                dp::max_k_with_scratch(&mut self.dp, tri_prob, &self.probs, theta),
                ApproxMethod::DynamicProgramming,
            ),
            ScoreMethod::Hybrid(thresholds) => approx::hybrid_max_k_with_scratch(
                &mut self.dp,
                tri_prob,
                &self.probs,
                theta,
                &thresholds,
            ),
        };
        // The DP tables are only materialized when the DP actually ran
        // (`max_k` returns early for sub-θ triangles without touching
        // them).
        let c = self.probs.len();
        let dp_tables = method == ApproxMethod::DynamicProgramming && tri_prob >= theta;
        let needed =
            c * std::mem::size_of::<f64>() + if dp_tables { dp::table_bytes(c) } else { 0 };
        self.peak_bytes = self.peak_bytes.max(needed);
        (k, method)
    }
}

/// Result of the initial κ pass.
pub(super) struct InitialScores {
    /// κ(△) over all cliques, indexed by triangle id.
    pub kappa: Vec<u32>,
    /// Evaluation method per triangle, accumulated in triangle-id order.
    pub method_counts: HashMap<ApproxMethod, usize>,
    /// Peak logical scratch bytes of the pass.
    pub peak_scratch_bytes: usize,
}

/// Computes the initial κ score of every triangle, in parallel chunks
/// with one [`ScoreScratch`] per chunk.  The per-chunk results are merged
/// in triangle-id order ([`par::par_map_init`]'s ordered-merge contract),
/// so scores, method counts and the scratch peak are identical for every
/// [`Parallelism`](ugraph::Parallelism) setting.
pub(super) fn initial_scores(support: &SupportStructure, config: &LocalConfig) -> InitialScores {
    let nt = support.num_triangles();
    let scored: Vec<(u32, ApproxMethod, usize)> = par::par_map_init(
        config.parallelism,
        nt,
        || ScoreScratch::new(config),
        |scratch, t| {
            let (k, method) = scratch.score(support, t as TriangleId, |_| true);
            (k, method, scratch.peak_bytes)
        },
    );
    let mut kappa = Vec::with_capacity(nt);
    let mut method_counts: HashMap<ApproxMethod, usize> = HashMap::new();
    let mut peak_scratch_bytes = 0usize;
    for (k, method, peak) in scored {
        kappa.push(k);
        *method_counts.entry(method).or_insert(0) += 1;
        // Per-item values are running per-chunk maxima; the overall
        // maximum equals the maximum over individual evaluations, which
        // is independent of the chunk partition.
        peak_scratch_bytes = peak_scratch_bytes.max(peak);
    }
    InitialScores {
        kappa,
        method_counts,
        peak_scratch_bytes,
    }
}

/// Monotone bucket priority queue over small integer priorities.
///
/// Priorities are bounded by the largest initial κ and the drain level
/// never decreases, so the queue is a `Vec` of buckets scanned once from
/// priority 0 upward: push and pop are `O(1)`, and the whole peel costs
/// `O(max κ + pushes)` queue work.  Pushing below the current drain level
/// violates the monotone contract and is rejected in debug builds.
///
/// Stale entries are the caller's concern (lazy deletion): the queue
/// never removes an entry early, callers skip entries whose recorded
/// priority no longer matches.
pub(crate) struct BucketQueue {
    buckets: Vec<Vec<TriangleId>>,
    /// Bucket currently being drained.
    cursor: usize,
    /// Next unread index within `buckets[cursor]`.
    head: usize,
    /// Distinct priorities that ever received an entry.
    touched: usize,
}

impl BucketQueue {
    /// A queue accepting priorities `0..=max_priority`.
    pub(crate) fn new(max_priority: u32) -> Self {
        BucketQueue {
            buckets: vec![Vec::new(); max_priority as usize + 1],
            cursor: 0,
            head: 0,
            touched: 0,
        }
    }

    /// Inserts `id` at `priority`.  Monotone contract: `priority` must be
    /// at least the current drain level.
    pub(crate) fn push(&mut self, priority: u32, id: TriangleId) {
        let b = priority as usize;
        debug_assert!(
            b >= self.cursor,
            "monotone bucket queue: push at {b} below drain level {}",
            self.cursor
        );
        if self.buckets[b].is_empty() {
            self.touched += 1;
        }
        self.buckets[b].push(id);
    }

    /// Pops the next entry in non-decreasing priority order: entries
    /// within one bucket come out in insertion (FIFO) order, including
    /// entries pushed at the drain level mid-drain.
    pub(crate) fn pop(&mut self) -> Option<(u32, TriangleId)> {
        loop {
            let bucket = self.buckets.get_mut(self.cursor)?;
            if self.head < bucket.len() {
                let id = bucket[self.head];
                self.head += 1;
                return Some((self.cursor as u32, id));
            }
            // The drained bucket can never be pushed to again; release
            // its memory as the cursor leaves it.
            *bucket = Vec::new();
            self.cursor += 1;
            self.head = 0;
        }
    }

    /// Number of distinct priorities that ever held an entry.
    pub(crate) fn buckets_touched(&self) -> usize {
        self.touched
    }
}

/// Peels the triangles given their initial κ scores, returning the final
/// ℓ-nucleusness of every triangle plus the engine's perf counters.
///
/// Dispatches on the scorer: the exact DP runs the deferred bucket-queue
/// engine, the hybrid approximations run the eager heap engine (see the
/// module docs for why).
pub(super) fn peel(
    support: &SupportStructure,
    config: &LocalConfig,
    kappa: Vec<u32>,
) -> (Vec<u32>, PeelStats) {
    match config.method {
        ScoreMethod::DynamicProgramming => peel_deferred(support, config, kappa),
        ScoreMethod::Hybrid(_) => peel_eager(support, config, kappa),
    }
}

/// The deferred bucket-queue engine (exact DP scorer only).
///
/// Invariants, with `level` the current drain bucket:
///
/// * `kappa[t]` is the score of `t` over the cliques alive at its last
///   evaluation — an upper bound on the current score, because the DP
///   scorer is monotone under clique removal.
/// * `alive[t]` counts the alive cliques of `t`, so
///   `min(kappa[t], alive[t])` is a cheap upper bound on the current
///   score.
/// * every unprocessed triangle has exactly one live queue entry, at
///   `pos[t] ≥ level`; when a clique of `t` dies, `t` is requeued at the
///   current level (its score may have dropped arbitrarily far), where
///   the pop either skips via the cheap bound or recomputes once over
///   the batched deaths.
fn peel_deferred(
    support: &SupportStructure,
    config: &LocalConfig,
    mut kappa: Vec<u32>,
) -> (Vec<u32>, PeelStats) {
    let nt = kappa.len();
    let nc = support.num_cliques();
    let mut stats = PeelStats::default();
    let mut scratch = ScoreScratch::new(config);

    let mut scores = vec![0u32; nt];
    let mut processed = vec![false; nt];
    let mut dirty = vec![false; nt];
    let mut clique_dead = vec![false; nc];
    let mut alive: Vec<u32> = (0..nt)
        .map(|t| support.support(t as TriangleId) as u32)
        .collect();

    let max_kappa = kappa.iter().copied().max().unwrap_or(0);
    let mut queue = BucketQueue::new(max_kappa);
    let mut pos: Vec<u32> = kappa.clone();
    for (t, &k) in kappa.iter().enumerate() {
        queue.push(k, t as TriangleId);
    }

    while let Some((level, t)) = queue.pop() {
        let ti = t as usize;
        if processed[ti] || pos[ti] != level {
            continue; // lazily deleted stale entry
        }
        if dirty[ti] {
            let bound = kappa[ti].min(alive[ti]);
            if bound > level {
                // The batched recompute: one DP over the cliques still
                // alive, covering every death since the last evaluation.
                let (fresh, _) = scratch.score(support, t, |c| !clique_dead[c as usize]);
                stats.dp_calls += 1;
                // min() for defence in depth: the DP scorer is monotone,
                // so fresh ≤ kappa[ti] already holds.
                kappa[ti] = fresh.min(kappa[ti]);
                dirty[ti] = false;
                if kappa[ti] > level {
                    // Still above the level: requeue at its exact score.
                    pos[ti] = kappa[ti];
                    queue.push(kappa[ti], t);
                    continue;
                }
            } else {
                // min(κ, alive) ≤ level pins the clamped score to the
                // level; the DP result could not change anything.
                stats.recompute_skips += 1;
            }
        }
        processed[ti] = true;
        scores[ti] = level;

        // Every clique through t ceases to exist; affected triangles are
        // only marked, not rescored.
        for &c in support.cliques_of(t) {
            if clique_dead[c as usize] {
                continue;
            }
            clique_dead[c as usize] = true;
            for &other in &support.clique(c).triangles {
                let oi = other as usize;
                if other == t || processed[oi] {
                    continue;
                }
                alive[oi] -= 1;
                dirty[oi] = true;
                if pos[oi] > level {
                    // Its score may now be as low as the current level;
                    // requeue for (at most) one deferred recompute.
                    pos[oi] = level;
                    queue.push(level, other);
                }
            }
        }
    }

    stats.buckets_touched = queue.buckets_touched();
    stats.peak_scratch_bytes = scratch.peak_bytes;
    (scores, stats)
}

/// The eager heap engine: the reference algorithm (recompute on every
/// clique death, `BinaryHeap` with lazy deletion) driven through the
/// scratch arena.  Used for the hybrid scorer, whose approximations are
/// not monotone under clique removal — evaluating them over different
/// alive sets than the reference could flip a borderline score, so the
/// evaluation schedule is kept identical.
fn peel_eager(
    support: &SupportStructure,
    config: &LocalConfig,
    mut kappa: Vec<u32>,
) -> (Vec<u32>, PeelStats) {
    let nt = kappa.len();
    let nc = support.num_cliques();
    let mut stats = PeelStats::default();
    let mut scratch = ScoreScratch::new(config);

    let mut scores = vec![0u32; nt];
    let mut processed = vec![false; nt];
    let mut clique_dead = vec![false; nc];
    let mut heap: BinaryHeap<Reverse<(u32, TriangleId)>> = (0..nt)
        .map(|t| Reverse((kappa[t], t as TriangleId)))
        .collect();
    let mut level = 0u32;

    while let Some(Reverse((s, t))) = heap.pop() {
        let ti = t as usize;
        if processed[ti] || s != kappa[ti] {
            continue;
        }
        processed[ti] = true;
        level = level.max(s);
        scores[ti] = level;

        for &c in support.cliques_of(t) {
            if clique_dead[c as usize] {
                continue;
            }
            clique_dead[c as usize] = true;
            for &other in &support.clique(c).triangles {
                let oi = other as usize;
                if other == t || processed[oi] {
                    continue;
                }
                if kappa[oi] <= level {
                    stats.recompute_skips += 1;
                    continue;
                }
                let (fresh, _) = scratch.score(support, other, |cc| !clique_dead[cc as usize]);
                stats.dp_calls += 1;
                let recomputed = fresh.max(level);
                if recomputed < kappa[oi] {
                    kappa[oi] = recomputed;
                    heap.push(Reverse((recomputed, other)));
                }
            }
        }
    }

    stats.peak_scratch_bytes = scratch.peak_bytes;
    (scores, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{GraphBuilder, UncertainGraph};

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn bucket_queue_pops_in_priority_then_fifo_order() {
        let mut q = BucketQueue::new(3);
        q.push(2, 10);
        q.push(0, 11);
        q.push(2, 12);
        q.push(3, 13);
        q.push(0, 14);
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, vec![(0, 11), (0, 14), (2, 10), (2, 12), (3, 13)]);
        // Priorities 0, 2 and 3 held entries; 1 never did.
        assert_eq!(q.buckets_touched(), 3);
    }

    #[test]
    fn bucket_queue_accepts_pushes_at_the_drain_level() {
        let mut q = BucketQueue::new(2);
        q.push(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        // Mid-drain push at the current level must come out before any
        // higher bucket.
        q.push(1, 2);
        q.push(2, 3);
        assert_eq!(q.pop(), Some((1, 2)));
        assert_eq!(q.pop(), Some((2, 3)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "exhausted queue stays exhausted");
    }

    #[test]
    #[should_panic(expected = "monotone bucket queue")]
    #[cfg(debug_assertions)]
    fn bucket_queue_rejects_push_below_drain_level() {
        let mut q = BucketQueue::new(3);
        q.push(2, 1);
        assert_eq!(q.pop(), Some((2, 1)));
        q.push(1, 2);
    }

    #[test]
    fn empty_queue_and_zero_priority() {
        let mut q = BucketQueue::new(0);
        q.push(0, 7);
        assert_eq!(q.buckets_touched(), 1);
        assert_eq!(q.pop(), Some((0, 7)));
        assert_eq!(q.pop(), None);
        let mut empty = BucketQueue::new(5);
        assert_eq!(empty.pop(), None);
        assert_eq!(empty.buckets_touched(), 0);
    }

    #[test]
    fn deferred_engine_skips_recomputes_via_the_cheap_bound() {
        // K5, every edge certain, θ small: every triangle has κ = 2 and
        // the whole graph peels at level 2.  Every pop of a dirty
        // triangle happens at level 2 with bound min(κ=2, alive) ≤ 2, so
        // the cheap bound resolves every single one — zero DP
        // recomputations against 5 · 3 = 15 (actually fewer after the
        // kappa ≤ level skip) in the eager engine.
        let g = complete(5, 1.0);
        let config = LocalConfig::exact(0.5);
        let support = SupportStructure::build(&g);
        let init = initial_scores(&support, &config);
        assert!(init.kappa.iter().all(|&k| k == 2));
        let (scores, stats) = peel_deferred(&support, &config, init.kappa.clone());
        assert!(scores.iter().all(|&s| s == 2));
        assert_eq!(stats.dp_calls, 0, "cheap bound must defeat every pop");
        assert!(stats.recompute_skips > 0);
        assert!(stats.buckets_touched >= 1);
        // No recompute ran, so the *peel-phase* scratch was never used;
        // the decomposition folds the initial pass's peak in.
        assert_eq!(stats.peak_scratch_bytes, 0);
        let full = super::super::LocalNucleusDecomposition::compute(&g, &config).unwrap();
        assert!(full.peel_stats().peak_scratch_bytes > 0);

        let (eager_scores, eager_stats) = peel_eager(&support, &config, init.kappa);
        assert_eq!(scores, eager_scores);
        // The eager engine dodges these pops through its own kappa ≤
        // level check and counts them as skips too.
        assert_eq!(eager_stats.dp_calls, 0);
        assert!(eager_stats.recompute_skips > 0);
    }

    #[test]
    fn deferred_engine_recomputes_when_the_bound_is_inconclusive() {
        // K5 on {0,1,2,4,5} plus a pendant 4-clique {0,1,2,3}: the hub
        // triangle (0,1,2) starts at κ = 3, the pendant's side triangles
        // at κ = 1, the other K5 triangles at κ = 2.  Peeling the pendant
        // at level 1 kills one hub clique, requeueing the hub at level 1
        // where its bound min(κ=3, alive=2) = 2 > 1 is inconclusive: the
        // engine must run one batched DP to learn the hub now sits at 2.
        let mut b = GraphBuilder::new();
        for &u in &[0u32, 1, 2, 4, 5] {
            for &v in &[0u32, 1, 2, 4, 5] {
                if u < v {
                    b.add_edge(u, v, 1.0).unwrap();
                }
            }
        }
        for &u in &[0u32, 1, 2] {
            b.add_edge(u, 3, 1.0).unwrap();
        }
        let g = b.build();
        let config = LocalConfig::exact(0.5);
        let support = SupportStructure::build(&g);
        let init = initial_scores(&support, &config);
        let (deferred, stats) = peel_deferred(&support, &config, init.kappa.clone());
        let (eager, eager_stats) = peel_eager(&support, &config, init.kappa);
        assert_eq!(deferred, eager);
        assert!(stats.dp_calls > 0, "inconclusive bounds must recompute");
        assert!(
            stats.dp_calls <= eager_stats.dp_calls,
            "deferral must never recompute more than the eager engine \
             ({} vs {})",
            stats.dp_calls,
            eager_stats.dp_calls
        );
        assert!(stats.peak_scratch_bytes > 0);
    }

    #[test]
    fn stats_are_deterministic_across_repeat_runs() {
        let g = complete(6, 0.7);
        let config = LocalConfig::exact(0.2);
        let support = SupportStructure::build(&g);
        let init = initial_scores(&support, &config);
        let (scores_a, stats_a) = peel_deferred(&support, &config, init.kappa.clone());
        let (scores_b, stats_b) = peel_deferred(&support, &config, init.kappa);
        assert_eq!(scores_a, scores_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn initial_pass_is_identical_for_every_parallelism() {
        use ugraph::Parallelism;
        let g = complete(7, 0.6);
        let support = SupportStructure::build(&g);
        let base = initial_scores(&support, &LocalConfig::exact(0.15));
        for threads in [1, 2, 8] {
            let cfg = LocalConfig::exact(0.15).with_parallelism(Parallelism::fixed(threads));
            let par = initial_scores(&support, &cfg);
            assert_eq!(par.kappa, base.kappa, "threads = {threads}");
            assert_eq!(par.method_counts, base.method_counts);
            assert_eq!(par.peak_scratch_bytes, base.peak_scratch_bytes);
        }
    }
}

/// Property suite: the production engine must be **bit-identical** to the
/// frozen [`reference`](super::reference) engine — scores, initial scores
/// and method counts — on random graphs, across θ, both scorers and every
/// parallelism setting.  This is the contract that lets the deferred
/// engine skip work: any observable divergence is a bug, not a tradeoff.
#[cfg(test)]
mod equivalence_proptests {
    use proptest::prelude::*;

    use super::super::reference;
    use super::super::LocalNucleusDecomposition;
    use crate::config::LocalConfig;
    use crate::support::SupportStructure;
    use ugraph::{GraphBuilder, Parallelism, UncertainGraph};

    /// A random probabilistic graph dense enough to grow 4-cliques.
    fn arb_graph(max_v: u32, density: f64) -> impl Strategy<Value = UncertainGraph> {
        (4..=max_v)
            .prop_flat_map(move |n| {
                let pairs: Vec<(u32, u32)> = (0..n)
                    .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                    .collect();
                let m = pairs.len();
                (
                    Just(pairs),
                    proptest::collection::vec(0.0f64..1.0, m),
                    proptest::collection::vec(0.01f64..=1.0, m),
                )
            })
            .prop_map(move |(pairs, coin, probs)| {
                let mut b = GraphBuilder::new();
                for (i, (u, v)) in pairs.into_iter().enumerate() {
                    if coin[i] < density {
                        b.add_edge(u, v, probs[i]).unwrap();
                    }
                }
                b.build()
            })
    }

    fn assert_engines_agree(g: &UncertainGraph, config_for: impl Fn(Parallelism) -> LocalConfig) {
        let support = SupportStructure::build(g);
        let oracle = reference::decompose(&support, &config_for(Parallelism::Sequential)).unwrap();
        for par in [
            Parallelism::Sequential,
            Parallelism::fixed(2),
            Parallelism::fixed(8),
        ] {
            let engine =
                LocalNucleusDecomposition::with_support(support.clone(), &config_for(par)).unwrap();
            prop_assert_eq!(engine.scores(), &oracle.scores[..], "parallelism = {}", par);
            prop_assert_eq!(engine.initial_scores(), &oracle.initial_scores[..]);
            prop_assert_eq!(engine.method_counts(), &oracle.method_counts);
        }
    }

    proptest! {
        // Default config: 64 cases, scaled up via PROPTEST_CASES in CI's
        // thorough job.
        #![proptest_config(ProptestConfig::default())]

        /// Exact-DP scorer: the deferred bucket-queue engine against the
        /// eager heap reference.
        #[test]
        fn dp_engine_bit_identical_to_reference(
            g in arb_graph(11, 0.75),
            theta in 0.02f64..0.95,
        ) {
            assert_engines_agree(&g, |par| LocalConfig::exact(theta).with_parallelism(par));
        }

        /// Hybrid scorer: the eager scratch-arena engine against the
        /// allocating reference (same evaluation schedule by design).
        #[test]
        fn hybrid_engine_bit_identical_to_reference(
            g in arb_graph(10, 0.8),
            theta in 0.02f64..0.95,
        ) {
            assert_engines_agree(&g, |par| {
                LocalConfig::approximate(theta).with_parallelism(par)
            });
        }
    }
}
