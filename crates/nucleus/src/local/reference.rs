//! The original ℓ-NuDecomp peeling implementation, frozen as an oracle.
//!
//! This is the heap-based engine the crate shipped before the
//! bucket-queue rearchitecture ([`super::peel`]): a
//! `BinaryHeap<Reverse<(κ, id)>>` with lazy deletion, an **eager** full
//! score recomputation for every affected triangle of every dead clique,
//! and a fresh allocation per completion-probability gather and per DP
//! table.  The peeling logic and the scores it produces are preserved
//! exactly — allocations included; the one deliberate edit is
//! `method_counts`, which now counts the initial pass only (one entry per
//! triangle), matching the redefined contract of
//! [`method_counts`](super::LocalNucleusDecomposition::method_counts) so
//! the two engines report comparable values.  It is kept for two
//! reasons:
//!
//! * **bit-identity testing**: the property suite peels random graphs
//!   with both engines and requires identical scores, initial scores and
//!   method counts;
//! * **perf-counter baselines**: `experiments parbench` runs it next to
//!   the new engine and records `reference_dp_calls`, the denominator of
//!   the deferred engine's advertised DP savings.
//!
//! Compiled only for tests and for the `reference-peel` feature (which
//! the bench harness enables); production builds carry no dead engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use ugraph::TriangleId;

use crate::approx::{self, ApproxMethod};
use crate::config::{LocalConfig, ScoreMethod};
use crate::error::Result;
use crate::local::dp;
use crate::support::SupportStructure;

/// Output of the reference engine.
#[derive(Debug, Clone)]
pub struct ReferenceDecomposition {
    /// κ(△) before peeling, indexed by triangle id.
    pub initial_scores: Vec<u32>,
    /// ℓ-nucleusness ν(△), indexed by triangle id.
    pub scores: Vec<u32>,
    /// Evaluation method of each triangle's initial κ computation (the
    /// same initial-pass semantics the production engine reports).
    pub method_counts: HashMap<ApproxMethod, usize>,
    /// Full score recomputations performed during peeling — the eager
    /// engine's equivalent of
    /// [`PeelStats::dp_calls`](super::peel::PeelStats::dp_calls).
    pub dp_calls: usize,
}

/// Runs the original eager peeling over a prebuilt support structure.
pub fn decompose(
    support: &SupportStructure,
    config: &LocalConfig,
) -> Result<ReferenceDecomposition> {
    config.validate()?;
    let theta = config.theta;
    let nt = support.num_triangles();
    let nc = support.num_cliques();
    let mut method_counts: HashMap<ApproxMethod, usize> = HashMap::new();
    let mut dp_calls = 0usize;

    let score_of = |probs: &[f64], tri_prob: f64| -> (u32, ApproxMethod) {
        match config.method {
            ScoreMethod::DynamicProgramming => (
                dp::max_k(tri_prob, probs, theta),
                ApproxMethod::DynamicProgramming,
            ),
            ScoreMethod::Hybrid(thresholds) => {
                approx::hybrid_max_k(tri_prob, probs, theta, &thresholds)
            }
        }
    };

    // Initial κ scores over all cliques (sequential, one allocation per
    // triangle — exactly the original code path).
    let mut kappa = vec![0u32; nt];
    for t in 0..nt as TriangleId {
        let probs = support.completion_probs(t);
        let (k, method) = score_of(&probs, support.triangle_prob(t));
        kappa[t as usize] = k;
        *method_counts.entry(method).or_insert(0) += 1;
    }
    let initial_scores = kappa.clone();

    // Peeling with eager recomputation.
    let mut processed = vec![false; nt];
    let mut clique_dead = vec![false; nc];
    let mut scores = vec![0u32; nt];
    let mut heap: BinaryHeap<Reverse<(u32, TriangleId)>> = (0..nt)
        .map(|t| Reverse((kappa[t], t as TriangleId)))
        .collect();
    let mut level = 0u32;

    while let Some(Reverse((s, t))) = heap.pop() {
        let ti = t as usize;
        if processed[ti] || s != kappa[ti] {
            continue;
        }
        processed[ti] = true;
        level = level.max(s);
        scores[ti] = level;

        for &c in support.cliques_of(t) {
            if clique_dead[c as usize] {
                continue;
            }
            clique_dead[c as usize] = true;
            for &other in &support.clique(c).triangles {
                let oi = other as usize;
                if other == t || processed[oi] || kappa[oi] <= level {
                    continue;
                }
                let probs =
                    support.completion_probs_filtered(other, |cc| !clique_dead[cc as usize]);
                let (fresh, _) = score_of(&probs, support.triangle_prob(other));
                dp_calls += 1;
                let recomputed = fresh.max(level);
                if recomputed < kappa[oi] {
                    kappa[oi] = recomputed;
                    heap.push(Reverse((recomputed, other)));
                }
            }
        }
    }

    Ok(ReferenceDecomposition {
        initial_scores,
        scores,
        method_counts,
        dp_calls,
    })
}
