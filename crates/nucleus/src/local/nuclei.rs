//! Extraction of maximal ℓ-(k,θ)-nuclei from per-triangle scores.
//!
//! Once the peeling has assigned every triangle its ℓ-nucleusness ν(△),
//! the ℓ-(k,θ)-nuclei for a given `k` are built exactly as in the
//! deterministic case: take every 4-clique whose four triangles all have
//! ν ≥ k, group those cliques by shared-triangle connectivity, and each
//! group's union of edges is one maximal nucleus (it is a union of
//! 4-cliques and its triangles are s-connected by construction, matching
//! the preconditions of Definition 5).

use detdecomp::NucleusSubgraph;
use ugraph::{EdgeId, EdgeSubgraph, FourClique, Triangle, UncertainGraph, UnionFind};

use crate::support::SupportStructure;

/// Extracts the maximal ℓ-(k,θ)-nuclei for `k ≥ 1` given the per-triangle
/// scores produced by the peeling.
pub fn extract_k_nuclei(
    graph: &UncertainGraph,
    support: &SupportStructure,
    scores: &[u32],
    k: u32,
) -> Vec<NucleusSubgraph> {
    let qualifying: Vec<u32> = (0..support.num_cliques() as u32)
        .filter(|&c| {
            support
                .clique(c)
                .triangles
                .iter()
                .all(|&t| scores[t as usize] >= k)
        })
        .collect();
    if qualifying.is_empty() {
        return Vec::new();
    }

    let mut uf = UnionFind::new(support.num_triangles());
    for &c in &qualifying {
        let tris = support.clique(c).triangles;
        for w in tris.windows(2) {
            uf.union(w[0], w[1]);
        }
    }

    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for &c in &qualifying {
        let root = uf.find(support.clique(c).triangles[0]);
        groups.entry(root).or_default().push(c);
    }

    let mut nuclei: Vec<NucleusSubgraph> = groups
        .into_values()
        .map(|clique_ids| build_nucleus(graph, support, &clique_ids, k))
        .collect();
    nuclei.sort_by_key(|n| n.cliques.first().copied());
    nuclei
}

/// The union of all ℓ-(k,θ)-nuclei as a single edge-id set — the candidate
/// space `C` of Algorithm 2.
pub fn k_nuclei_union_edges(
    graph: &UncertainGraph,
    support: &SupportStructure,
    scores: &[u32],
    k: u32,
) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = Vec::new();
    for c in 0..support.num_cliques() as u32 {
        let record = support.clique(c);
        if record.triangles.iter().all(|&t| scores[t as usize] >= k) {
            for (u, v) in record.clique.edges() {
                edges.push(graph.edge_id(u, v).expect("clique edge exists"));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn build_nucleus(
    graph: &UncertainGraph,
    support: &SupportStructure,
    clique_ids: &[u32],
    k: u32,
) -> NucleusSubgraph {
    let mut triangles: Vec<Triangle> = Vec::new();
    let mut cliques: Vec<FourClique> = Vec::with_capacity(clique_ids.len());
    let mut edge_ids: Vec<EdgeId> = Vec::new();
    for &c in clique_ids {
        let record = support.clique(c);
        cliques.push(record.clique);
        for t in record.clique.triangles() {
            triangles.push(t);
        }
        for (u, v) in record.clique.edges() {
            edge_ids.push(graph.edge_id(u, v).expect("clique edge exists"));
        }
    }
    triangles.sort_unstable();
    triangles.dedup();
    cliques.sort_unstable();
    edge_ids.sort_unstable();
    edge_ids.dedup();
    NucleusSubgraph {
        k,
        subgraph: EdgeSubgraph::induced_by_edges(graph, &edge_ids),
        triangles,
        cliques,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalConfig;
    use crate::local::LocalNucleusDecomposition;
    use ugraph::GraphBuilder;

    fn two_k5s_with_bridge(p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5u32] {
            for i in 0..5u32 {
                for j in (i + 1)..5u32 {
                    b.add_edge(base + i, base + j, p).unwrap();
                }
            }
        }
        b.add_edge(4, 5, p).unwrap();
        b.build()
    }

    #[test]
    fn extracts_two_separate_nuclei() {
        let g = two_k5s_with_bridge(0.9);
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        assert_eq!(local.max_score(), 2);
        let nuclei = local.k_nuclei(&g, 2);
        assert_eq!(nuclei.len(), 2);
        for n in &nuclei {
            assert_eq!(n.num_vertices(), 5);
            assert_eq!(n.num_edges(), 10);
            assert_eq!(n.cliques.len(), 5);
            assert_eq!(n.triangles.len(), 10);
            assert_eq!(n.k, 2);
        }
    }

    #[test]
    fn union_edges_covers_all_nuclei() {
        let g = two_k5s_with_bridge(0.9);
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        let union = local.k_nuclei_union_edges(&g, 2);
        // Both K5s contribute 10 edges each; the bridge edge is not part of
        // any qualifying clique.
        assert_eq!(union.len(), 20);
        let bridge = g.edge_id(4, 5).unwrap();
        assert!(!union.contains(&bridge));
        assert!(local.k_nuclei_union_edges(&g, 3).is_empty());
    }

    #[test]
    fn no_nuclei_above_max_score() {
        let g = two_k5s_with_bridge(0.5);
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        let kmax = local.max_score();
        assert!(local.k_nuclei(&g, kmax + 1).is_empty());
        if kmax >= 1 {
            assert!(!local.k_nuclei(&g, kmax).is_empty());
        }
    }

    #[test]
    fn nuclei_triangles_all_meet_threshold() {
        let g = two_k5s_with_bridge(0.8);
        let theta = 0.3;
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
        for k in 1..=local.max_score() {
            for nucleus in local.k_nuclei(&g, k) {
                for tri in &nucleus.triangles {
                    let score = local.score_of(tri).unwrap();
                    assert!(score >= k, "triangle {tri} has score {score} < {k}");
                }
            }
        }
    }

    #[test]
    fn nested_nuclei_hierarchy() {
        // Higher-k nuclei must be contained (edge-wise) in the union of
        // lower-k nuclei.
        let g = two_k5s_with_bridge(0.95);
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.05)).unwrap();
        let mut previous: Option<Vec<EdgeId>> = None;
        for k in (1..=local.max_score()).rev() {
            let union = local.k_nuclei_union_edges(&g, k);
            if let Some(higher) = previous {
                for e in &higher {
                    assert!(union.contains(e), "edge {e} of (k+1)-nucleus missing at k");
                }
            }
            previous = Some(union);
        }
    }
}
