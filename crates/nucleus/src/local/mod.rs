//! Local probabilistic nucleus decomposition (ℓ-NuDecomp, Section 5).
//!
//! Algorithm 1 of the paper: compute an initial nucleus score `κ(△)` for
//! every triangle — the largest `k` with `Pr(X_{𝒢,△,ℓ} ≥ k) ≥ θ` — then
//! peel triangles in non-decreasing score order.  Removing a triangle
//! kills every 4-clique through it, so the scores of the surviving
//! triangles of those cliques are recomputed over their remaining cliques.
//! The score at removal time is the triangle's ℓ-nucleusness ν(△).
//!
//! Scores are computed either exactly (dynamic programming, [`dp`]) or by
//! the hybrid statistical approximation framework
//! ([`crate::approx`]), selected through
//! [`ScoreMethod`](crate::config::ScoreMethod).
//!
//! The peeling itself runs on the engine of [`peel`]: a monotone bucket
//! queue with deferred, batched DP recomputation and reusable scratch
//! buffers, emitting deterministic [`PeelStats`] perf counters.  The
//! original eager heap engine survives as [`mod@reference`] (tests and the
//! `reference-peel` feature) and the two are property-tested to produce
//! bit-identical results.
//!
//! To decompose at many thresholds, [`sweep`] amortizes the support
//! structure across a whole θ grid: one build, one [`NucleusIndex`]
//! answering any (θ, k) query, bit-identical to per-θ runs.

pub mod dp;
pub mod nuclei;
pub mod peel;
#[cfg(any(test, feature = "reference-peel"))]
pub mod reference;
pub mod sweep;

use std::collections::HashMap;

use ugraph::{Triangle, TriangleId, TriangleIndex, UncertainGraph};

use crate::approx::ApproxMethod;
use crate::config::LocalConfig;
use crate::error::Result;
use crate::support::SupportStructure;

pub use peel::PeelStats;
pub use sweep::{NucleusIndex, ThetaSweep};

/// One full single-θ decomposition over a borrowed support: the
/// canonical initial-κ + peel sequence shared by
/// [`LocalNucleusDecomposition::with_support`] and the sweep engine of
/// [`crate::decomp::DecompSweep`].  Keeping the sequence in one place is
/// what makes every surface bit-identical by construction.
pub(crate) struct PointResult {
    pub scores: Vec<u32>,
    pub initial_scores: Vec<u32>,
    pub method_counts: HashMap<ApproxMethod, usize>,
    pub stats: PeelStats,
}

pub(crate) fn decompose_point(support: &SupportStructure, config: &LocalConfig) -> PointResult {
    let init = peel::initial_scores(support, config);
    let initial_scores = init.kappa.clone();
    let (scores, mut stats) = peel::peel(support, config, init.kappa);
    stats.peak_scratch_bytes = stats.peak_scratch_bytes.max(init.peak_scratch_bytes);
    PointResult {
        scores,
        initial_scores,
        method_counts: init.method_counts,
        stats,
    }
}

/// Result of the local nucleus decomposition: the ℓ-nucleusness of every
/// triangle, plus the support structure it was computed over.
#[derive(Debug, Clone)]
pub struct LocalNucleusDecomposition {
    support: SupportStructure,
    config: LocalConfig,
    initial_scores: Vec<u32>,
    scores: Vec<u32>,
    method_counts: HashMap<ApproxMethod, usize>,
    stats: PeelStats,
}

impl LocalNucleusDecomposition {
    /// Runs ℓ-NuDecomp on `graph` with the given configuration.  The
    /// support structure is built with `config.parallelism`; scores are
    /// identical for every parallelism setting.
    pub fn compute(graph: &UncertainGraph, config: &LocalConfig) -> Result<Self> {
        // Fail fast: with_support validates too, but only after the
        // expensive support-structure build.
        config.validate()?;
        let support = SupportStructure::build_with(graph, config.parallelism);
        Self::with_support(support, config)
    }

    /// Runs ℓ-NuDecomp over a prebuilt [`SupportStructure`] (lets callers
    /// amortize clique enumeration across several θ values).
    ///
    /// The initial κ pass runs in parallel chunks under
    /// `config.parallelism` with an ordered merge, the peeling runs on
    /// the engine of [`peel`]; results are bit-identical for every
    /// parallelism setting and to the [`mod@reference`] engine.
    pub fn with_support(support: SupportStructure, config: &LocalConfig) -> Result<Self> {
        config.validate()?;
        let point = decompose_point(&support, config);

        Ok(LocalNucleusDecomposition {
            support,
            config: *config,
            initial_scores: point.initial_scores,
            scores: point.scores,
            method_counts: point.method_counts,
            stats: point.stats,
        })
    }

    /// The configuration the decomposition was computed with.
    pub fn config(&self) -> &LocalConfig {
        &self.config
    }

    /// The support structure (triangles, cliques, completion
    /// probabilities).
    pub fn support(&self) -> &SupportStructure {
        &self.support
    }

    /// The triangle index.
    pub fn triangle_index(&self) -> &TriangleIndex {
        self.support.triangle_index()
    }

    /// ℓ-nucleusness ν(△) of triangle id `t`.
    pub fn score(&self, t: TriangleId) -> u32 {
        self.scores[t as usize]
    }

    /// ℓ-nucleusness of the given triangle, or `None` if it is not in the
    /// graph.
    pub fn score_of(&self, triangle: &Triangle) -> Option<u32> {
        self.support
            .triangle_index()
            .id_of(triangle)
            .map(|id| self.score(id))
    }

    /// ℓ-nucleusness of every triangle, indexed by triangle id.
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The initial κ scores (before peeling), indexed by triangle id.
    pub fn initial_scores(&self) -> &[u32] {
        &self.initial_scores
    }

    /// The largest ℓ-nucleusness in the graph.
    pub fn max_score(&self) -> u32 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.scores.len()
    }

    /// The evaluation method of each triangle's *initial* κ computation
    /// (exactly one entry per triangle; DP runs count every triangle as
    /// `DynamicProgramming`).  Peeling-time recomputations are not
    /// included — they are engine work, reported as
    /// [`PeelStats::dp_calls`] via [`peel_stats`](Self::peel_stats).
    pub fn method_counts(&self) -> &HashMap<ApproxMethod, usize> {
        &self.method_counts
    }

    /// Deterministic perf counters of the peeling engine (DP
    /// recomputations, cheap-bound skips, bucket usage, scratch
    /// high-water mark).
    pub fn peel_stats(&self) -> &PeelStats {
        &self.stats
    }

    /// Extracts the maximal ℓ-(k,θ)-nuclei for the given `k ≥ 1`.
    pub fn k_nuclei(&self, graph: &UncertainGraph, k: u32) -> Vec<detdecomp::NucleusSubgraph> {
        nuclei::extract_k_nuclei(graph, &self.support, &self.scores, k)
    }

    /// Extracts the union of all ℓ-(k,θ)-nuclei as one edge set (the
    /// candidate space `C` used by the global algorithm).
    pub fn k_nuclei_union_edges(&self, graph: &UncertainGraph, k: u32) -> Vec<ugraph::EdgeId> {
        nuclei::k_nuclei_union_edges(graph, &self.support, &self.scores, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ApproxThresholds, ScoreMethod};
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    /// The probabilistic graph of Figure 1a of the paper.
    fn paper_figure1_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        // Vertices: 1..7 as in the figure (0 unused).
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.add_edge(1, 4, 0.6).unwrap();
        b.add_edge(2, 4, 0.7).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        b.add_edge(1, 7, 0.8).unwrap();
        b.add_edge(6, 7, 0.8).unwrap();
        b.add_edge(1, 6, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn certain_graph_matches_deterministic_nucleusness() {
        // With all probabilities 1 and θ ≤ 1, ℓ-nucleusness equals the
        // deterministic nucleusness.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
        let edges = ugraph::generators::gnm_edges(20, 80, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            20,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.8)).unwrap();
        let det = detdecomp::NucleusDecomposition::compute(&g);
        for t in 0..local.num_triangles() as TriangleId {
            let tri = local.triangle_index().triangle(t);
            assert_eq!(
                local.score(t),
                det.nucleusness_of(&tri).unwrap(),
                "triangle {tri}"
            );
        }
    }

    #[test]
    fn paper_example_figure2a() {
        // The ℓ-(1, 0.42)-nucleus of Figure 2a: triangles of the subgraph
        // on {1,2,3,4,5} have nucleusness ≥ 1 at θ = 0.42.
        let g = paper_figure1_graph();
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.42)).unwrap();
        // Triangle (1,3,5) is in the 4-clique {1,2,3,5} whose completion
        // probability is 0.5 ≥ 0.42, so its score is 1.
        assert_eq!(local.score_of(&Triangle::new(1, 3, 5)), Some(1));
        // Triangle (1,2,3) is in two 4-cliques ({1,2,3,5} with 0.5 and
        // {1,2,3,4} with 0.42): Pr[ζ ≥ 1] = 1-(0.5·0.58) = 0.71 ≥ 0.42 but
        // Pr[ζ ≥ 2] = 0.21 < 0.42, so score 1.
        assert_eq!(local.score_of(&Triangle::new(1, 2, 3)), Some(1));
        let nuclei = local.k_nuclei(&g, 1);
        assert_eq!(nuclei.len(), 1);
        let verts: Vec<u32> = nuclei[0].subgraph.original_vertices().to_vec();
        assert_eq!(verts, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn paper_example_figure3c_low_theta() {
        // Figure 3c: K5 with every edge 0.6 is an ℓ-(2, 0.01)-nucleus.
        let g = complete(5, 0.6);
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.01)).unwrap();
        assert!(local.scores().iter().all(|&s| s == 2));
        // At a high threshold the same graph only reaches nucleusness 0 or 1.
        let strict = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.5)).unwrap();
        assert!(strict.max_score() < 2);
    }

    #[test]
    fn scores_monotone_in_theta() {
        let g = complete(6, 0.7);
        let mut last_scores: Option<Vec<u32>> = None;
        for theta in [0.05, 0.2, 0.4, 0.6, 0.9] {
            let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
            if let Some(prev) = &last_scores {
                for (a, b) in prev.iter().zip(local.scores()) {
                    assert!(b <= a, "scores must not increase as theta grows");
                }
            }
            last_scores = Some(local.scores().to_vec());
        }
    }

    #[test]
    fn local_scores_never_exceed_deterministic() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let cfg = ugraph::generators::PlantedCliqueConfig {
            num_vertices: 40,
            background_edges: 60,
            num_communities: 4,
            community_size: (5, 7),
            overlap: 2,
        };
        let edges = ugraph::generators::planted_clique_edges(&cfg, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            40,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.3,
                high: 1.0,
            },
            &mut rng,
        );
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        let det = detdecomp::NucleusDecomposition::compute(&g);
        for t in 0..local.num_triangles() as TriangleId {
            let tri = local.triangle_index().triangle(t);
            assert!(local.score(t) <= det.nucleusness_of(&tri).unwrap());
        }
    }

    #[test]
    fn hybrid_scores_match_dp_scores() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(19);
        let cfg = ugraph::generators::PlantedCliqueConfig {
            num_vertices: 60,
            background_edges: 100,
            num_communities: 6,
            community_size: (5, 8),
            overlap: 2,
        };
        let edges = ugraph::generators::planted_clique_edges(&cfg, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            60,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let exact = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        let approx =
            LocalNucleusDecomposition::compute(&g, &LocalConfig::approximate(0.2)).unwrap();
        let mut diff = 0usize;
        for t in 0..exact.num_triangles() {
            if exact.scores()[t] != approx.scores()[t] {
                diff += 1;
            }
        }
        let frac = diff as f64 / exact.num_triangles().max(1) as f64;
        assert!(frac < 0.05, "AP disagrees with DP on {frac} of triangles");
    }

    #[test]
    fn method_counts_are_tracked() {
        let g = complete(7, 0.4);
        let exact = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        assert!(exact.method_counts()[&ApproxMethod::DynamicProgramming] > 0);
        let approx = LocalNucleusDecomposition::compute(
            &g,
            &LocalConfig {
                theta: 0.1,
                method: ScoreMethod::Hybrid(ApproxThresholds::default()),
                parallelism: ugraph::Parallelism::Auto,
            },
        )
        .unwrap();
        let total: usize = approx.method_counts().values().sum();
        assert!(total >= approx.num_triangles());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = complete(4, 0.5);
        assert!(LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.0)).is_err());
    }

    #[test]
    fn empty_and_clique_free_graphs() {
        let empty = UncertainGraph::empty(5);
        let d = LocalNucleusDecomposition::compute(&empty, &LocalConfig::exact(0.5)).unwrap();
        assert_eq!(d.num_triangles(), 0);
        assert_eq!(d.max_score(), 0);

        let triangle = complete(3, 0.9);
        let d = LocalNucleusDecomposition::compute(&triangle, &LocalConfig::exact(0.5)).unwrap();
        assert_eq!(d.num_triangles(), 1);
        assert_eq!(d.max_score(), 0);
        assert!(d.k_nuclei(&triangle, 1).is_empty());
    }

    #[test]
    fn initial_scores_upper_bound_final_scores_for_dp() {
        let g = complete(6, 0.65);
        let d = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        for t in 0..d.num_triangles() {
            assert!(d.scores()[t] <= d.initial_scores()[t]);
        }
    }
}
