//! Local probabilistic nucleus decomposition (ℓ-NuDecomp, Section 5).
//!
//! Algorithm 1 of the paper: compute an initial nucleus score `κ(△)` for
//! every triangle — the largest `k` with `Pr(X_{𝒢,△,ℓ} ≥ k) ≥ θ` — then
//! peel triangles in non-decreasing score order.  Removing a triangle
//! kills every 4-clique through it, so the scores of the surviving
//! triangles of those cliques are recomputed over their remaining cliques.
//! The score at removal time is the triangle's ℓ-nucleusness ν(△).
//!
//! Scores are computed either exactly (dynamic programming, [`dp`]) or by
//! the hybrid statistical approximation framework
//! ([`crate::approx`]), selected through
//! [`ScoreMethod`](crate::config::ScoreMethod).

pub mod dp;
pub mod nuclei;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use ugraph::{Triangle, TriangleId, TriangleIndex, UncertainGraph};

use crate::approx::{self, ApproxMethod};
use crate::config::{LocalConfig, ScoreMethod};
use crate::error::Result;
use crate::support::SupportStructure;

/// Result of the local nucleus decomposition: the ℓ-nucleusness of every
/// triangle, plus the support structure it was computed over.
#[derive(Debug, Clone)]
pub struct LocalNucleusDecomposition {
    support: SupportStructure,
    config: LocalConfig,
    initial_scores: Vec<u32>,
    scores: Vec<u32>,
    method_counts: HashMap<ApproxMethod, usize>,
}

impl LocalNucleusDecomposition {
    /// Runs ℓ-NuDecomp on `graph` with the given configuration.  The
    /// support structure is built with `config.parallelism`; scores are
    /// identical for every parallelism setting.
    pub fn compute(graph: &UncertainGraph, config: &LocalConfig) -> Result<Self> {
        // Fail fast: with_support validates too, but only after the
        // expensive support-structure build.
        config.validate()?;
        let support = SupportStructure::build_with(graph, config.parallelism);
        Self::with_support(support, config)
    }

    /// Runs ℓ-NuDecomp over a prebuilt [`SupportStructure`] (lets callers
    /// amortize clique enumeration across several θ values).
    pub fn with_support(support: SupportStructure, config: &LocalConfig) -> Result<Self> {
        config.validate()?;
        let theta = config.theta;
        let nt = support.num_triangles();
        let nc = support.num_cliques();
        let mut method_counts: HashMap<ApproxMethod, usize> = HashMap::new();

        let mut score_of = |probs: &[f64], tri_prob: f64| -> u32 {
            match config.method {
                ScoreMethod::DynamicProgramming => {
                    *method_counts
                        .entry(ApproxMethod::DynamicProgramming)
                        .or_insert(0) += 1;
                    dp::max_k(tri_prob, probs, theta)
                }
                ScoreMethod::Hybrid(thresholds) => {
                    let (k, method) = approx::hybrid_max_k(tri_prob, probs, theta, &thresholds);
                    *method_counts.entry(method).or_insert(0) += 1;
                    k
                }
            }
        };

        // Initial κ scores over all cliques.
        let mut kappa = vec![0u32; nt];
        for t in 0..nt as TriangleId {
            let probs = support.completion_probs(t);
            kappa[t as usize] = score_of(&probs, support.triangle_prob(t));
        }
        let initial_scores = kappa.clone();

        // Peeling.
        let mut processed = vec![false; nt];
        let mut clique_dead = vec![false; nc];
        let mut scores = vec![0u32; nt];
        let mut heap: BinaryHeap<Reverse<(u32, TriangleId)>> = (0..nt)
            .map(|t| Reverse((kappa[t], t as TriangleId)))
            .collect();
        let mut level = 0u32;

        while let Some(Reverse((s, t))) = heap.pop() {
            let ti = t as usize;
            if processed[ti] || s != kappa[ti] {
                continue;
            }
            processed[ti] = true;
            level = level.max(s);
            scores[ti] = level;

            // Every clique through t ceases to exist.
            for &c in support.cliques_of(t) {
                if clique_dead[c as usize] {
                    continue;
                }
                clique_dead[c as usize] = true;
                for &other in &support.clique(c).triangles {
                    let oi = other as usize;
                    if other == t || processed[oi] || kappa[oi] <= level {
                        continue;
                    }
                    let probs =
                        support.completion_probs_filtered(other, |cc| !clique_dead[cc as usize]);
                    let recomputed = score_of(&probs, support.triangle_prob(other)).max(level);
                    if recomputed < kappa[oi] {
                        kappa[oi] = recomputed;
                        heap.push(Reverse((recomputed, other)));
                    }
                }
            }
        }

        Ok(LocalNucleusDecomposition {
            support,
            config: *config,
            initial_scores,
            scores,
            method_counts,
        })
    }

    /// The configuration the decomposition was computed with.
    pub fn config(&self) -> &LocalConfig {
        &self.config
    }

    /// The support structure (triangles, cliques, completion
    /// probabilities).
    pub fn support(&self) -> &SupportStructure {
        &self.support
    }

    /// The triangle index.
    pub fn triangle_index(&self) -> &TriangleIndex {
        self.support.triangle_index()
    }

    /// ℓ-nucleusness ν(△) of triangle id `t`.
    pub fn score(&self, t: TriangleId) -> u32 {
        self.scores[t as usize]
    }

    /// ℓ-nucleusness of the given triangle, or `None` if it is not in the
    /// graph.
    pub fn score_of(&self, triangle: &Triangle) -> Option<u32> {
        self.support
            .triangle_index()
            .id_of(triangle)
            .map(|id| self.score(id))
    }

    /// ℓ-nucleusness of every triangle, indexed by triangle id.
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The initial κ scores (before peeling), indexed by triangle id.
    pub fn initial_scores(&self) -> &[u32] {
        &self.initial_scores
    }

    /// The largest ℓ-nucleusness in the graph.
    pub fn max_score(&self) -> u32 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.scores.len()
    }

    /// How many triangle-score evaluations used each method (DP runs count
    /// every evaluation as `DynamicProgramming`).
    pub fn method_counts(&self) -> &HashMap<ApproxMethod, usize> {
        &self.method_counts
    }

    /// Extracts the maximal ℓ-(k,θ)-nuclei for the given `k ≥ 1`.
    pub fn k_nuclei(&self, graph: &UncertainGraph, k: u32) -> Vec<detdecomp::NucleusSubgraph> {
        nuclei::extract_k_nuclei(graph, &self.support, &self.scores, k)
    }

    /// Extracts the union of all ℓ-(k,θ)-nuclei as one edge set (the
    /// candidate space `C` used by the global algorithm).
    pub fn k_nuclei_union_edges(&self, graph: &UncertainGraph, k: u32) -> Vec<ugraph::EdgeId> {
        nuclei::k_nuclei_union_edges(graph, &self.support, &self.scores, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApproxThresholds;
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    /// The probabilistic graph of Figure 1a of the paper.
    fn paper_figure1_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        // Vertices: 1..7 as in the figure (0 unused).
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 5, 1.0).unwrap();
        b.add_edge(3, 5, 1.0).unwrap();
        b.add_edge(2, 5, 0.5).unwrap();
        b.add_edge(1, 4, 0.6).unwrap();
        b.add_edge(2, 4, 0.7).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        b.add_edge(1, 7, 0.8).unwrap();
        b.add_edge(6, 7, 0.8).unwrap();
        b.add_edge(1, 6, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn certain_graph_matches_deterministic_nucleusness() {
        // With all probabilities 1 and θ ≤ 1, ℓ-nucleusness equals the
        // deterministic nucleusness.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
        let edges = ugraph::generators::gnm_edges(20, 80, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            20,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.8)).unwrap();
        let det = detdecomp::NucleusDecomposition::compute(&g);
        for t in 0..local.num_triangles() as TriangleId {
            let tri = local.triangle_index().triangle(t);
            assert_eq!(
                local.score(t),
                det.nucleusness_of(&tri).unwrap(),
                "triangle {tri}"
            );
        }
    }

    #[test]
    fn paper_example_figure2a() {
        // The ℓ-(1, 0.42)-nucleus of Figure 2a: triangles of the subgraph
        // on {1,2,3,4,5} have nucleusness ≥ 1 at θ = 0.42.
        let g = paper_figure1_graph();
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.42)).unwrap();
        // Triangle (1,3,5) is in the 4-clique {1,2,3,5} whose completion
        // probability is 0.5 ≥ 0.42, so its score is 1.
        assert_eq!(local.score_of(&Triangle::new(1, 3, 5)), Some(1));
        // Triangle (1,2,3) is in two 4-cliques ({1,2,3,5} with 0.5 and
        // {1,2,3,4} with 0.42): Pr[ζ ≥ 1] = 1-(0.5·0.58) = 0.71 ≥ 0.42 but
        // Pr[ζ ≥ 2] = 0.21 < 0.42, so score 1.
        assert_eq!(local.score_of(&Triangle::new(1, 2, 3)), Some(1));
        let nuclei = local.k_nuclei(&g, 1);
        assert_eq!(nuclei.len(), 1);
        let verts: Vec<u32> = nuclei[0].subgraph.original_vertices().to_vec();
        assert_eq!(verts, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn paper_example_figure3c_low_theta() {
        // Figure 3c: K5 with every edge 0.6 is an ℓ-(2, 0.01)-nucleus.
        let g = complete(5, 0.6);
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.01)).unwrap();
        assert!(local.scores().iter().all(|&s| s == 2));
        // At a high threshold the same graph only reaches nucleusness 0 or 1.
        let strict = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.5)).unwrap();
        assert!(strict.max_score() < 2);
    }

    #[test]
    fn scores_monotone_in_theta() {
        let g = complete(6, 0.7);
        let mut last_scores: Option<Vec<u32>> = None;
        for theta in [0.05, 0.2, 0.4, 0.6, 0.9] {
            let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(theta)).unwrap();
            if let Some(prev) = &last_scores {
                for (a, b) in prev.iter().zip(local.scores()) {
                    assert!(b <= a, "scores must not increase as theta grows");
                }
            }
            last_scores = Some(local.scores().to_vec());
        }
    }

    #[test]
    fn local_scores_never_exceed_deterministic() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let cfg = ugraph::generators::PlantedCliqueConfig {
            num_vertices: 40,
            background_edges: 60,
            num_communities: 4,
            community_size: (5, 7),
            overlap: 2,
        };
        let edges = ugraph::generators::planted_clique_edges(&cfg, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            40,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.3,
                high: 1.0,
            },
            &mut rng,
        );
        let local = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        let det = detdecomp::NucleusDecomposition::compute(&g);
        for t in 0..local.num_triangles() as TriangleId {
            let tri = local.triangle_index().triangle(t);
            assert!(local.score(t) <= det.nucleusness_of(&tri).unwrap());
        }
    }

    #[test]
    fn hybrid_scores_match_dp_scores() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(19);
        let cfg = ugraph::generators::PlantedCliqueConfig {
            num_vertices: 60,
            background_edges: 100,
            num_communities: 6,
            community_size: (5, 8),
            overlap: 2,
        };
        let edges = ugraph::generators::planted_clique_edges(&cfg, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            60,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let exact = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.2)).unwrap();
        let approx =
            LocalNucleusDecomposition::compute(&g, &LocalConfig::approximate(0.2)).unwrap();
        let mut diff = 0usize;
        for t in 0..exact.num_triangles() {
            if exact.scores()[t] != approx.scores()[t] {
                diff += 1;
            }
        }
        let frac = diff as f64 / exact.num_triangles().max(1) as f64;
        assert!(frac < 0.05, "AP disagrees with DP on {frac} of triangles");
    }

    #[test]
    fn method_counts_are_tracked() {
        let g = complete(7, 0.4);
        let exact = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        assert!(exact.method_counts()[&ApproxMethod::DynamicProgramming] > 0);
        let approx = LocalNucleusDecomposition::compute(
            &g,
            &LocalConfig {
                theta: 0.1,
                method: ScoreMethod::Hybrid(ApproxThresholds::default()),
                parallelism: ugraph::Parallelism::Auto,
            },
        )
        .unwrap();
        let total: usize = approx.method_counts().values().sum();
        assert!(total >= approx.num_triangles());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = complete(4, 0.5);
        assert!(LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.0)).is_err());
    }

    #[test]
    fn empty_and_clique_free_graphs() {
        let empty = UncertainGraph::empty(5);
        let d = LocalNucleusDecomposition::compute(&empty, &LocalConfig::exact(0.5)).unwrap();
        assert_eq!(d.num_triangles(), 0);
        assert_eq!(d.max_score(), 0);

        let triangle = complete(3, 0.9);
        let d = LocalNucleusDecomposition::compute(&triangle, &LocalConfig::exact(0.5)).unwrap();
        assert_eq!(d.num_triangles(), 1);
        assert_eq!(d.max_score(), 0);
        assert!(d.k_nuclei(&triangle, 1).is_empty());
    }

    #[test]
    fn initial_scores_upper_bound_final_scores_for_dp() {
        let g = complete(6, 0.65);
        let d = LocalNucleusDecomposition::compute(&g, &LocalConfig::exact(0.1)).unwrap();
        for t in 0..d.num_triangles() {
            assert!(d.scores()[t] <= d.initial_scores()[t]);
        }
    }
}
