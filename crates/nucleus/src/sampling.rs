//! Monte-Carlo sampling utilities for the global and weakly-global
//! algorithms.
//!
//! Lemma 4 of the paper (a special case of Hoeffding's inequality) gives
//! the number of independent possible-world samples needed to estimate a
//! probability within additive error ε with confidence 1 − δ:
//! `n ≥ ⌈ln(2/δ) / (2ε²)⌉`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{PossibleWorld, UncertainGraph, WorldSampler};

/// The Hoeffding sample size `⌈ln(2/δ) / (2ε²)⌉` (Lemma 4).
pub fn hoeffding_sample_size(epsilon: f64, delta: f64) -> usize {
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// Samples `n` possible worlds of `graph` with a deterministic seed.
pub fn sample_worlds(graph: &UncertainGraph, n: usize, seed: u64) -> Vec<PossibleWorld> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    WorldSampler::new(graph).sample_many(&mut rng, n)
}

/// Estimates `Pr[predicate(world)]` over `n` sampled worlds of `graph`.
pub fn estimate_probability<F>(graph: &UncertainGraph, n: usize, seed: u64, mut predicate: F) -> f64
where
    F: FnMut(&PossibleWorld) -> bool,
{
    if n == 0 {
        return 0.0;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sampler = WorldSampler::new(graph);
    let mut hits = 0usize;
    for _ in 0..n {
        if predicate(&sampler.sample(&mut rng)) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    #[test]
    fn hoeffding_sample_sizes() {
        // ln(20)/(2·0.01) ≈ 149.8 → 150 (the paper rounds to 200).
        assert_eq!(hoeffding_sample_size(0.1, 0.1), 150);
        assert_eq!(hoeffding_sample_size(0.05, 0.1), 600);
        assert!(hoeffding_sample_size(0.01, 0.01) >= 26_000);
        // Larger tolerance needs fewer samples.
        assert!(hoeffding_sample_size(0.2, 0.1) < hoeffding_sample_size(0.1, 0.1));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        let g = b.build();
        let a = sample_worlds(&g, 50, 9);
        let b2 = sample_worlds(&g, 50, 9);
        assert_eq!(a, b2);
        let c = sample_worlds(&g, 50, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn estimate_probability_of_edge_presence() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.25).unwrap();
        let g = b.build();
        let est = estimate_probability(&g, 20_000, 3, |w| w.contains_edge(0));
        assert!((est - 0.25).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn estimate_probability_zero_samples() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        let g = b.build();
        assert_eq!(estimate_probability(&g, 0, 1, |_| true), 0.0);
    }

    #[test]
    fn estimate_within_hoeffding_bound() {
        // With n from Lemma 4 at ε = δ = 0.1, the estimate of a fixed
        // event's probability should be within 0.1 with high probability.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.7).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        let g = b.build();
        let n = hoeffding_sample_size(0.1, 0.1);
        // Event: both edges exist (true probability 0.49).
        let est = estimate_probability(&g, n, 42, |w| w.contains_edge(0) && w.contains_edge(1));
        assert!((est - 0.49).abs() <= 0.1, "estimate {est}");
    }
}
