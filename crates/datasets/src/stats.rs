//! Table-1-style dataset statistics.

use ugraph::metrics::GraphStatistics;
use ugraph::UncertainGraph;

use crate::registry::PaperDataset;

/// One row of Table 1: dataset statistics of a (synthetic) uncertain graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Dataset name.
    pub name: String,
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average edge probability.
    pub average_probability: f64,
    /// Number of triangles.
    pub num_triangles: usize,
}

impl Table1Row {
    /// Formats the row in the layout of Table 1.
    pub fn format(&self) -> String {
        format!(
            "{:<14} {:>9} {:>10} {:>7} {:>6.2} {:>12}",
            self.name,
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            self.average_probability,
            self.num_triangles
        )
    }
}

/// Computes the Table 1 row for an arbitrarily named graph — external
/// datasets use their file-derived name here.
pub fn stats_row(name: impl Into<String>, graph: &UncertainGraph) -> Table1Row {
    let stats = GraphStatistics::compute(graph);
    Table1Row {
        name: name.into(),
        num_vertices: stats.num_vertices,
        num_edges: stats.num_edges,
        max_degree: stats.max_degree,
        average_probability: stats.average_probability,
        num_triangles: stats.num_triangles,
    }
}

/// Computes the Table 1 row for a generated dataset.
pub fn table1_row(dataset: PaperDataset, graph: &UncertainGraph) -> Table1Row {
    stats_row(dataset.name(), graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scale;

    #[test]
    fn row_matches_graph_statistics() {
        let g = PaperDataset::Krogan.generate(Scale::Tiny, 4);
        let row = table1_row(PaperDataset::Krogan, &g);
        assert_eq!(row.name, "krogan");
        assert_eq!(row.num_vertices, g.num_vertices());
        assert_eq!(row.num_edges, g.num_edges());
        assert_eq!(row.num_triangles, g.count_triangles());
        assert!(row.average_probability > 0.0 && row.average_probability <= 1.0);
    }

    #[test]
    fn format_contains_all_fields() {
        let g = PaperDataset::Dblp.generate(Scale::Tiny, 4);
        let row = table1_row(PaperDataset::Dblp, &g);
        let text = row.format();
        assert!(text.contains("dblp"));
        assert!(text.contains(&row.num_vertices.to_string()));
        assert!(text.contains(&row.num_triangles.to_string()));
    }
}
