//! The six datasets of Table 1 as synthetic specifications.

use ugraph::generators::ProbabilityModel;
use ugraph::UncertainGraph;

use crate::spec::{DatasetSpec, Scale, StructureModel};

/// The datasets used in the paper's evaluation (Table 1), in the paper's
/// order (by triangle count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Yeast protein-interaction network with experimental confidence
    /// probabilities (2.7k vertices, p_avg ≈ 0.68).
    Krogan,
    /// Co-authorship network; probabilities are an exponential function of
    /// the number of joint publications (p_avg ≈ 0.26).
    Dblp,
    /// Photo-sharing community; probabilities are Jaccard similarities of
    /// interest groups (p_avg ≈ 0.13).
    Flickr,
    /// Social network with uniformly random probabilities (p_avg ≈ 0.5).
    Pokec,
    /// Protein-interaction database with prediction confidences
    /// (p_avg ≈ 0.27).
    Biomine,
    /// Social network (LiveJournal 2008) with uniformly random
    /// probabilities (p_avg ≈ 0.5).
    Ljournal,
}

impl PaperDataset {
    /// All datasets in the paper's order.
    pub fn all() -> [PaperDataset; 6] {
        [
            PaperDataset::Krogan,
            PaperDataset::Dblp,
            PaperDataset::Flickr,
            PaperDataset::Pokec,
            PaperDataset::Biomine,
            PaperDataset::Ljournal,
        ]
    }

    /// The paper's lowercase dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Krogan => "krogan",
            PaperDataset::Dblp => "dblp",
            PaperDataset::Flickr => "flickr",
            PaperDataset::Pokec => "pokec",
            PaperDataset::Biomine => "biomine",
            PaperDataset::Ljournal => "ljournal-2008",
        }
    }

    /// The synthetic specification emulating this dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            PaperDataset::Krogan => DatasetSpec {
                name: "krogan",
                structure: StructureModel::ClusteredBiological {
                    base_vertices: 300,
                    lattice_k: 4,
                    base_communities: 25,
                    community_size: (4, 6),
                },
                // High-confidence experimental interactions dominate.
                probability: ProbabilityModel::Confidence {
                    high_fraction: 0.5,
                    high_range: (0.7, 1.0),
                    low_range: (0.25, 0.65),
                },
                strong_community_fraction: 0.5,
                strong_probability: ProbabilityModel::Uniform {
                    low: 0.75,
                    high: 0.99,
                },
            },
            PaperDataset::Dblp => DatasetSpec {
                name: "dblp",
                structure: StructureModel::CliqueUnion {
                    base_vertices: 700,
                    base_communities: 180,
                    community_size: (3, 6),
                    overlap: 1,
                },
                probability: ProbabilityModel::ExponentialCollaboration {
                    mean_collaborations: 1.2,
                    scale: 5.0,
                },
                strong_community_fraction: 0.2,
                strong_probability: ProbabilityModel::Uniform {
                    low: 0.7,
                    high: 0.98,
                },
            },
            PaperDataset::Flickr => DatasetSpec {
                name: "flickr",
                structure: StructureModel::SocialPreferential {
                    base_vertices: 400,
                    attachment: 5,
                    base_communities: 35,
                    community_size: (5, 8),
                },
                probability: ProbabilityModel::JaccardLike {
                    smoothing: 3,
                    scale: 0.2,
                },
                strong_community_fraction: 0.35,
                strong_probability: ProbabilityModel::Uniform {
                    low: 0.7,
                    high: 0.98,
                },
            },
            PaperDataset::Pokec => DatasetSpec {
                name: "pokec",
                structure: StructureModel::SocialPreferential {
                    base_vertices: 900,
                    attachment: 4,
                    base_communities: 45,
                    community_size: (5, 8),
                },
                probability: ProbabilityModel::Uniform {
                    low: 0.01,
                    high: 0.95,
                },
                strong_community_fraction: 0.3,
                strong_probability: ProbabilityModel::Uniform {
                    low: 0.7,
                    high: 0.98,
                },
            },
            PaperDataset::Biomine => DatasetSpec {
                name: "biomine",
                structure: StructureModel::ClusteredBiological {
                    base_vertices: 1000,
                    lattice_k: 4,
                    base_communities: 110,
                    community_size: (4, 7),
                },
                probability: ProbabilityModel::Confidence {
                    high_fraction: 0.1,
                    high_range: (0.6, 0.95),
                    low_range: (0.05, 0.4),
                },
                strong_community_fraction: 0.3,
                strong_probability: ProbabilityModel::Uniform {
                    low: 0.7,
                    high: 0.98,
                },
            },
            PaperDataset::Ljournal => DatasetSpec {
                name: "ljournal-2008",
                structure: StructureModel::SocialPreferential {
                    base_vertices: 1400,
                    attachment: 5,
                    base_communities: 80,
                    community_size: (5, 9),
                },
                probability: ProbabilityModel::Uniform {
                    low: 0.01,
                    high: 0.95,
                },
                strong_community_fraction: 0.3,
                strong_probability: ProbabilityModel::Uniform {
                    low: 0.7,
                    high: 0.98,
                },
            },
        }
    }

    /// Generates the synthetic stand-in at the given scale.  The seed is
    /// combined with a per-dataset constant so different datasets never
    /// share structure even when the caller reuses a seed.
    pub fn generate(&self, scale: Scale, seed: u64) -> UncertainGraph {
        let salt = match self {
            PaperDataset::Krogan => 0x01,
            PaperDataset::Dblp => 0x02,
            PaperDataset::Flickr => 0x03,
            PaperDataset::Pokec => 0x04,
            PaperDataset::Biomine => 0x05,
            PaperDataset::Ljournal => 0x06,
        };
        self.spec()
            .generate(scale, seed.wrapping_mul(0x9e37_79b9).wrapping_add(salt))
    }

    /// The average edge probability reported by the paper (Table 1), used
    /// by tests to check the synthetic stand-in is in the right regime.
    pub fn paper_average_probability(&self) -> f64 {
        match self {
            PaperDataset::Krogan => 0.68,
            PaperDataset::Dblp => 0.26,
            PaperDataset::Flickr => 0.13,
            PaperDataset::Pokec => 0.50,
            PaperDataset::Biomine => 0.27,
            PaperDataset::Ljournal => 0.50,
        }
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_nonempty_graphs() {
        for ds in PaperDataset::all() {
            let g = ds.generate(Scale::Tiny, 1);
            assert!(g.num_vertices() > 100, "{ds}");
            assert!(g.num_edges() > 200, "{ds}");
            assert!(g.count_triangles() > 50, "{ds}");
        }
    }

    #[test]
    fn average_probability_tracks_paper_values() {
        for ds in PaperDataset::all() {
            let g = ds.generate(Scale::Tiny, 2);
            let avg = g.average_probability();
            let target = ds.paper_average_probability();
            assert!(
                (avg - target).abs() < 0.15,
                "{ds}: synthetic p_avg {avg:.2} vs paper {target:.2}"
            );
        }
    }

    #[test]
    fn datasets_are_ordered_by_size() {
        // The social networks should be larger than the biological ones,
        // as in Table 1.
        let krogan = PaperDataset::Krogan.generate(Scale::Tiny, 3);
        let ljournal = PaperDataset::Ljournal.generate(Scale::Tiny, 3);
        assert!(ljournal.num_vertices() > krogan.num_vertices());
        assert!(ljournal.num_edges() > krogan.num_edges());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(PaperDataset::Ljournal.name(), "ljournal-2008");
        assert_eq!(PaperDataset::Flickr.to_string(), "flickr");
        assert_eq!(PaperDataset::all().len(), 6);
    }

    #[test]
    fn generation_is_deterministic_per_dataset_and_seed() {
        for ds in [PaperDataset::Krogan, PaperDataset::Pokec] {
            let a = ds.generate(Scale::Tiny, 9);
            let b = ds.generate(Scale::Tiny, 9);
            assert_eq!(a, b, "{ds}");
        }
        // Different datasets with the same seed differ.
        let a = PaperDataset::Pokec.generate(Scale::Tiny, 9);
        let b = PaperDataset::Ljournal.generate(Scale::Tiny, 9);
        assert_ne!(a, b);
    }
}
