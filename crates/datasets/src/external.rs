//! Real on-disk datasets beside the synthetic registry.
//!
//! [`ExternalDataset`] wraps a file path, an [`InputFormat`], and an
//! [`EdgeProbabilityModel`]: everything needed to turn a downloaded SNAP
//! or Konect file (or a previously written `.ugsnap` snapshot) into an
//! [`UncertainGraph`].  [`DatasetSource`] puts external files and the six
//! synthetic [`PaperDataset`]s behind one enum so the experiment harness
//! can run any figure or table on either.
//!
//! Loading goes through a **snapshot cache**: the first load parses the
//! text file and writes `<file>.<fingerprint>.ugsnap` next to it; later
//! loads reload the snapshot, which skips text parsing and the graph
//! rebuild entirely.  The fingerprint covers the format, the probability
//! model *and an XXH64 hash of the source bytes*, so the same file
//! ingested under two models caches to two snapshots, and any change to
//! the source content — even one that preserves file size and mtime —
//! addresses a different cache entry and forces a re-parse.

use std::path::PathBuf;

use ugraph::io::{self, EdgeProbabilityModel, InputFormat};
use ugraph::UncertainGraph;

use crate::registry::PaperDataset;
use crate::spec::Scale;

/// A dataset ingested from a file on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalDataset {
    /// Display name used in tables and reports (defaults to the file
    /// stem).
    pub name: String,
    /// Path of the source file.
    pub path: PathBuf,
    /// On-disk format of the source file.
    pub format: InputFormat,
    /// How edges obtain existence probabilities.
    pub probability: EdgeProbabilityModel,
}

impl ExternalDataset {
    /// Creates an external dataset named after the file stem.
    pub fn new<P: Into<PathBuf>>(
        path: P,
        format: InputFormat,
        probability: EdgeProbabilityModel,
    ) -> Self {
        let path = path.into();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "external".to_string());
        ExternalDataset {
            name,
            path,
            format,
            probability,
        }
    }

    /// Overrides the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Parses the source file directly, bypassing the snapshot cache.
    pub fn load(&self) -> ugraph::Result<UncertainGraph> {
        io::read_graph_file(&self.path, self.format, &self.probability)
    }

    /// Parses already-read source bytes (shared by [`Self::load_cached`],
    /// which needs the bytes anyway for the content hash).
    fn parse_bytes(&self, bytes: &[u8]) -> ugraph::Result<UncertainGraph> {
        match self.format {
            InputFormat::Snap => io::read_edge_list_with_policy(
                bytes,
                &self.probability,
                io::DuplicatePolicy::MergeIdentical,
            ),
            InputFormat::Konect => io::read_konect(bytes, &self.probability),
            InputFormat::Snapshot => io::read_snapshot_bytes(bytes),
        }
    }

    /// Cache fingerprint: format, probability model and the XXH64 of the
    /// source bytes, so no stale cache can ever be addressed.
    fn fingerprint(&self, content_hash: u64) -> u64 {
        let config = format!("{}|{}|{content_hash:016x}", self.format, self.probability);
        io::xxh64(config.as_bytes(), 0)
    }

    fn cache_path_for(&self, fingerprint: u64) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "graph".to_string());
        name.push_str(&format!(".{fingerprint:016x}.ugsnap"));
        self.path.with_file_name(name)
    }

    /// Path of the cached snapshot for this (file content, format, model)
    /// triple.  Reads the source file to hash it; an unreadable source
    /// yields the configuration-only cache name.
    pub fn snapshot_cache_path(&self) -> PathBuf {
        let content_hash = std::fs::read(&self.path)
            .map(|bytes| io::xxh64(&bytes, 0))
            .unwrap_or(0);
        self.cache_path_for(self.fingerprint(content_hash))
    }

    /// Loads through the snapshot cache: reuses the cached snapshot
    /// addressed by the current source content when one exists, otherwise
    /// parses the source and writes the cache.
    ///
    /// Because the cache name embeds the source content hash, a modified
    /// source file — regardless of file timestamps, which archive
    /// extraction preserves and coarse filesystems round — simply misses
    /// the cache and is re-parsed.  A corrupt or unreadable cache also
    /// falls back to parsing; cache *write* failures are ignored (a
    /// read-only dataset directory must not break ingestion).
    /// Snapshot-format sources are already in their fastest form and load
    /// directly.
    ///
    /// The cache snapshot is written with the fingerprint as its source
    /// tag and the tag is verified on reload: a snapshot that merely
    /// *sits at* the cache path without having been derived from this
    /// source — e.g. an updated in-memory graph persisted there with the
    /// plain snapshot writer — fails the tag check and the source is
    /// re-parsed instead of silently serving the impostor.
    pub fn load_cached(&self) -> ugraph::Result<UncertainGraph> {
        if self.format == InputFormat::Snapshot {
            return self.load();
        }
        let bytes = std::fs::read(&self.path)?;
        let fingerprint = self.fingerprint(io::xxh64(&bytes, 0));
        let cache = self.cache_path_for(fingerprint);
        if let Ok((source, tag)) = io::open_snapshot_tagged(&cache) {
            if tag == fingerprint {
                return Ok(source.into_graph());
            }
        }
        let graph = self.parse_bytes(&bytes)?;
        let _ = io::write_snapshot_file_tagged(&graph, &cache, fingerprint);
        Ok(graph)
    }
}

/// Any dataset the experiment harness can run on: a synthetic paper
/// stand-in or an ingested file.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSource {
    /// One of the six synthetic Table 1 datasets.
    Paper(PaperDataset),
    /// A file on disk.
    External(ExternalDataset),
}

impl DatasetSource {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            DatasetSource::Paper(ds) => ds.name().to_string(),
            DatasetSource::External(ds) => ds.name.clone(),
        }
    }

    /// Materializes the graph.  `scale` and `seed` drive the synthetic
    /// generators and are ignored for external files (their size is fixed
    /// by the file, and seeded models carry their own seed).
    pub fn load(&self, scale: Scale, seed: u64) -> ugraph::Result<UncertainGraph> {
        match self {
            DatasetSource::Paper(ds) => Ok(ds.generate(scale, seed)),
            DatasetSource::External(ds) => ds.load_cached(),
        }
    }
}

impl From<PaperDataset> for DatasetSource {
    fn from(ds: PaperDataset) -> Self {
        DatasetSource::Paper(ds)
    }
}

impl From<ExternalDataset> for DatasetSource {
    fn from(ds: ExternalDataset) -> Self {
        DatasetSource::External(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("nd_datasets_external_{tag}"));
            fs::remove_dir_all(&dir).ok();
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    fn write_sample(dir: &Path) -> PathBuf {
        let path = dir.join("tiny.txt");
        fs::write(&path, "# tiny\n0 1 0.5\n1 2 0.75\n0 2 1\n").unwrap();
        path
    }

    #[test]
    fn loads_and_names_from_file_stem() {
        let tmp = TempDir::new("load");
        let ds = ExternalDataset::new(
            write_sample(&tmp.0),
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        );
        assert_eq!(ds.name, "tiny");
        let g = ds.load().unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_probability(0, 1), Some(0.5));
        let named = ds.clone().with_name("renamed");
        assert_eq!(named.name, "renamed");
    }

    #[test]
    fn cached_load_writes_then_reuses_a_snapshot() {
        let tmp = TempDir::new("cache");
        let ds = ExternalDataset::new(
            write_sample(&tmp.0),
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        );
        let cache = ds.snapshot_cache_path();
        assert!(!cache.exists());
        let first = ds.load_cached().unwrap();
        assert!(cache.exists(), "first load must materialize the cache");
        let second = ds.load_cached().unwrap();
        assert_eq!(first, second);

        // A corrupt cache falls back to parsing and is rewritten.
        fs::write(&cache, b"garbage").unwrap();
        let third = ds.load_cached().unwrap();
        assert_eq!(first, third);
        let fourth = ugraph::io::read_snapshot_file(&cache).unwrap();
        assert_eq!(first, fourth);
    }

    #[test]
    fn distinct_models_use_distinct_caches() {
        let tmp = TempDir::new("fingerprint");
        let path = write_sample(&tmp.0);
        let column = ExternalDataset::new(&path, InputFormat::Snap, EdgeProbabilityModel::Column);
        let constant = ExternalDataset::new(
            &path,
            InputFormat::Snap,
            EdgeProbabilityModel::Constant(0.25),
        );
        assert_ne!(column.snapshot_cache_path(), constant.snapshot_cache_path());
        let a = column.load_cached().unwrap();
        let b = constant.load_cached().unwrap();
        assert_eq!(a.edge_probability(0, 1), Some(0.5));
        assert_eq!(b.edge_probability(0, 1), Some(0.25));
    }

    #[test]
    fn changed_source_content_misses_the_cache_regardless_of_mtime() {
        let tmp = TempDir::new("content_hash");
        let path = write_sample(&tmp.0);
        let ds = ExternalDataset::new(&path, InputFormat::Snap, EdgeProbabilityModel::Column);
        let first = ds.load_cached().unwrap();
        let first_cache = ds.snapshot_cache_path();
        assert!(first_cache.exists());

        // Replace the source with different content of the same byte
        // length — an mtime- or size-based check could miss this.
        fs::write(&path, "# tiny\n0 1 0.9\n1 2 0.75\n0 2 1\n").unwrap();
        let second = ds.load_cached().unwrap();
        assert_ne!(first, second);
        assert_eq!(second.edge_probability(0, 1), Some(0.9));
        assert_ne!(ds.snapshot_cache_path(), first_cache, "content-addressed");
    }

    #[test]
    fn untagged_snapshot_at_the_cache_path_is_not_served() {
        // A snapshot written at the cache path by something other than
        // the cache layer (e.g. an updated in-memory graph persisted
        // with the plain writer) must not be mistaken for the parse of
        // the source.
        let tmp = TempDir::new("impostor");
        let ds = ExternalDataset::new(
            write_sample(&tmp.0),
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        );
        let original = ds.load_cached().unwrap();
        let cache = ds.snapshot_cache_path();
        assert!(cache.exists());

        // Overwrite the cache with a *different* graph, untagged.
        let mut b = ugraph::GraphBuilder::new();
        b.add_edge(0, 1, 0.123).unwrap();
        let impostor = b.build();
        ugraph::io::write_snapshot_file(&impostor, &cache).unwrap();

        let reloaded = ds.load_cached().unwrap();
        assert_eq!(reloaded, original, "tag mismatch must force a re-parse");
        assert_ne!(reloaded, impostor);
        // And the cache is healed with a properly tagged snapshot.
        let (healed, tag) = ugraph::io::read_snapshot_file_tagged(&cache).unwrap();
        assert_eq!(healed, original);
        assert_ne!(tag, ugraph::io::UNTAGGED);
    }

    #[test]
    fn snap_sources_tolerate_directed_listings() {
        let tmp = TempDir::new("directed");
        let path = tmp.0.join("directed.txt");
        fs::write(&path, "0 1\n1 0\n1 2\n2 1\n").unwrap();
        let ds = ExternalDataset::new(&path, InputFormat::Snap, EdgeProbabilityModel::Column);
        assert_eq!(ds.load_cached().unwrap().num_edges(), 2);
    }

    #[test]
    fn snapshot_sources_load_directly() {
        let tmp = TempDir::new("direct");
        let txt = ExternalDataset::new(
            write_sample(&tmp.0),
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        );
        let graph = txt.load().unwrap();
        let snap_path = tmp.0.join("tiny.ugsnap");
        ugraph::io::write_snapshot_file(&graph, &snap_path).unwrap();
        let snap = ExternalDataset::new(
            &snap_path,
            InputFormat::Snapshot,
            EdgeProbabilityModel::Column,
        );
        assert_eq!(snap.load_cached().unwrap(), graph);
        // No extra cache file appears beside a snapshot source.
        assert!(!snap.snapshot_cache_path().exists());
    }

    #[test]
    fn source_enum_spans_both_worlds() {
        let tmp = TempDir::new("source");
        let external: DatasetSource = ExternalDataset::new(
            write_sample(&tmp.0),
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        )
        .into();
        let paper: DatasetSource = PaperDataset::Krogan.into();
        assert_eq!(external.name(), "tiny");
        assert_eq!(paper.name(), "krogan");
        assert_eq!(external.load(Scale::Tiny, 1).unwrap().num_edges(), 3);
        assert!(paper.load(Scale::Tiny, 1).unwrap().num_edges() > 100);
    }

    #[test]
    fn load_errors_are_propagated() {
        let ds = ExternalDataset::new(
            "/nonexistent/missing.txt",
            InputFormat::Snap,
            EdgeProbabilityModel::Column,
        );
        assert!(matches!(
            ds.load_cached().unwrap_err(),
            ugraph::GraphError::Io(_)
        ));
    }
}
