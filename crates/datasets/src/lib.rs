//! # nd-datasets — synthetic emulations of the paper's datasets
//!
//! The experiments of the paper run on six real uncertain graphs (Table 1:
//! *krogan, dblp, flickr, pokec, biomine, ljournal-2008*), which are not
//! redistributable with this reproduction.  This crate generates
//! **synthetic stand-ins** that preserve the properties the algorithms are
//! sensitive to:
//!
//! * the *structure class* — protein-interaction networks are small and
//!   locally clustered, co-authorship graphs are unions of many small
//!   cliques, social networks have heavy-tailed degree distributions — and
//! * the *edge-probability model* — Jaccard similarities (flickr),
//!   exponential functions of collaboration counts (dblp), experimental
//!   confidence scores (krogan, biomine), or uniform probabilities
//!   (pokec, ljournal), matching Section 7.1 of the paper.
//!
//! Each dataset is generated at a configurable [`Scale`] so that every
//! experiment finishes on a laptop, and every generator is seeded so the
//! whole evaluation is reproducible bit-for-bit.
//!
//! Real on-disk graphs sit beside the synthetic registry: an
//! [`ExternalDataset`] wraps a file path, input format and
//! edge-probability model (with cached `.ugsnap` snapshot
//! materialization), and [`DatasetSource`] unifies both kinds behind one
//! enum for the experiment harness.
//!
//! ```
//! use nd_datasets::{PaperDataset, Scale};
//!
//! let graph = PaperDataset::Krogan.generate(Scale::Tiny, 42);
//! assert!(graph.num_edges() > 100);
//! let stats = nd_datasets::stats::table1_row(PaperDataset::Krogan, &graph);
//! assert_eq!(stats.name, "krogan");
//! ```

pub mod external;
pub mod registry;
pub mod spec;
pub mod stats;

pub use external::{DatasetSource, ExternalDataset};
pub use registry::PaperDataset;
pub use spec::{DatasetSpec, Scale, StructureModel};
pub use stats::{stats_row, table1_row, Table1Row};
