//! Dataset specifications: structure model, probability models, and scale.
//!
//! The defining feature of the real datasets that the decompositions are
//! sensitive to is that edge probabilities are *correlated with structure*:
//! a protein complex whose interactions were all experimentally confirmed,
//! a group of co-authors with many joint papers, or a tight interest group
//! on flickr all produce small cliques whose edges are *jointly* strong.
//! Independent per-edge probabilities would make the probability of a
//! fully-strong 4-clique vanish and no (k,θ)-nucleus would survive at the
//! θ values the paper uses.  The generator therefore plants communities
//! and, with probability [`DatasetSpec::strong_community_fraction`], makes
//! a whole community "strong": all of its edges draw from
//! [`DatasetSpec::strong_probability`] instead of the background model.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::generators::{
    barabasi_albert_edges, gnm_edges, watts_strogatz_edges, ProbabilityModel,
};
use ugraph::{GraphBuilder, UncertainGraph, VertexId};

/// How large the generated stand-in should be.
///
/// The paper's datasets range from thousands to tens of millions of edges;
/// the reproduction scales them down so that *every* experiment — including
/// the exact-DP baseline — completes on a single machine, while keeping the
/// relative ordering of the datasets by size and triangle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few hundred vertices — used by unit/integration tests.
    Tiny,
    /// A few thousand vertices — the default for the experiment harness.
    Small,
    /// Tens of thousands of vertices — for longer benchmark runs.
    Medium,
}

impl Scale {
    /// Multiplier applied to the base (Tiny) size parameters.
    pub fn factor(&self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Medium => 16,
        }
    }
}

/// The structural family of a generated graph.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureModel {
    /// Clustered small-world structure plus planted complexes —
    /// protein-interaction-like graphs (krogan, biomine).
    ClusteredBiological {
        /// Number of vertices at Tiny scale.
        base_vertices: usize,
        /// Ring-lattice neighbourhood size.
        lattice_k: usize,
        /// Number of planted complexes at Tiny scale.
        base_communities: usize,
        /// Community size range.
        community_size: (usize, usize),
    },
    /// A union of many small cliques over a sparse background —
    /// co-authorship graphs (dblp) where every paper induces a clique.
    CliqueUnion {
        /// Number of vertices at Tiny scale.
        base_vertices: usize,
        /// Number of planted cliques (papers) at Tiny scale.
        base_communities: usize,
        /// Clique size range (authors per paper).
        community_size: (usize, usize),
        /// Overlap between consecutive cliques (recurring co-authors).
        overlap: usize,
    },
    /// Preferential attachment plus planted dense groups — social networks
    /// and photo-sharing communities (flickr, pokec, ljournal).
    SocialPreferential {
        /// Number of vertices at Tiny scale.
        base_vertices: usize,
        /// Edges added per new vertex.
        attachment: usize,
        /// Number of planted dense groups at Tiny scale.
        base_communities: usize,
        /// Group size range.
        community_size: (usize, usize),
    },
}

impl StructureModel {
    /// Generates the background edges and the planted community vertex
    /// sets for this structure at the given scale factor.
    fn generate_parts<R: Rng + ?Sized>(
        &self,
        factor: usize,
        rng: &mut R,
    ) -> (Vec<(VertexId, VertexId)>, Vec<Vec<VertexId>>, usize) {
        match self {
            StructureModel::ClusteredBiological {
                base_vertices,
                lattice_k,
                base_communities,
                community_size,
            } => {
                let n = base_vertices * factor;
                let background = watts_strogatz_edges(n, *lattice_k, 0.2, rng);
                let communities =
                    generate_communities(n, base_communities * factor, *community_size, 1, rng);
                (background, communities, n)
            }
            StructureModel::CliqueUnion {
                base_vertices,
                base_communities,
                community_size,
                overlap,
            } => {
                let n = base_vertices * factor;
                let background = gnm_edges(n, n / 4, rng);
                let communities = generate_communities(
                    n,
                    base_communities * factor,
                    *community_size,
                    *overlap,
                    rng,
                );
                (background, communities, n)
            }
            StructureModel::SocialPreferential {
                base_vertices,
                attachment,
                base_communities,
                community_size,
            } => {
                let n = base_vertices * factor;
                let mut background = barabasi_albert_edges(n, *attachment, rng);
                background.extend(gnm_edges(n, n / 2, rng));
                let communities =
                    generate_communities(n, base_communities * factor, *community_size, 2, rng);
                (background, communities, n)
            }
        }
    }
}

/// Generates `count` community vertex sets of sizes within `size_range`;
/// consecutive communities share `overlap` vertices.
fn generate_communities<R: Rng + ?Sized>(
    n: usize,
    count: usize,
    size_range: (usize, usize),
    overlap: usize,
    rng: &mut R,
) -> Vec<Vec<VertexId>> {
    let mut communities = Vec::with_capacity(count);
    let mut previous: Vec<VertexId> = Vec::new();
    for _ in 0..count {
        let size = rng.gen_range(size_range.0..=size_range.1).min(n);
        let mut members: Vec<VertexId> = Vec::with_capacity(size);
        members.extend(previous.iter().take(overlap.min(previous.len())).copied());
        let mut guard = 0;
        while members.len() < size && guard < 100 * size {
            guard += 1;
            let v = rng.gen_range(0..n) as VertexId;
            if !members.contains(&v) {
                members.push(v);
            }
        }
        previous = members.clone();
        communities.push(members);
    }
    communities
}

/// A full dataset specification: structure, background probability model,
/// and the strong-community model.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Short lowercase name (matches the paper's dataset names).
    pub name: &'static str,
    /// Structural family.
    pub structure: StructureModel,
    /// Edge-probability model for background edges and weak communities.
    pub probability: ProbabilityModel,
    /// Fraction of planted communities whose edges are jointly strong.
    pub strong_community_fraction: f64,
    /// Edge-probability model used inside strong communities.
    pub strong_probability: ProbabilityModel,
}

impl DatasetSpec {
    /// Generates the dataset at the given scale with a fixed seed.
    pub fn generate(&self, scale: Scale, seed: u64) -> UncertainGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (background, communities, n) = self.structure.generate_parts(scale.factor(), &mut rng);

        let mut builder = GraphBuilder::with_vertices(n);
        // Background edges first; community edges are added afterwards and
        // override the probability of any duplicate pair (last-wins).
        for (u, v) in background {
            if u == v {
                continue;
            }
            let p = self.probability.sample(&mut rng);
            builder.add_edge(u, v, p).expect("generator edge is valid");
        }
        for community in &communities {
            let strong = rng.gen::<f64>() < self.strong_community_fraction;
            for i in 0..community.len() {
                for j in (i + 1)..community.len() {
                    let (u, v) = (community[i], community[j]);
                    if u == v {
                        continue;
                    }
                    let p = if strong {
                        self.strong_probability.sample(&mut rng)
                    } else {
                        self.probability.sample(&mut rng)
                    };
                    builder.add_edge(u, v, p).expect("generator edge is valid");
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "test",
            structure: StructureModel::CliqueUnion {
                base_vertices: 200,
                base_communities: 30,
                community_size: (4, 6),
                overlap: 1,
            },
            probability: ProbabilityModel::Uniform {
                low: 0.1,
                high: 0.4,
            },
            strong_community_fraction: 0.4,
            strong_probability: ProbabilityModel::Uniform {
                low: 0.7,
                high: 0.98,
            },
        }
    }

    #[test]
    fn scale_factors_are_increasing() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Medium.factor());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        let a = s.generate(Scale::Tiny, 7);
        let b = s.generate(Scale::Tiny, 7);
        assert_eq!(a, b);
        let c = s.generate(Scale::Tiny, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn scale_grows_the_graph() {
        let s = spec();
        let tiny = s.generate(Scale::Tiny, 3);
        let small = s.generate(Scale::Small, 3);
        assert!(small.num_vertices() > tiny.num_vertices());
        assert!(small.num_edges() > tiny.num_edges());
    }

    #[test]
    fn probabilities_are_valid() {
        let s = spec();
        let g = s.generate(Scale::Tiny, 5);
        for e in g.edges() {
            assert!(e.p > 0.0 && e.p <= 1.0);
        }
    }

    #[test]
    fn strong_communities_produce_high_probability_cliques() {
        // With strong communities there must be 4-cliques whose edges are
        // all above 0.6 — the structural feature nucleus decomposition is
        // designed to reveal.
        let s = spec();
        let g = s.generate(Scale::Tiny, 9);
        let strong_cliques = ugraph::FourCliqueEnumerator::new(&g)
            .cliques()
            .iter()
            .filter(|c| {
                c.probability(&g)
                    .map(|p| p > 0.6f64.powi(6))
                    .unwrap_or(false)
            })
            .count();
        assert!(strong_cliques > 0, "expected at least one strong 4-clique");
    }

    #[test]
    fn community_generation_respects_sizes_and_overlap() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let communities = generate_communities(500, 20, (4, 6), 2, &mut rng);
        assert_eq!(communities.len(), 20);
        for c in &communities {
            assert!(c.len() >= 4 && c.len() <= 6);
            let mut dedup = c.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), c.len(), "no duplicate members");
        }
        // Consecutive communities share at least one vertex.
        for pair in communities.windows(2) {
            let shared = pair[1].iter().filter(|v| pair[0].contains(v)).count();
            assert!(shared >= 1);
        }
    }

    #[test]
    fn all_structure_models_generate_triangles() {
        let structures = [
            StructureModel::ClusteredBiological {
                base_vertices: 150,
                lattice_k: 6,
                base_communities: 12,
                community_size: (4, 6),
            },
            StructureModel::CliqueUnion {
                base_vertices: 150,
                base_communities: 25,
                community_size: (4, 6),
                overlap: 1,
            },
            StructureModel::SocialPreferential {
                base_vertices: 150,
                attachment: 3,
                base_communities: 10,
                community_size: (5, 7),
            },
        ];
        for structure in structures {
            let s = DatasetSpec {
                name: "probe",
                structure,
                probability: ProbabilityModel::Constant(0.5),
                strong_community_fraction: 0.3,
                strong_probability: ProbabilityModel::Constant(0.9),
            };
            let g = s.generate(Scale::Tiny, 11);
            assert!(g.count_triangles() > 20, "{:?}", s.structure);
        }
    }
}
