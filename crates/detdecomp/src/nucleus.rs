//! Deterministic k-(3,4)-nucleus decomposition (Sarıyüce et al., WWW 2015).
//!
//! The *support* of a triangle is the number of 4-cliques containing it.
//! A k-(3,4)-nucleus is a maximal subgraph that is a union of 4-cliques,
//! in which every triangle has support ≥ k and every pair of triangles is
//! connected through a chain of 4-cliques (Definition 3 of the paper).
//!
//! The decomposition assigns every triangle its *nucleusness* κ(△): the
//! largest `k` such that △ belongs to a k-(3,4)-nucleus.  It is computed
//! by support peeling over triangles; since the (r,s)-nucleus API
//! redesign the peel runs on the generic deferred bucket-queue engine of
//! `ugraph::rs` at rank (3,4), with a cell-counting rescore.  The
//! pre-redesign eager heap loop is frozen in
//! [`crate::reference::nucleusness`] and the two are pinned identical by
//! the differential test suite (nucleusness values are canonical, so any
//! correct peel order yields the same output).

use ugraph::rs::{peel_deferred, RsSupport};
use ugraph::{
    EdgeSubgraph, FourClique, FourCliqueEnumerator, Triangle, TriangleId, TriangleIndex,
    UncertainGraph, UnionFind,
};

/// Rank-(3,4) deterministic support structure: triangles are the
/// elements, enumerated 4-cliques the cells.  All probabilities are 1;
/// only the incidence accessors are exercised by the counting rescore.
struct DetNucleusSupport {
    cliques: Vec<[TriangleId; 4]>,
    cliques_of: Vec<Vec<u32>>,
}

impl RsSupport for DetNucleusSupport {
    fn num_elements(&self) -> usize {
        self.cliques_of.len()
    }

    fn num_cells(&self) -> usize {
        self.cliques.len()
    }

    fn element_prob(&self, _t: u32) -> f64 {
        1.0
    }

    fn cells_of(&self, t: u32) -> &[u32] {
        &self.cliques_of[t as usize]
    }

    fn cell_elements(&self, c: u32) -> &[u32] {
        &self.cliques[c as usize]
    }

    fn completion_prob(&self, _c: u32, _t: u32) -> f64 {
        1.0
    }
}

/// Result of the deterministic (3,4)-nucleus decomposition.
#[derive(Debug, Clone)]
pub struct NucleusDecomposition {
    index: TriangleIndex,
    cliques: Vec<[TriangleId; 4]>,
    clique_vertices: Vec<FourClique>,
    nucleusness: Vec<u32>,
}

impl NucleusDecomposition {
    /// Runs the decomposition on the structure of `graph`.
    pub fn compute(graph: &UncertainGraph) -> Self {
        let index = TriangleIndex::build(graph);
        let clique_vertices = FourCliqueEnumerator::new(graph).into_cliques();

        // Map each 4-clique to the ids of its four triangles, and build the
        // reverse triangle → cliques adjacency.
        let mut cliques: Vec<[TriangleId; 4]> = Vec::with_capacity(clique_vertices.len());
        let mut cliques_of: Vec<Vec<u32>> = vec![Vec::new(); index.len()];
        // Clique indices are packed into `u32` ids; narrow through the
        // checked constructor so a count past 2^32 fails typed.
        if let Some(last) = clique_vertices.len().checked_sub(1) {
            ugraph::error::checked_id("4-clique", last)
                .expect("4-clique count exceeds the packed 32-bit id space");
        }
        for (ci, clique) in clique_vertices.iter().enumerate() {
            let mut ids = [0 as TriangleId; 4];
            for (slot, t) in clique.triangles().iter().enumerate() {
                let id = index
                    .id_of(t)
                    .expect("every triangle of an enumerated 4-clique is indexed");
                ids[slot] = id;
                cliques_of[id as usize].push(ci as u32);
            }
            cliques.push(ids);
        }

        // Support peeling over triangles via the generic engine.
        let support = DetNucleusSupport {
            cliques,
            cliques_of,
        };
        let kappa: Vec<u32> = (0..support.num_elements())
            .map(|t| support.support(t as u32) as u32)
            .collect();
        let (nucleusness, _stats) = peel_deferred(&support, kappa, |t, clique_dead| {
            support
                .cells_of(t)
                .iter()
                .filter(|&&c| !clique_dead[c as usize])
                .count() as u32
        });

        NucleusDecomposition {
            index,
            cliques: support.cliques,
            clique_vertices,
            nucleusness,
        }
    }

    /// The triangle index the decomposition is expressed over.
    pub fn triangle_index(&self) -> &TriangleIndex {
        &self.index
    }

    /// Nucleusness κ(△) of triangle id `t`.
    pub fn nucleusness(&self, t: TriangleId) -> u32 {
        self.nucleusness[t as usize]
    }

    /// Nucleusness of the triangle with the given vertices, or `None` if
    /// the triangle does not exist in the graph.
    pub fn nucleusness_of(&self, triangle: &Triangle) -> Option<u32> {
        self.index.id_of(triangle).map(|id| self.nucleusness(id))
    }

    /// Nucleusness of every triangle, indexed by triangle id.
    pub fn nucleusness_values(&self) -> &[u32] {
        &self.nucleusness
    }

    /// Largest nucleusness in the graph; `0` when there are no 4-cliques.
    pub fn max_nucleusness(&self) -> u32 {
        self.nucleusness.iter().copied().max().unwrap_or(0)
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.index.len()
    }

    /// Number of 4-cliques.
    pub fn num_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Extracts the maximal k-(3,4)-nuclei for the given `k ≥ 1`.
    ///
    /// A nucleus is formed by the 4-cliques all of whose triangles have
    /// nucleusness ≥ k; nuclei are the connected components of those
    /// cliques under shared-triangle connectivity.
    pub fn k_nuclei(&self, graph: &UncertainGraph, k: u32) -> Vec<NucleusSubgraph> {
        let qualifying: Vec<usize> = self
            .cliques
            .iter()
            .enumerate()
            .filter_map(|(ci, tris)| tris.iter().all(|&t| self.nucleusness(t) >= k).then_some(ci))
            .collect();
        if qualifying.is_empty() {
            return Vec::new();
        }

        // Union triangles that co-occur in a qualifying 4-clique.
        let mut uf = UnionFind::new(self.index.len());
        let mut in_some_clique = vec![false; self.index.len()];
        for &ci in &qualifying {
            let tris = self.cliques[ci];
            for &t in &tris {
                in_some_clique[t as usize] = true;
            }
            for w in tris.windows(2) {
                uf.union(w[0], w[1]);
            }
        }

        // Group qualifying cliques by the component of their first triangle.
        let mut groups: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for &ci in &qualifying {
            let root = uf.find(self.cliques[ci][0]);
            groups.entry(root).or_default().push(ci);
        }

        let mut nuclei: Vec<NucleusSubgraph> = groups
            .into_values()
            .map(|clique_ids| {
                let mut triangles: Vec<Triangle> = Vec::new();
                let mut edge_ids: Vec<ugraph::EdgeId> = Vec::new();
                let mut cliques: Vec<FourClique> = Vec::with_capacity(clique_ids.len());
                for &ci in &clique_ids {
                    let cv = self.clique_vertices[ci];
                    cliques.push(cv);
                    for t in cv.triangles() {
                        triangles.push(t);
                    }
                    for (u, v) in cv.edges() {
                        edge_ids.push(graph.edge_id(u, v).expect("clique edge exists"));
                    }
                }
                triangles.sort_unstable();
                triangles.dedup();
                edge_ids.sort_unstable();
                edge_ids.dedup();
                cliques.sort_unstable();
                NucleusSubgraph {
                    k,
                    subgraph: EdgeSubgraph::induced_by_edges(graph, &edge_ids),
                    triangles,
                    cliques,
                }
            })
            .collect();
        nuclei.sort_by_key(|n| n.cliques.first().copied());
        nuclei
    }
}

/// One maximal k-(3,4)-nucleus: a materialized subgraph plus the triangles
/// and 4-cliques it is made of (in original vertex ids).
#[derive(Debug, Clone)]
pub struct NucleusSubgraph {
    /// The `k` this nucleus was extracted for.
    pub k: u32,
    /// The materialized subgraph (dense local vertex ids, with the mapping
    /// back to original ids).
    pub subgraph: EdgeSubgraph,
    /// Triangles of the nucleus, in original vertex ids.
    pub triangles: Vec<Triangle>,
    /// 4-cliques of the nucleus, in original vertex ids.
    pub cliques: Vec<FourClique>,
}

impl NucleusSubgraph {
    /// Number of vertices of the nucleus.
    pub fn num_vertices(&self) -> usize {
        self.subgraph.num_vertices()
    }

    /// Number of edges of the nucleus.
    pub fn num_edges(&self) -> usize {
        self.subgraph.num_edges()
    }

    /// `true` when the triangle `t` (original vertex ids) belongs to this
    /// nucleus.
    pub fn contains_triangle(&self, t: &Triangle) -> bool {
        self.triangles.binary_search(t).is_ok()
    }
}

/// Convenience: nucleusness of every triangle of `graph`.
pub fn triangle_nucleusness(graph: &UncertainGraph) -> NucleusDecomposition {
    NucleusDecomposition::compute(graph)
}

/// Convenience: the maximal k-(3,4)-nuclei of `graph` for a given `k`.
pub fn k_nucleus_subgraphs(graph: &UncertainGraph, k: u32) -> Vec<NucleusSubgraph> {
    NucleusDecomposition::compute(graph).k_nuclei(graph, k)
}

/// Checks whether `graph` itself is a deterministic k-nucleus
/// (Definition 3): it is a union of 4-cliques, every triangle has support
/// ≥ k, and every pair of triangles is connected through 4-cliques.
///
/// Used by the global algorithm (Algorithm 2) as the indicator
/// `1_g(G, △, k)` on sampled possible worlds.  An edgeless graph is not a
/// nucleus; for `k = 0` the support condition is vacuous but the
/// union-of-cliques and connectivity conditions still apply.
pub fn is_k_nucleus(graph: &UncertainGraph, k: u32) -> bool {
    if graph.num_edges() == 0 {
        return false;
    }
    let index = TriangleIndex::build(graph);
    let cliques = FourCliqueEnumerator::new(graph).into_cliques();
    if cliques.is_empty() {
        return false;
    }

    // (1) Union of 4-cliques: every edge is covered by some 4-clique.
    let mut edge_covered = vec![false; graph.num_edges()];
    let mut support = vec![0u32; index.len()];
    let mut uf = UnionFind::new(index.len());
    for clique in &cliques {
        for (u, v) in clique.edges() {
            let e = graph.edge_id(u, v).expect("clique edge exists");
            edge_covered[e as usize] = true;
        }
        let ids: Vec<TriangleId> = clique
            .triangles()
            .iter()
            .map(|t| index.id_of(t).expect("indexed"))
            .collect();
        for &t in &ids {
            support[t as usize] += 1;
        }
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    if !edge_covered.into_iter().all(|c| c) {
        return false;
    }

    // (2) Every triangle has support >= k.
    if support.iter().any(|&s| s < k) {
        return false;
    }

    // (3) All triangles are 4-clique connected.  Triangles not in any
    // 4-clique would have support 0; they are only admissible when k = 0,
    // but then they violate connectivity unless there are no other
    // triangles — which cannot happen since cliques is non-empty.
    let mut roots: Vec<u32> = (0..index.len() as u32).map(|t| uf.find(t)).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len() <= 1
}

/// A relaxed form of [`is_k_nucleus`] used to evaluate the *global*
/// indicator `1_g(G, △, k)` on possible worlds (Definition 4): every
/// triangle of `graph` must have 4-clique support ≥ k and all triangles
/// must be 4-clique-connected, but edges that lie outside every 4-clique
/// are ignored (a sampled world routinely contains a few stray certain
/// edges that Definition 3's union-of-cliques condition would reject,
/// and the paper's worked example — Figure 2 — counts such worlds).
///
/// Returns `false` for worlds without any triangle.
pub fn is_k_nucleus_lenient(graph: &UncertainGraph, k: u32) -> bool {
    let index = TriangleIndex::build(graph);
    if index.is_empty() {
        return false;
    }
    let cliques = FourCliqueEnumerator::new(graph).into_cliques();
    let mut support = vec![0u32; index.len()];
    let mut uf = UnionFind::new(index.len());
    for clique in &cliques {
        let ids: Vec<TriangleId> = clique
            .triangles()
            .iter()
            .map(|t| index.id_of(t).expect("indexed"))
            .collect();
        for &t in &ids {
            support[t as usize] += 1;
        }
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    if support.iter().any(|&s| s < k) {
        return false;
    }
    let mut roots: Vec<u32> = (0..index.len() as u32).map(|t| uf.find(t)).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, 1.0).unwrap();
            }
        }
        b.build()
    }

    /// Brute-force nucleusness by iterative filtering for each k.
    fn naive_nucleusness(graph: &UncertainGraph) -> Vec<u32> {
        let index = TriangleIndex::build(graph);
        let cliques = FourCliqueEnumerator::new(graph).into_cliques();
        let clique_tris: Vec<Vec<TriangleId>> = cliques
            .iter()
            .map(|c| {
                c.triangles()
                    .iter()
                    .map(|t| index.id_of(t).unwrap())
                    .collect()
            })
            .collect();
        let nt = index.len();
        let mut result = vec![0u32; nt];
        let max_k = cliques.len() as u32;
        for k in 1..=max_k {
            let mut alive = vec![true; nt];
            loop {
                let mut changed = false;
                for t in 0..nt {
                    if !alive[t] {
                        continue;
                    }
                    let sup = clique_tris
                        .iter()
                        .filter(|tris| {
                            tris.iter().all(|&x| alive[x as usize])
                                && tris.contains(&(t as TriangleId))
                        })
                        .count() as u32;
                    if sup < k {
                        alive[t] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for t in 0..nt {
                if alive[t] {
                    result[t] = k;
                }
            }
        }
        result
    }

    #[test]
    fn k4_nucleusness_is_one() {
        let g = complete(4);
        let d = NucleusDecomposition::compute(&g);
        assert_eq!(d.num_triangles(), 4);
        assert_eq!(d.num_cliques(), 1);
        assert!(d.nucleusness_values().iter().all(|&x| x == 1));
        assert_eq!(d.max_nucleusness(), 1);
    }

    #[test]
    fn k6_nucleusness_is_three() {
        // In K6 every triangle is in C(3,1)=3 4-cliques.
        let g = complete(6);
        let d = NucleusDecomposition::compute(&g);
        assert!(d.nucleusness_values().iter().all(|&x| x == 3));
    }

    #[test]
    fn triangle_without_clique_has_zero_nucleusness() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let d = NucleusDecomposition::compute(&g);
        assert_eq!(d.num_triangles(), 1);
        assert_eq!(d.max_nucleusness(), 0);
        assert_eq!(d.nucleusness_of(&Triangle::new(0, 1, 2)), Some(0));
        assert_eq!(d.nucleusness_of(&Triangle::new(0, 1, 3)), None);
    }

    #[test]
    fn two_overlapping_k4s() {
        // K4 on {0,1,2,3} and K4 on {2,3,4,5} sharing edge (2,3).
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        for &(u, v) in &[(2, 4), (2, 5), (3, 4), (3, 5), (4, 5)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let d = NucleusDecomposition::compute(&g);
        // Every triangle lies in exactly one K4, so nucleusness is 1.
        assert!(d.nucleusness_values().iter().all(|&x| x == 1));
        let nuclei = d.k_nuclei(&g, 1);
        // The two K4s only share an edge (no shared triangle), so they are
        // two distinct 1-nuclei.
        assert_eq!(nuclei.len(), 2);
        for n in &nuclei {
            assert_eq!(n.num_vertices(), 4);
            assert_eq!(n.num_edges(), 6);
            assert_eq!(n.cliques.len(), 1);
            assert_eq!(n.triangles.len(), 4);
        }
    }

    #[test]
    fn k5_minus_edge_nuclei() {
        // K5 missing edge (3,4): triangles containing both 3 and 4 vanish.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                if (u, v) != (3, 4) {
                    b.add_edge(u, v, 1.0).unwrap();
                }
            }
        }
        let g = b.build();
        let d = NucleusDecomposition::compute(&g);
        let naive = naive_nucleusness(&g);
        assert_eq!(d.nucleusness_values(), naive.as_slice());
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use rand::SeedableRng;
        for seed in [3u64, 5, 11] {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let edges = ugraph::generators::gnm_edges(18, 70, &mut rng);
            let g = ugraph::generators::assign_probabilities(
                &edges,
                18,
                &ugraph::generators::ProbabilityModel::Constant(1.0),
                &mut rng,
            );
            let fast = NucleusDecomposition::compute(&g);
            let naive = naive_nucleusness(&g);
            assert_eq!(fast.nucleusness_values(), naive.as_slice(), "seed {seed}");
            assert_eq!(
                fast.nucleusness_values(),
                crate::reference::nucleusness(&g).as_slice(),
                "generic engine must match the frozen eager heap peel (seed {seed})"
            );
        }
    }

    #[test]
    fn nuclei_extraction_respects_k() {
        let g = complete(6);
        let d = NucleusDecomposition::compute(&g);
        let n3 = d.k_nuclei(&g, 3);
        assert_eq!(n3.len(), 1);
        assert_eq!(n3[0].num_vertices(), 6);
        assert_eq!(n3[0].num_edges(), 15);
        assert!(d.k_nuclei(&g, 4).is_empty());
        let n1 = d.k_nuclei(&g, 1);
        assert_eq!(n1.len(), 1);
        assert!(n1[0].contains_triangle(&Triangle::new(0, 1, 2)));
        assert!(!n1[0].contains_triangle(&Triangle::new(0, 1, 7)));
    }

    #[test]
    fn convenience_wrappers() {
        let g = complete(5);
        let d = triangle_nucleusness(&g);
        assert_eq!(d.max_nucleusness(), 2);
        let nuclei = k_nucleus_subgraphs(&g, 2);
        assert_eq!(nuclei.len(), 1);
        assert_eq!(nuclei[0].k, 2);
    }

    #[test]
    fn is_k_nucleus_on_cliques() {
        // A (k+3)-clique is a k-nucleus (Lemma 3 direction).  The k = 0
        // case is excluded: Definition 3 requires the subgraph to be a
        // union of 4-cliques, which K3 is not.
        for k in 1..5u32 {
            let g = complete(k + 3);
            assert!(is_k_nucleus(&g, k), "K{} should be a {}-nucleus", k + 3, k);
            assert!(!is_k_nucleus(&g, k + 1));
        }
        // A K4 is also a 0-nucleus under the strict definition.
        assert!(is_k_nucleus(&complete(4), 0));
    }

    #[test]
    fn is_k_nucleus_rejects_non_nuclei() {
        // Triangle has no 4-clique.
        let g = complete(3);
        assert!(!is_k_nucleus(&g, 0));
        assert!(!is_k_nucleus(&g, 1));
        // Empty graph.
        assert!(!is_k_nucleus(&UncertainGraph::empty(5), 0));
        // K4 plus a pendant edge: edge (3,4) is not covered by a 4-clique.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        assert!(!is_k_nucleus(&g, 1));
    }

    #[test]
    fn is_k_nucleus_requires_connectivity() {
        // Two disjoint K4s: both satisfy support but are not 4-clique
        // connected, hence not a single nucleus.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        for &(u, v) in &[(4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        assert!(!is_k_nucleus(&g, 1));
    }

    #[test]
    fn lemma3_only_k_plus_3_clique_is_k_nucleus_on_k_plus_3_vertices() {
        // Operational check of Lemma 3 for k = 1: on 4 vertices, only K4 is
        // a 1-nucleus.  Enumerate all graphs on 4 labelled vertices.
        let pairs = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let mut nucleus_count = 0;
        for mask in 0u32..(1 << 6) {
            let mut b = GraphBuilder::with_vertices(4);
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    b.add_edge(u, v, 1.0).unwrap();
                }
            }
            let g = b.build();
            if is_k_nucleus(&g, 1) {
                nucleus_count += 1;
                assert_eq!(g.num_edges(), 6, "only K4 qualifies");
            }
        }
        assert_eq!(nucleus_count, 1);
    }
}
