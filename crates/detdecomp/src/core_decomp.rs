//! Deterministic k-core decomposition.
//!
//! Vertices are peeled in non-decreasing order of their *current* degree;
//! when a vertex is removed its core number is the current peeling level,
//! and the degrees of its unprocessed neighbours decrease by one.  Since
//! the (r,s)-nucleus API redesign the peel runs on the generic deferred
//! bucket-queue engine of `ugraph::rs` at rank (1,2), with a cell-counting
//! rescore; the pre-redesign Batagelj–Zaveršnik loop is frozen in
//! [`crate::reference::core_numbers`] and the two are pinned identical by
//! the differential test suite (core numbers are canonical, so any
//! correct peel order yields the same output).

use ugraph::rs::{peel_deferred, CoreSupport, RsSupport};
use ugraph::{ConnectedComponents, EdgeSubgraph, UncertainGraph, VertexId};

/// Result of a k-core decomposition: the core number of every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    core_numbers: Vec<u32>,
}

impl CoreDecomposition {
    /// Runs the decomposition on the structure of `graph` (probabilities
    /// are ignored).
    pub fn compute(graph: &UncertainGraph) -> Self {
        let support = CoreSupport::deterministic(graph);
        let kappa: Vec<u32> = (0..support.num_elements())
            .map(|v| support.support(v as u32) as u32)
            .collect();
        let (core_numbers, _stats) = peel_deferred(&support, kappa, |v, edge_dead| {
            support
                .cells_of(v)
                .iter()
                .filter(|&&e| !edge_dead[e as usize])
                .count() as u32
        });
        CoreDecomposition { core_numbers }
    }

    /// Core number of vertex `v`.
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.core_numbers[v as usize]
    }

    /// Core numbers of all vertices, indexed by vertex id.
    pub fn core_numbers(&self) -> &[u32] {
        &self.core_numbers
    }

    /// Largest core number in the graph (the degeneracy); `0` for an empty
    /// graph.
    pub fn max_core(&self) -> u32 {
        self.core_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Vertices whose core number is at least `k`.
    pub fn vertices_in_k_core(&self, k: u32) -> Vec<VertexId> {
        self.core_numbers
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c >= k).then_some(v as VertexId))
            .collect()
    }
}

/// Extracts the maximal connected k-core subgraphs of `graph` for the
/// given `k`, as materialized subgraphs with original-vertex mappings.
pub fn k_core_subgraphs(graph: &UncertainGraph, k: u32) -> Vec<EdgeSubgraph> {
    let decomp = CoreDecomposition::compute(graph);
    let members = decomp.vertices_in_k_core(k);
    if members.is_empty() {
        return Vec::new();
    }
    let in_core: Vec<bool> = (0..graph.num_vertices() as VertexId)
        .map(|v| decomp.core_number(v) >= k)
        .collect();
    let components = ConnectedComponents::over_vertices(graph, |v| in_core[v as usize]);
    components
        .vertex_sets()
        .into_iter()
        .filter(|set| !set.is_empty())
        .map(|set| EdgeSubgraph::induced_by_vertices(graph, &set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, 1.0).unwrap();
            }
        }
        b.build()
    }

    /// Brute-force core number: iteratively remove vertices of degree < k
    /// and check membership for each k.
    fn naive_core_numbers(graph: &UncertainGraph) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut core = vec![0u32; n];
        for k in 1..=graph.max_degree() as u32 {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n as VertexId {
                    if alive[v as usize] {
                        let deg = graph
                            .neighbors(v)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count();
                        if (deg as u32) < k {
                            alive[v as usize] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::empty(0);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.max_core(), 0);
        assert!(d.core_numbers().is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = UncertainGraph::empty(3);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_numbers(), &[0, 0, 0]);
    }

    #[test]
    fn complete_graph_core_numbers() {
        let g = complete(5);
        let d = CoreDecomposition::compute(&g);
        assert!(d.core_numbers().iter().all(|&c| c == 4));
        assert_eq!(d.max_core(), 4);
    }

    #[test]
    fn path_graph_core_numbers() {
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build();
        let d = CoreDecomposition::compute(&g);
        assert!(d.core_numbers().iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_tail() {
        // K4 on {0,1,2,3} plus path 3-4-5.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_number(0), 3);
        assert_eq!(d.core_number(3), 3);
        assert_eq!(d.core_number(4), 1);
        assert_eq!(d.core_number(5), 1);
        assert_eq!(d.vertices_in_k_core(3), vec![0, 1, 2, 3]);
        assert_eq!(d.vertices_in_k_core(1).len(), 6);
    }

    #[test]
    fn matches_naive_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let edges = ugraph::generators::gnm_edges(40, 150, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            40,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let fast = CoreDecomposition::compute(&g);
        let naive = naive_core_numbers(&g);
        assert_eq!(fast.core_numbers(), naive.as_slice());
        assert_eq!(
            fast.core_numbers(),
            crate::reference::core_numbers(&g).as_slice(),
            "generic engine must match the frozen Batagelj–Zaveršnik peel"
        );
    }

    #[test]
    fn k_core_subgraph_extraction() {
        // Two disjoint K4s connected by a path through a low-degree vertex.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        for &(u, v) in &[(5, 6), (5, 7), (5, 8), (6, 7), (6, 8), (7, 8)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.add_edge(3, 4, 1.0).unwrap();
        b.add_edge(4, 5, 1.0).unwrap();
        let g = b.build();

        let cores3 = k_core_subgraphs(&g, 3);
        assert_eq!(cores3.len(), 2);
        for c in &cores3 {
            assert_eq!(c.num_vertices(), 4);
            assert_eq!(c.num_edges(), 6);
        }
        let cores1 = k_core_subgraphs(&g, 1);
        assert_eq!(cores1.len(), 1);
        assert_eq!(cores1[0].num_vertices(), 9);
        assert!(k_core_subgraphs(&g, 4).is_empty());
    }
}
