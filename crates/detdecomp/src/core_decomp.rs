//! Deterministic k-core decomposition.
//!
//! The classic Batagelj–Zaveršnik bucket-based peeling algorithm: vertices
//! are processed in non-decreasing order of their *current* degree; when a
//! vertex is removed its core number is the current peeling level, and the
//! degrees of its unprocessed neighbours decrease by one.  Runs in
//! `O(|V| + |E|)`.

use ugraph::{ConnectedComponents, EdgeSubgraph, UncertainGraph, VertexId};

/// Result of a k-core decomposition: the core number of every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    core_numbers: Vec<u32>,
}

impl CoreDecomposition {
    /// Runs the decomposition on the structure of `graph` (probabilities
    /// are ignored).
    pub fn compute(graph: &UncertainGraph) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return CoreDecomposition {
                core_numbers: Vec::new(),
            };
        }
        let mut degree: Vec<usize> = (0..n as VertexId).map(|v| graph.degree(v)).collect();
        let max_degree = *degree.iter().max().unwrap_or(&0);

        // Bucket sort vertices by degree.
        let mut bins = vec![0usize; max_degree + 2];
        for &d in &degree {
            bins[d] += 1;
        }
        let mut start = 0usize;
        for bin in bins.iter_mut() {
            let count = *bin;
            *bin = start;
            start += count;
        }
        // pos[v] is the position of v in vert; vert is sorted by degree.
        let mut pos = vec![0usize; n];
        let mut vert = vec![0 as VertexId; n];
        {
            let mut next = bins.clone();
            for v in 0..n {
                let d = degree[v];
                pos[v] = next[d];
                vert[pos[v]] = v as VertexId;
                next[d] += 1;
            }
        }

        let mut core_numbers = vec![0u32; n];
        for i in 0..n {
            let v = vert[i];
            core_numbers[v as usize] = degree[v as usize] as u32;
            for &u in graph.neighbors(v) {
                let du = degree[u as usize];
                if du > degree[v as usize] {
                    // Move u to the front of its bucket and decrement.
                    let pu = pos[u as usize];
                    let pw = bins[du];
                    let w = vert[pw];
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u as usize] = pw;
                        pos[w as usize] = pu;
                    }
                    bins[du] += 1;
                    degree[u as usize] -= 1;
                }
            }
        }
        CoreDecomposition { core_numbers }
    }

    /// Core number of vertex `v`.
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.core_numbers[v as usize]
    }

    /// Core numbers of all vertices, indexed by vertex id.
    pub fn core_numbers(&self) -> &[u32] {
        &self.core_numbers
    }

    /// Largest core number in the graph (the degeneracy); `0` for an empty
    /// graph.
    pub fn max_core(&self) -> u32 {
        self.core_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Vertices whose core number is at least `k`.
    pub fn vertices_in_k_core(&self, k: u32) -> Vec<VertexId> {
        self.core_numbers
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c >= k).then_some(v as VertexId))
            .collect()
    }
}

/// Extracts the maximal connected k-core subgraphs of `graph` for the
/// given `k`, as materialized subgraphs with original-vertex mappings.
pub fn k_core_subgraphs(graph: &UncertainGraph, k: u32) -> Vec<EdgeSubgraph> {
    let decomp = CoreDecomposition::compute(graph);
    let members = decomp.vertices_in_k_core(k);
    if members.is_empty() {
        return Vec::new();
    }
    let in_core: Vec<bool> = (0..graph.num_vertices() as VertexId)
        .map(|v| decomp.core_number(v) >= k)
        .collect();
    let components = ConnectedComponents::over_vertices(graph, |v| in_core[v as usize]);
    components
        .vertex_sets()
        .into_iter()
        .filter(|set| !set.is_empty())
        .map(|set| EdgeSubgraph::induced_by_vertices(graph, &set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, 1.0).unwrap();
            }
        }
        b.build()
    }

    /// Brute-force core number: iteratively remove vertices of degree < k
    /// and check membership for each k.
    fn naive_core_numbers(graph: &UncertainGraph) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut core = vec![0u32; n];
        for k in 1..=graph.max_degree() as u32 {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n as VertexId {
                    if alive[v as usize] {
                        let deg = graph
                            .neighbors(v)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count();
                        if (deg as u32) < k {
                            alive[v as usize] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::empty(0);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.max_core(), 0);
        assert!(d.core_numbers().is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = UncertainGraph::empty(3);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_numbers(), &[0, 0, 0]);
    }

    #[test]
    fn complete_graph_core_numbers() {
        let g = complete(5);
        let d = CoreDecomposition::compute(&g);
        assert!(d.core_numbers().iter().all(|&c| c == 4));
        assert_eq!(d.max_core(), 4);
    }

    #[test]
    fn path_graph_core_numbers() {
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build();
        let d = CoreDecomposition::compute(&g);
        assert!(d.core_numbers().iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_tail() {
        // K4 on {0,1,2,3} plus path 3-4-5.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_number(0), 3);
        assert_eq!(d.core_number(3), 3);
        assert_eq!(d.core_number(4), 1);
        assert_eq!(d.core_number(5), 1);
        assert_eq!(d.vertices_in_k_core(3), vec![0, 1, 2, 3]);
        assert_eq!(d.vertices_in_k_core(1).len(), 6);
    }

    #[test]
    fn matches_naive_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let edges = ugraph::generators::gnm_edges(40, 150, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            40,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let fast = CoreDecomposition::compute(&g);
        let naive = naive_core_numbers(&g);
        assert_eq!(fast.core_numbers(), naive.as_slice());
    }

    #[test]
    fn k_core_subgraph_extraction() {
        // Two disjoint K4s connected by a path through a low-degree vertex.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        for &(u, v) in &[(5, 6), (5, 7), (5, 8), (6, 7), (6, 8), (7, 8)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.add_edge(3, 4, 1.0).unwrap();
        b.add_edge(4, 5, 1.0).unwrap();
        let g = b.build();

        let cores3 = k_core_subgraphs(&g, 3);
        assert_eq!(cores3.len(), 2);
        for c in &cores3 {
            assert_eq!(c.num_vertices(), 4);
            assert_eq!(c.num_edges(), 6);
        }
        let cores1 = k_core_subgraphs(&g, 1);
        assert_eq!(cores1.len(), 1);
        assert_eq!(cores1[0].num_vertices(), 9);
        assert!(k_core_subgraphs(&g, 4).is_empty());
    }
}
