//! # detdecomp — deterministic dense-subgraph decompositions
//!
//! Deterministic k-core, k-truss and k-(3,4)-nucleus decompositions over
//! the structure of an [`ugraph::UncertainGraph`] (edge probabilities are
//! ignored).  These serve two roles in the reproduction of Esfahani et al.
//! (ICDE 2022):
//!
//! 1. They are the **subroutines** of the probabilistic global and
//!    weakly-global algorithms (Algorithms 2 and 3), which run a
//!    deterministic nucleus decomposition on every sampled possible world.
//! 2. They are the deterministic **baselines** that the probabilistic
//!    notions generalize: `k-(1,2)`-nucleus is the k-core and
//!    `k-(2,3)`-nucleus is the k-truss, which the integration tests verify
//!    against the dedicated implementations in [`core_decomp`] and
//!    [`truss`].
//!
//! Conventions: throughout this workspace the *support form* of the
//! definitions is used — a k-core requires degree ≥ k, a k-truss requires
//! every edge to be in ≥ k triangles, and a k-(3,4)-nucleus requires every
//! triangle to be in ≥ k 4-cliques (Definition 3 of the paper).

pub mod core_decomp;
pub mod nucleus;
pub mod reference;
pub mod truss;

pub use core_decomp::{k_core_subgraphs, CoreDecomposition};
pub use nucleus::{
    is_k_nucleus, is_k_nucleus_lenient, k_nucleus_subgraphs, triangle_nucleusness,
    NucleusDecomposition, NucleusSubgraph,
};
pub use truss::{k_truss_subgraphs, TrussDecomposition};
