//! Deterministic k-truss decomposition.
//!
//! The *support* of an edge is the number of triangles containing it.  A
//! k-truss is a maximal subgraph in which every edge has support ≥ k
//! (support convention, matching `k-(2,3)`-nucleus).  The decomposition
//! assigns every edge its *truss number*: the largest `k` such that the
//! edge belongs to a k-truss.
//!
//! The algorithm is the classic support-peeling: repeatedly remove an edge
//! of minimum current support; its truss number is that support; removing
//! it destroys the triangles through it.  Since the (r,s)-nucleus API
//! redesign the peel runs on the generic deferred bucket-queue engine of
//! `ugraph::rs` at rank (2,3), with a cell-counting rescore; the
//! pre-redesign eager heap loop is frozen in
//! [`crate::reference::truss_numbers`] and the two are pinned identical
//! by the differential test suite (truss numbers are canonical, so any
//! correct peel order yields the same output).

use ugraph::rs::{peel_deferred, RsSupport, TrussSupport};
use ugraph::{ConnectedComponents, EdgeId, EdgeSubgraph, Parallelism, UncertainGraph};

/// Result of a k-truss decomposition: the truss number of every edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrussDecomposition {
    truss_numbers: Vec<u32>,
}

impl TrussDecomposition {
    /// Runs the decomposition on the structure of `graph`.
    pub fn compute(graph: &UncertainGraph) -> Self {
        let support = TrussSupport::deterministic(graph, Parallelism::Sequential);
        let kappa: Vec<u32> = (0..support.num_elements())
            .map(|e| support.support(e as u32) as u32)
            .collect();
        let (truss_numbers, _stats) = peel_deferred(&support, kappa, |e, triangle_dead| {
            support
                .cells_of(e)
                .iter()
                .filter(|&&t| !triangle_dead[t as usize])
                .count() as u32
        });
        TrussDecomposition { truss_numbers }
    }

    /// Truss number of edge `e`.
    pub fn truss_number(&self, e: EdgeId) -> u32 {
        self.truss_numbers[e as usize]
    }

    /// Truss numbers of all edges, indexed by edge id.
    pub fn truss_numbers(&self) -> &[u32] {
        &self.truss_numbers
    }

    /// Largest truss number in the graph; `0` when triangle-free or empty.
    pub fn max_truss(&self) -> u32 {
        self.truss_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Edges whose truss number is at least `k`.
    pub fn edges_in_k_truss(&self, k: u32) -> Vec<EdgeId> {
        self.truss_numbers
            .iter()
            .enumerate()
            .filter_map(|(e, &t)| (t >= k).then_some(e as EdgeId))
            .collect()
    }
}

/// Extracts the maximal connected k-truss subgraphs of `graph` for the
/// given `k` (edges with truss number ≥ k, grouped by connectivity).
pub fn k_truss_subgraphs(graph: &UncertainGraph, k: u32) -> Vec<EdgeSubgraph> {
    let decomp = TrussDecomposition::compute(graph);
    let edges = decomp.edges_in_k_truss(k);
    if edges.is_empty() {
        return Vec::new();
    }
    // Group the qualifying edges by the connectivity of their endpoints
    // within the qualifying edge set.
    let mut in_truss = vec![false; graph.num_vertices()];
    for &e in &edges {
        let edge = graph.edge(e);
        in_truss[edge.u as usize] = true;
        in_truss[edge.v as usize] = true;
    }
    // Build a filtered adjacency restricted to qualifying edges by
    // materializing the edge-induced subgraph once, then splitting it into
    // components.
    let sub = EdgeSubgraph::induced_by_edges(graph, &edges);
    let components = ConnectedComponents::new(sub.graph());
    components
        .vertex_sets()
        .into_iter()
        .filter(|set| set.len() > 1)
        .map(|set| {
            let original: Vec<_> = set.iter().map(|&v| sub.original_vertex(v)).collect();
            // Keep only qualifying edges among those vertices.
            let comp_edges: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|&e| {
                    let edge = graph.edge(e);
                    original.contains(&edge.u) && original.contains(&edge.v)
                })
                .collect();
            EdgeSubgraph::induced_by_edges(graph, &comp_edges)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, 1.0).unwrap();
            }
        }
        b.build()
    }

    /// Brute-force truss numbers by repeated subgraph filtering.
    fn naive_truss_numbers(graph: &UncertainGraph) -> Vec<u32> {
        let m = graph.num_edges();
        let mut truss = vec![0u32; m];
        let max_possible = graph.max_degree() as u32;
        for k in 1..=max_possible {
            let mut alive: Vec<bool> = vec![true; m];
            loop {
                let mut changed = false;
                for e in 0..m {
                    if !alive[e] {
                        continue;
                    }
                    let edge = graph.edge(e as EdgeId);
                    let sup = graph
                        .common_neighbors(edge.u, edge.v)
                        .iter()
                        .filter(|&&w| {
                            let euw = graph.edge_id(edge.u, w).unwrap();
                            let evw = graph.edge_id(edge.v, w).unwrap();
                            alive[euw as usize] && alive[evw as usize]
                        })
                        .count() as u32;
                    if sup < k {
                        alive[e] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for e in 0..m {
                if alive[e] {
                    truss[e] = k;
                }
            }
        }
        truss
    }

    #[test]
    fn complete_graph_truss() {
        // In K5 every edge is in 3 triangles.
        let g = complete(5);
        let d = TrussDecomposition::compute(&g);
        assert!(d.truss_numbers().iter().all(|&t| t == 3));
        assert_eq!(d.max_truss(), 3);
    }

    #[test]
    fn triangle_free_graph_has_zero_truss() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let d = TrussDecomposition::compute(&g);
        assert!(d.truss_numbers().iter().all(|&t| t == 0));
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::empty(4);
        let d = TrussDecomposition::compute(&g);
        assert_eq!(d.max_truss(), 0);
        assert!(d.truss_numbers().is_empty());
    }

    #[test]
    fn clique_with_pendant_triangle() {
        // K4 {0,1,2,3} plus triangle {3,4,5}.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (3, 5),
        ] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let d = TrussDecomposition::compute(&g);
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            assert_eq!(
                d.truss_number(g.edge_id(u, v).unwrap()),
                2,
                "edge ({u},{v})"
            );
        }
        for &(u, v) in &[(3, 4), (4, 5), (3, 5)] {
            assert_eq!(
                d.truss_number(g.edge_id(u, v).unwrap()),
                1,
                "edge ({u},{v})"
            );
        }
        assert_eq!(d.edges_in_k_truss(2).len(), 6);
        assert_eq!(d.edges_in_k_truss(1).len(), 9);
    }

    #[test]
    fn matches_naive_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let edges = ugraph::generators::gnm_edges(30, 120, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            30,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let fast = TrussDecomposition::compute(&g);
        let naive = naive_truss_numbers(&g);
        assert_eq!(fast.truss_numbers(), naive.as_slice());
        assert_eq!(
            fast.truss_numbers(),
            crate::reference::truss_numbers(&g).as_slice(),
            "generic engine must match the frozen eager heap peel"
        );
    }

    #[test]
    fn k_truss_subgraph_extraction() {
        // Two disjoint K4s and a bridge.
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        for &(u, v) in &[(4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build();
        let trusses = k_truss_subgraphs(&g, 2);
        assert_eq!(trusses.len(), 2);
        for t in &trusses {
            assert_eq!(t.num_vertices(), 4);
            assert_eq!(t.num_edges(), 6);
        }
        assert!(k_truss_subgraphs(&g, 3).is_empty());
    }
}
