//! Frozen reference implementations of the deterministic decompositions.
//!
//! Verbatim copies of the original peeling loops of
//! [`CoreDecomposition::compute`](crate::CoreDecomposition) (bucket-based
//! Batagelj–Zaveršnik), [`TrussDecomposition::compute`](crate::TrussDecomposition)
//! and [`NucleusDecomposition::compute`](crate::NucleusDecomposition)
//! (eager heap peels) as they existed before the three types were rebuilt
//! on the generic `ugraph::rs` peeling engine.  They exist so the
//! differential test suite can pin the generic engine bit-identical to
//! the historical behaviour; they are **not** part of the supported API
//! surface.  Do not "improve" them — any edit here invalidates the
//! equivalence baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ugraph::{EdgeId, FourCliqueEnumerator, TriangleId, TriangleIndex, UncertainGraph, VertexId};

/// Core number of every vertex, by the frozen Batagelj–Zaveršnik bucket
/// peel.
pub fn core_numbers(graph: &UncertainGraph) -> Vec<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| graph.degree(v)).collect();
    let max_degree = *degree.iter().max().unwrap_or(&0);

    // Bucket sort vertices by degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for bin in bins.iter_mut() {
        let count = *bin;
        *bin = start;
        start += count;
    }
    // pos[v] is the position of v in vert; vert is sorted by degree.
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    {
        let mut next = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = next[d];
            vert[pos[v]] = v as VertexId;
            next[d] += 1;
        }
    }

    let mut core_numbers = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core_numbers[v as usize] = degree[v as usize] as u32;
        for &u in graph.neighbors(v) {
            let du = degree[u as usize];
            if du > degree[v as usize] {
                // Move u to the front of its bucket and decrement.
                let pu = pos[u as usize];
                let pw = bins[du];
                let w = vert[pw];
                if u != w {
                    vert.swap(pu, pw);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core_numbers
}

/// Truss number of every edge, by the frozen eager heap peel.
pub fn truss_numbers(graph: &UncertainGraph) -> Vec<u32> {
    let m = graph.num_edges();
    let mut support = vec![0u32; m];
    for (e, edge) in graph.edges().iter().enumerate() {
        support[e] = graph.common_neighbors(edge.u, edge.v).len() as u32;
    }

    let mut heap: BinaryHeap<Reverse<(u32, EdgeId)>> =
        (0..m).map(|e| Reverse((support[e], e as EdgeId))).collect();
    let mut removed = vec![false; m];
    let mut truss = vec![0u32; m];

    while let Some(Reverse((s, e))) = heap.pop() {
        let ei = e as usize;
        if removed[ei] || s != support[ei] {
            continue; // stale heap entry
        }
        removed[ei] = true;
        truss[ei] = s;
        let edge = graph.edge(e);
        let (u, v) = (edge.u, edge.v);
        for w in graph.common_neighbors(u, v) {
            let euw = graph.edge_id(u, w).expect("triangle edge exists");
            let evw = graph.edge_id(v, w).expect("triangle edge exists");
            if removed[euw as usize] || removed[evw as usize] {
                continue; // this triangle is already gone
            }
            for f in [euw, evw] {
                let fi = f as usize;
                if support[fi] > s {
                    support[fi] -= 1;
                    heap.push(Reverse((support[fi], f)));
                }
            }
        }
    }
    truss
}

/// Nucleusness of every triangle (ids of `TriangleIndex::build`), by the
/// frozen eager heap peel.
pub fn nucleusness(graph: &UncertainGraph) -> Vec<u32> {
    let index = TriangleIndex::build(graph);
    let clique_vertices = FourCliqueEnumerator::new(graph).into_cliques();

    let mut cliques: Vec<[TriangleId; 4]> = Vec::with_capacity(clique_vertices.len());
    let mut cliques_of: Vec<Vec<usize>> = vec![Vec::new(); index.len()];
    for (ci, clique) in clique_vertices.iter().enumerate() {
        let mut ids = [0 as TriangleId; 4];
        for (slot, t) in clique.triangles().iter().enumerate() {
            let id = index
                .id_of(t)
                .expect("every triangle of an enumerated 4-clique is indexed");
            ids[slot] = id;
            cliques_of[id as usize].push(ci);
        }
        cliques.push(ids);
    }

    let nt = index.len();
    let mut support: Vec<u32> = cliques_of.iter().map(|c| c.len() as u32).collect();
    let mut removed = vec![false; nt];
    let mut clique_dead = vec![false; cliques.len()];
    let mut nucleusness = vec![0u32; nt];

    let mut heap: BinaryHeap<Reverse<(u32, TriangleId)>> = (0..nt)
        .map(|t| Reverse((support[t], t as TriangleId)))
        .collect();

    while let Some(Reverse((s, t))) = heap.pop() {
        let ti = t as usize;
        if removed[ti] || s != support[ti] {
            continue; // stale entry
        }
        removed[ti] = true;
        nucleusness[ti] = s;
        for &ci in &cliques_of[ti] {
            if clique_dead[ci] {
                continue;
            }
            clique_dead[ci] = true;
            for &other in &cliques[ci] {
                let oi = other as usize;
                if oi == ti || removed[oi] {
                    continue;
                }
                if support[oi] > s {
                    support[oi] -= 1;
                    heap.push(Reverse((support[oi], other)));
                }
            }
        }
    }
    nucleusness
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, 1.0).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn reference_values_on_k6() {
        // K6: core 5, truss 4, nucleusness 3 everywhere.
        let g = complete(6);
        assert_eq!(core_numbers(&g), vec![5; 6]);
        assert_eq!(truss_numbers(&g), vec![4; 15]);
        assert_eq!(nucleusness(&g), vec![3; 20]);
    }
}
