//! Scripted self-test: boot a server, drive it over real TCP, compare
//! every answer bit-for-bit against direct library calls.
//!
//! This is what `experiments serve --oneshot` (and the CI `serve-smoke`
//! job) runs.  The script is fixed, so every [`crate::ServerStats`]
//! counter it
//! produces is a deterministic function of the graph and θ grid —
//! `bench-compare` gates them at tolerance 0.  The script deliberately
//! sends **no** malformed frames: `protocol_errors` must end at 0, which
//! is itself one of the gates.

use std::sync::Arc;

use nucleus::{DecompSweep, SweepConfig};
use ugraph::{apply_edge_updates, EdgeUpdate, Parallelism, UncertainGraph};

use crate::client::{obj, Client, ClientError};
use crate::json::Json;
use crate::proto::ErrorCode;
use crate::server::{Server, ServerConfig, ServerCore};
use crate::stats::StatsSnapshot;

/// Options of a oneshot run.
#[derive(Debug, Clone)]
pub struct OneshotOptions {
    /// The θ grid the scripted session pins (needs ≥ 2 points).
    pub thetas: Vec<f64>,
    /// LRU capacity of the server under test.
    pub cache_capacity: usize,
    /// Worker-pool size and support-build parallelism.
    pub parallelism: Parallelism,
}

impl Default for OneshotOptions {
    fn default() -> Self {
        OneshotOptions {
            thetas: vec![0.1, 0.3],
            cache_capacity: 32,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Outcome of a oneshot run.
#[derive(Debug, Clone)]
pub struct OneshotReport {
    /// Vertices of the served graph.
    pub vertices: usize,
    /// Edges of the served graph.
    pub edges: usize,
    /// The θ grid the script used.
    pub thetas: Vec<f64>,
    /// `true` when every wire answer matched the direct library call
    /// bit-for-bit.
    pub bit_identical: bool,
    /// Names of failed checks (empty on success).
    pub failures: Vec<String>,
    /// Final deterministic counters of the drained server.
    pub stats: StatsSnapshot,
}

impl OneshotReport {
    /// `true` when the self-test passed end to end.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

struct Checker {
    failures: Vec<String>,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool) {
        if !ok {
            self.failures.push(name.to_string());
        }
    }
}

fn scores_from_json(result: &Json) -> Option<Vec<u32>> {
    result
        .get("scores")?
        .as_array()?
        .iter()
        .map(|v| v.as_f64().map(|n| n as u32))
        .collect()
}

/// Runs the scripted session against a freshly booted server and
/// returns the verdicts plus final counters.
pub fn run_oneshot(
    graph: &UncertainGraph,
    options: &OneshotOptions,
) -> Result<OneshotReport, ClientError> {
    assert!(
        options.thetas.len() >= 2,
        "the oneshot script needs a grid of at least 2 thetas"
    );

    // Ground truth: one sweep over the same grid, straight through the
    // library.  The server must reproduce it bit-for-bit.
    let sweep_config = SweepConfig::exact(options.thetas.clone());
    let sweep = DecompSweep::compute(graph, &sweep_config).expect("oneshot grid must be valid");
    let theta0 = options.thetas[0];
    let theta1 = options.thetas[1];

    // The update leg: a deterministic batch derived from the graph
    // itself (reweight the first edge, delete the last one), with a
    // fresh sweep over the updated graph as its ground truth.
    let edges = graph.edges();
    assert!(
        !edges.is_empty(),
        "the oneshot script needs a graph with at least one edge"
    );
    let first = edges[0];
    let mut batch = vec![EdgeUpdate::Reweight {
        u: first.u,
        v: first.v,
        p: first.p * 0.5,
    }];
    if edges.len() > 1 {
        let last = edges[edges.len() - 1];
        batch.push(EdgeUpdate::Delete {
            u: last.u,
            v: last.v,
        });
    }
    let delta = apply_edge_updates(graph, &batch).expect("scripted update batch is valid");
    let post_sweep =
        DecompSweep::compute(&delta.graph, &sweep_config).expect("post-update grid must be valid");
    let truth = UpdateTruth {
        batch: &batch,
        removed: delta.removed,
        reweighted: delta.reweighted,
        edges_after: delta.graph.num_edges(),
        // Both scripted grid points are resident when the update lands
        // (unless the capacity cannot hold them), and the update touches
        // the only resident rank, so exactly those entries drop.
        expected_invalidations: options.cache_capacity.min(2),
        post_sweep: &post_sweep,
    };

    let core = ServerCore::new(
        graph.clone(),
        ServerConfig {
            cache_capacity: options.cache_capacity,
            parallelism: options.parallelism,
            ..ServerConfig::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&core)).map_err(ClientError::Io)?;
    let addr = server.local_addr().map_err(ClientError::Io)?;

    let (checker, stats) = std::thread::scope(|s| {
        let runner = s.spawn(|| server.run());
        let script = run_script(addr, &sweep, graph, &truth, theta0, theta1);
        // Belt and braces: the script's last call is `shutdown`, but if
        // it errored out early the server must still come down.
        core.request_shutdown();
        let stats = runner.join().expect("server thread must not panic");
        script.map(|checker| (checker, stats))
    })?;

    let bit_identical = !checker
        .failures
        .iter()
        .any(|f| f.starts_with("bit-identity"));
    Ok(OneshotReport {
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        thetas: options.thetas.clone(),
        bit_identical,
        failures: checker.failures,
        stats,
    })
}

/// The scripted update batch plus everything its outcome is checked
/// against: the library-side net effect and a fresh sweep over the
/// updated graph.
struct UpdateTruth<'a> {
    batch: &'a [EdgeUpdate],
    removed: usize,
    reweighted: usize,
    edges_after: usize,
    expected_invalidations: usize,
    post_sweep: &'a DecompSweep,
}

fn update_json(update: &EdgeUpdate) -> Json {
    match *update {
        EdgeUpdate::Insert { u, v, p } => obj(vec![
            ("op", Json::str("insert")),
            ("u", Json::num(u as f64)),
            ("v", Json::num(v as f64)),
            ("p", Json::num(p)),
        ]),
        EdgeUpdate::Delete { u, v } => obj(vec![
            ("op", Json::str("delete")),
            ("u", Json::num(u as f64)),
            ("v", Json::num(v as f64)),
        ]),
        EdgeUpdate::Reweight { u, v, p } => obj(vec![
            ("op", Json::str("reweight")),
            ("u", Json::num(u as f64)),
            ("v", Json::num(v as f64)),
            ("p", Json::num(p)),
        ]),
    }
}

fn run_script(
    addr: std::net::SocketAddr,
    sweep: &DecompSweep,
    graph: &UncertainGraph,
    truth: &UpdateTruth<'_>,
    theta0: f64,
    theta1: f64,
) -> Result<Checker, ClientError> {
    let mut c = Checker {
        failures: Vec::new(),
    };
    let mut client = Client::connect(addr)?;

    // 1: liveness.
    let pong = client.call("ping", Json::Null)?;
    c.check(
        "ping",
        pong.get("pong").and_then(Json::as_bool) == Some(true),
    );

    // 2: the server describes the graph it loaded.
    let info = client.call("info", Json::Null)?;
    c.check(
        "info",
        info.get("vertices").and_then(Json::as_f64) == Some(graph.num_vertices() as f64)
            && info.get("edges").and_then(Json::as_f64) == Some(graph.num_edges() as f64),
    );

    // 3: open the session (first support build).
    let opened = client.call(
        "open",
        obj(vec![
            ("rank", Json::str("nucleus")),
            (
                "thetas",
                Json::Arr(sweep.thresholds().iter().map(|&t| Json::num(t)).collect()),
            ),
        ]),
    )?;
    let session = opened
        .get("session")
        .and_then(Json::as_f64)
        .expect("open returns a session id");
    c.check(
        "open",
        opened.get("num_elements").and_then(Json::as_f64) == Some(sweep.num_elements() as f64),
    );
    let with_session = |extra: Vec<(&str, Json)>| {
        let mut members = vec![("session", Json::num(session))];
        members.extend(extra);
        obj(members)
    };

    // 4-6: two misses, then a hit; all bit-identical to the sweep.
    let wire0 = client.call(
        "scores_at",
        with_session(vec![("theta", Json::num(theta0))]),
    )?;
    c.check(
        "bit-identity: scores theta0",
        scores_from_json(&wire0).as_deref() == sweep.scores_at(theta0),
    );
    let wire0_again = client.call(
        "scores_at",
        with_session(vec![("theta", Json::num(theta0))]),
    )?;
    c.check("cache: repeat query equal", wire0 == wire0_again);
    let wire1 = client.call(
        "scores_at",
        with_session(vec![("theta", Json::num(theta1))]),
    )?;
    c.check(
        "bit-identity: scores theta1",
        scores_from_json(&wire1).as_deref() == sweep.scores_at(theta1),
    );

    // 7: max score.
    let max0 = client.call(
        "max_score_at",
        with_session(vec![("theta", Json::num(theta0))]),
    )?;
    c.check(
        "bit-identity: max_score theta0",
        max0.get("max_score").and_then(Json::as_f64) == sweep.max_score_at(theta0).map(f64::from),
    );

    // 8: a batch answered in order (a max-score and an element subset).
    let batch = client.call_batch(&[
        (
            "max_score_at",
            with_session(vec![("theta", Json::num(theta1))]),
        ),
        (
            "scores_at",
            with_session(vec![
                ("theta", Json::num(theta0)),
                ("elements", Json::Arr(vec![Json::num(0.0)])),
            ]),
        ),
    ])?;
    let batch_max_ok = matches!(
        batch[0].as_ref(),
        Ok(r) if r.get("max_score").and_then(Json::as_f64)
            == sweep.max_score_at(theta1).map(f64::from)
    );
    let expected_first = sweep.scores_at(theta0).and_then(|s| s.first().copied());
    let batch_subset_ok = matches!(
        batch[1].as_ref(),
        Ok(r) if scores_from_json(r).as_deref().and_then(|s| s.first().copied())
            == expected_first
    );
    c.check("bit-identity: batch max_score theta1", batch_max_ok);
    c.check("bit-identity: batch element subset", batch_subset_ok);

    // 9: nuclei extraction matches the library.
    let lib_nuclei = sweep
        .k_nuclei_at(graph, theta0, 1)
        .expect("nucleus sweep extracts nuclei");
    let wire_nuclei = client.call(
        "k_nuclei_at",
        with_session(vec![("theta", Json::num(theta0)), ("k", Json::num(1.0))]),
    )?;
    c.check(
        "bit-identity: k_nuclei count",
        wire_nuclei.get("count").and_then(Json::as_f64) == Some(lib_nuclei.len() as f64),
    );

    // 10-11: the ranked/denominated views answer without error.
    let top = client.call(
        "top_nuclei",
        with_session(vec![
            ("theta", Json::num(theta0)),
            ("limit", Json::num(3.0)),
        ]),
    )?;
    c.check(
        "top_nuclei",
        top.get("nuclei").and_then(Json::as_array).is_some(),
    );
    let community = client.call(
        "community",
        with_session(vec![
            ("theta", Json::num(theta0)),
            ("vertex", Json::num(0.0)),
        ]),
    )?;
    c.check(
        "community",
        community.get("found").and_then(Json::as_bool).is_some(),
    );

    // 12: typed errors, none of which may kill the connection.
    let off_grid = client
        .call(
            "scores_at",
            with_session(vec![("theta", Json::num(0.987654))]),
        )
        .expect_err("off-grid theta must fail");
    c.check("error: off-grid", off_grid.is_code(ErrorCode::OffGrid));
    let unknown_method = client
        .call("frobnicate", Json::Null)
        .expect_err("unknown method must fail");
    c.check(
        "error: unknown-method",
        unknown_method.is_code(ErrorCode::UnknownMethod),
    );
    let unknown_session = client
        .call(
            "scores_at",
            obj(vec![
                ("session", Json::num(999_999.0)),
                ("theta", Json::num(theta0)),
            ]),
        )
        .expect_err("unknown session must fail");
    c.check(
        "error: unknown-session",
        unknown_session.is_code(ErrorCode::UnknownSession),
    );
    let deadline = client
        .call_with_deadline("ping", Json::Null, Some(0))
        .expect_err("a zero deadline must fail");
    c.check(
        "error: deadline-exceeded",
        deadline.is_code(ErrorCode::DeadlineExceeded),
    );

    // 13-14: a second session shares the support (no new build) and its
    // queries hit the warm cache.
    let opened2 = client.call(
        "open",
        obj(vec![
            ("rank", Json::str("nucleus")),
            (
                "thetas",
                Json::Arr(sweep.thresholds().iter().map(|&t| Json::num(t)).collect()),
            ),
        ]),
    )?;
    let session2 = opened2
        .get("session")
        .and_then(Json::as_f64)
        .expect("open returns a session id");
    let warm = client.call(
        "scores_at",
        obj(vec![
            ("session", Json::num(session2)),
            ("theta", Json::num(theta0)),
        ]),
    )?;
    c.check("cache: second session warm", warm == wire0);

    // 15: a semantically invalid batch (deleting the same edge twice)
    // is rejected atomically with the typed update-rejected error.
    let (du, dv) = truth.batch[0].endpoints();
    let double_delete = obj(vec![
        ("op", Json::str("delete")),
        ("u", Json::num(du as f64)),
        ("v", Json::num(dv as f64)),
    ]);
    let rejected = client
        .call(
            "apply_updates",
            obj(vec![(
                "updates",
                Json::Arr(vec![double_delete.clone(), double_delete]),
            )]),
        )
        .expect_err("an invalid batch must be rejected");
    c.check(
        "error: update-rejected",
        rejected.is_code(ErrorCode::UpdateRejected),
    );

    // 16: a malformed update body (unknown op) is the typed parameter
    // error, not a rejection and not a dead process.
    let malformed = client
        .call(
            "apply_updates",
            obj(vec![(
                "updates",
                Json::Arr(vec![obj(vec![
                    ("op", Json::str("smite")),
                    ("u", Json::num(0.0)),
                    ("v", Json::num(1.0)),
                ])]),
            )]),
        )
        .expect_err("a malformed update body must fail");
    c.check(
        "error: update invalid-params",
        malformed.is_code(ErrorCode::InvalidParams),
    );

    // 17: neither refusal changed the world: θ0 still answers with the
    // pre-update scores (from the still-warm cache).
    let still = client.call(
        "scores_at",
        with_session(vec![("theta", Json::num(theta0))]),
    )?;
    c.check("update: rejection left the world untouched", still == wire0);

    // 18: the valid batch applies; its echoed net effect and cache
    // invalidation count are deterministic.
    let applied = client.call(
        "apply_updates",
        obj(vec![(
            "updates",
            Json::Arr(truth.batch.iter().map(update_json).collect()),
        )]),
    )?;
    c.check(
        "update: applied with the expected net effect",
        applied.get("applied").and_then(Json::as_bool) == Some(true)
            && applied.get("removed").and_then(Json::as_f64) == Some(truth.removed as f64)
            && applied.get("reweighted").and_then(Json::as_f64) == Some(truth.reweighted as f64)
            && applied.get("edges").and_then(Json::as_f64) == Some(truth.edges_after as f64)
            && applied.get("repaired_ranks").and_then(Json::as_f64) == Some(1.0),
    );
    c.check(
        "update: exact cache invalidation count",
        applied.get("cache_invalidations").and_then(Json::as_f64)
            == Some(truth.expected_invalidations as f64),
    );

    // 19-20: the sessions opened before the update now answer about the
    // updated graph, bit-identical to a fresh sweep over it.
    let post0 = client.call(
        "scores_at",
        with_session(vec![("theta", Json::num(theta0))]),
    )?;
    c.check(
        "bit-identity: post-update scores theta0",
        scores_from_json(&post0).as_deref() == truth.post_sweep.scores_at(theta0),
    );
    let post_max1 = client.call(
        "max_score_at",
        with_session(vec![("theta", Json::num(theta1))]),
    )?;
    c.check(
        "bit-identity: post-update max_score theta1",
        post_max1.get("max_score").and_then(Json::as_f64)
            == truth.post_sweep.max_score_at(theta1).map(f64::from),
    );

    // 21: close both sessions.
    for id in [session, session2] {
        let closed = client.call("close", obj(vec![("session", Json::num(id))]))?;
        c.check(
            "close",
            closed.get("closed").and_then(Json::as_bool) == Some(true),
        );
    }

    // 22: counters over the wire (exact values are gated via the final
    // snapshot; here just require the call to answer).
    let stats = client.call("stats", Json::Null)?;
    c.check(
        "stats: protocol errors zero",
        stats.get("protocol_errors").and_then(Json::as_f64) == Some(0.0),
    );

    // 23: graceful shutdown.
    let bye = client.call("shutdown", Json::Null)?;
    c.check(
        "shutdown",
        bye.get("shutting_down").and_then(Json::as_bool) == Some(true),
    );
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn clique(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn oneshot_passes_on_a_clique_and_counts_deterministically() {
        let graph = clique(6, 0.8);
        let report = run_oneshot(&graph, &OneshotOptions::default()).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.bit_identical);
        let stats = report.stats;
        assert_eq!(stats.protocol_errors, 0, "{stats:?}");
        assert_eq!(stats.support_builds, 1, "{stats:?}");
        assert_eq!(stats.sessions_opened, 2, "{stats:?}");
        assert_eq!(stats.sessions_closed, 2, "{stats:?}");
        // 2 pre-update misses, then the update drops both resident
        // points and the 2 post-update queries miss again.
        assert_eq!(stats.cache_misses, 4, "{stats:?}");
        assert!(stats.cache_hits >= 5, "{stats:?}");
        assert_eq!(stats.deadlines_exceeded, 1, "{stats:?}");
        assert_eq!(stats.batches, 1, "{stats:?}");
        assert_eq!(stats.request_errors, 6, "{stats:?}");
        // One applied batch repaired the single resident rank in place
        // (support_builds stays 1) and invalidated exactly the resident
        // per-θ entries.
        assert_eq!(stats.updates_applied, 1, "{stats:?}");
        assert_eq!(stats.supports_repaired, 1, "{stats:?}");
        assert_eq!(stats.cache_invalidations, 2, "{stats:?}");

        // The whole script is deterministic: a second run lands on the
        // exact same counters.
        let report2 = run_oneshot(&graph, &OneshotOptions::default()).unwrap();
        assert_eq!(report2.stats, stats);
    }
}
