//! # nd-server — a resident (r,s)-nucleus query service
//!
//! Decompositions are expensive to *build* and cheap to *query*: one
//! support structure amortizes any number of thresholds
//! ([`nucleus::DecompSweep`]), and a built [`nucleus::RankSupport`] is
//! shareable across threads through [`nucleus::DecompHandle`].  This
//! crate turns that into a process you can keep resident: load a graph
//! once, build each rank's support at most once, and answer concurrent
//! queries over a zero-dependency TCP protocol.
//!
//! ## Wire protocol
//!
//! * [`frame`] — 4-byte little-endian length prefix + UTF-8 JSON body.
//! * [`proto`] — request/response schema and the typed error codes
//!   (`off-grid`, `wrong-rank`, `unknown-session`, …).  No input, valid
//!   or hostile, kills the process.
//! * [`json`] — the workspace's hand-rolled JSON parser/serializer
//!   (also re-exported by `nd-bench` for its reports).
//!
//! ## Service
//!
//! * [`server`] — [`server::ServerCore`] (graph + lazily-built shared
//!   supports + LRU'd per-θ results + deterministic counters) and
//!   [`server::Server`] (acceptor + scoped worker pool, graceful
//!   drain-on-shutdown).
//! * [`lru`], [`stats`] — the cache and the CI-gated counters.
//! * [`client`] — a blocking client used by tests and the
//!   `experiments serve-client` subcommand.
//! * [`oneshot`] — the scripted self-test behind
//!   `experiments serve --oneshot` and the CI `serve-smoke` gate:
//!   every wire answer is compared bit-for-bit against the direct
//!   library call.

pub mod client;
pub mod frame;
pub mod json;
pub mod lru;
pub mod oneshot;
pub mod proto;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError};
pub use frame::{read_frame, write_frame, FrameError, ReadOutcome, MAX_FRAME_LEN};
pub use json::{Json, JsonError};
pub use oneshot::{run_oneshot, OneshotOptions, OneshotReport};
pub use proto::{ErrorCode, RequestError};
pub use server::{Server, ServerConfig, ServerCore};
pub use stats::{ServerStats, StatsSnapshot};
