//! A blocking client for the nd-server wire protocol.
//!
//! Thin by design: one frame out, one frame in, JSON on both sides.
//! Server-side request failures surface as [`ClientError::Server`] with
//! the typed code preserved, so callers (tests, the `serve-client`
//! subcommand) can assert on exact error codes.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{read_frame, write_frame, FrameError, ReadOutcome};
use crate::json::{Json, JsonError};
use crate::proto::ErrorCode;

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's frame was malformed or the connection died mid-frame.
    Frame(FrameError),
    /// The server's response body was not valid JSON.
    Json(JsonError),
    /// The response was JSON but not a response object.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// The wire error code (e.g. `off-grid`).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Json(e) => write!(f, "response parse error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// The server-side error code, when this is a typed server error.
    pub fn server_code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// `true` when the server answered with exactly `code`.
    pub fn is_code(&self, code: ErrorCode) -> bool {
        self.server_code() == Some(code.as_str())
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends raw bytes as one frame and reads one response frame —
    /// the hook malformed-input tests use to speak broken JSON.
    pub fn call_raw(&mut self, body: &[u8]) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, body)?;
        self.read_response()
    }

    /// Reads and parses one response frame.
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        match read_frame(&mut self.stream)? {
            ReadOutcome::Frame(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
                Json::parse(&text).map_err(ClientError::Json)
            }
            ReadOutcome::Closed | ReadOutcome::Aborted => Err(ClientError::Protocol(
                "connection closed before a response arrived".to_string(),
            )),
        }
    }

    /// Raw access to the underlying stream (for writing deliberately
    /// broken frames in tests).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn request_body(id: u64, method: &str, params: &Json, deadline_ms: Option<u64>) -> Json {
        let mut members = vec![
            ("id".to_string(), Json::num(id as f64)),
            ("method".to_string(), Json::str(method)),
        ];
        if !matches!(params, Json::Null) {
            members.push(("params".to_string(), params.clone()));
        }
        if let Some(ms) = deadline_ms {
            members.push(("deadline_ms".to_string(), Json::num(ms as f64)));
        }
        Json::Obj(members)
    }

    fn unwrap_response(response: &Json, expect_id: u64) -> Result<Json, ClientError> {
        let id = response.get("id").and_then(Json::as_f64);
        if id != Some(expect_id as f64) {
            return Err(ClientError::Protocol(format!(
                "response id {id:?} does not match request id {expect_id}"
            )));
        }
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => response
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("missing 'result'".to_string())),
            Some(false) => {
                let code = response
                    .path(&["error", "code"])
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let message = response
                    .path(&["error", "message"])
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Err(ClientError::Server { code, message })
            }
            None => Err(ClientError::Protocol("missing 'ok'".to_string())),
        }
    }

    /// One call; returns the `result` member or the typed server error.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, ClientError> {
        self.call_with_deadline(method, params, None)
    }

    /// One call with a server-side deadline.
    pub fn call_with_deadline(
        &mut self,
        method: &str,
        params: Json,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        let body = Self::request_body(id, method, &params, deadline_ms).to_json_string();
        let response = self.call_raw(body.as_bytes())?;
        Self::unwrap_response(&response, id)
    }

    /// An ordered batch; per-call outcomes come back in request order.
    #[allow(clippy::type_complexity)]
    pub fn call_batch(
        &mut self,
        calls: &[(&str, Json)],
    ) -> Result<Vec<Result<Json, ClientError>>, ClientError> {
        let ids: Vec<u64> = calls.iter().map(|_| self.fresh_id()).collect();
        let body = Json::Obj(vec![(
            "batch".to_string(),
            Json::Arr(
                calls
                    .iter()
                    .zip(&ids)
                    .map(|((method, params), &id)| Self::request_body(id, method, params, None))
                    .collect(),
            ),
        )])
        .to_json_string();
        let response = self.call_raw(body.as_bytes())?;
        let items = response
            .get("batch")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'batch' in response".to_string()))?;
        if items.len() != ids.len() {
            return Err(ClientError::Protocol(format!(
                "batch answered {} of {} calls",
                items.len(),
                ids.len()
            )));
        }
        Ok(items
            .iter()
            .zip(&ids)
            .map(|(item, &id)| Self::unwrap_response(item, id))
            .collect())
    }
}

/// Builds a `{key: value}` JSON object — terse param construction for
/// callers.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}
