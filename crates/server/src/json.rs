//! Minimal JSON reader/writer shared by the query server and the bench
//! harness.
//!
//! The workspace is offline-only (no serde); the bench harness *writes*
//! JSON with `format!` and, since `bench-compare`, also needs to *read*
//! its own `bench-parallel/*` files back, and the nd-server wire
//! protocol carries JSON bodies in both directions.  This is a small
//! recursive-descent parser covering exactly the JSON those components
//! emit plus the standard grammar (escapes, exponents, nesting) so
//! hand-edited baselines parse too.  Objects preserve key order in a
//! `Vec` — iteration is deterministic, duplicate keys resolve to the
//! first occurrence via [`Json::get`].  [`Json::to_json_string`] is the
//! matching compact serializer (escaped strings, `null` for non-finite
//! numbers).

use std::fmt;

/// Maximum container nesting depth the parser accepts.  The parser is
/// recursive descent, so unbounded nesting would translate attacker
/// -controlled input (a frame of `[[[[…`) into unbounded stack growth;
/// deeper documents fail with a regular [`JsonError`] instead.  Real
/// protocol bodies nest fewer than ten levels.
pub const MAX_NESTING_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; benchmark counters stay well inside `f64`'s exact
    /// integer range.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first occurrence); `None` on missing
    /// keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested member lookup: `report.path(&["source", "ingest",
    /// "reload_speedup"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value (convenience constructor).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Compact serialization.  Non-finite numbers (which JSON cannot
    /// represent) become `null`; strings are escaped; object key order
    /// is preserved.  `Json::parse(v.to_json_string())` round-trips
    /// every finite value.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, bounded by
    /// [`MAX_NESTING_DEPTH`] to keep hostile input from overflowing the
    /// stack.
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    /// Bumps the nesting depth on entering a container; errors past
    /// [`MAX_NESTING_DEPTH`].  A parse error aborts the whole document,
    /// so the counter only needs rewinding on the success paths.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            Err(self.error(format!("nesting deeper than {MAX_NESTING_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in the harness's
                            // own output; map them to the replacement
                            // character instead of failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse("\"hi\\n\\\"there\\\" \\u0041\"").unwrap(),
            Json::Str("hi\n\"there\" A".to_string())
        );
    }

    #[test]
    fn parses_nested_structures_and_paths() {
        let doc = Json::parse(
            r#"{ "schema": "bench-parallel/v3",
                 "counts": { "triangles": 20821, "four_cliques": 165 },
                 "runs": [ { "threads": 2, "speedup": 1.01 }, { "threads": 4 } ],
                 "flags": [true, false, null] }"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench-parallel/v3")
        );
        assert_eq!(
            doc.path(&["counts", "triangles"]).and_then(Json::as_f64),
            Some(20821.0)
        );
        let runs = doc.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("speedup").and_then(Json::as_f64), Some(1.01));
        assert_eq!(runs[1].get("speedup"), None);
        assert_eq!(doc.path(&["counts", "missing"]), None);
        assert_eq!(
            doc.path(&["runs", "threads"]),
            None,
            "array is not an object"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1} garbage",
            "\"bad \\q escape\"",
            "\"trunc \\u00",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_is_bounded_not_stack_overflowing() {
        // At the limit: parses fine.
        let deep_ok = format!(
            "{}42{}",
            "[".repeat(MAX_NESTING_DEPTH),
            "]".repeat(MAX_NESTING_DEPTH)
        );
        assert!(Json::parse(&deep_ok).is_ok());
        // One past the limit: a regular parse error.
        let deep_bad = format!(
            "{}42{}",
            "[".repeat(MAX_NESTING_DEPTH + 1),
            "]".repeat(MAX_NESTING_DEPTH + 1)
        );
        let e = Json::parse(&deep_bad).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // The hostile case from the wire: ~50 KB of '[' must error, not
        // recurse 50 000 frames deep and abort the process.
        let bomb = "[".repeat(50_000);
        assert!(Json::parse(&bomb).is_err());
        // Mixed containers count toward the same bound.
        let mixed = "{\"a\":[".repeat(80) + "0" + &"]}".repeat(80);
        let e = Json::parse(&mixed).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // Depth is nesting, not sibling count: wide documents are fine.
        let wide = format!("[{}]", vec!["[0]"; 5_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn accepts_empty_containers_and_duplicate_keys() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        let dup = Json::parse("{\"k\": 1, \"k\": 2}").unwrap();
        assert_eq!(dup.get("k").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn serializer_round_trips_through_the_parser() {
        let doc = Json::Obj(vec![
            ("id".to_string(), Json::num(7u32)),
            ("ok".to_string(), Json::Bool(true)),
            (
                "text".to_string(),
                Json::str("quote \" slash \\ nl \n tab \t ctl \u{1} unicode ∅"),
            ),
            (
                "grid".to_string(),
                Json::Arr(vec![Json::num(0.1), Json::num(0.5), Json::Null]),
            ),
            ("nan".to_string(), Json::Num(f64::NAN)),
        ]);
        let text = doc.to_json_string();
        let back = Json::parse(&text).unwrap();
        // NaN serializes as null; everything else round-trips exactly.
        assert_eq!(back.get("nan"), Some(&Json::Null));
        assert_eq!(back.get("id"), doc.get("id"));
        assert_eq!(back.get("ok"), doc.get("ok"));
        assert_eq!(back.get("text"), doc.get("text"));
        assert_eq!(back.get("grid"), doc.get("grid"));
    }

    #[test]
    fn serializer_preserves_f64_thresholds_exactly() {
        for theta in [0.05f64, 0.1, 1.0 / 3.0, 0.7000000000000001, 1.0] {
            let text = Json::num(theta).to_json_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(theta));
        }
    }

    #[test]
    fn round_trips_the_committed_baseline_shape() {
        // The exact shape `experiments parbench` writes must parse.
        let sample = r#"{
  "schema": "bench-parallel/v3",
  "source": { "kind": "generated", "generator": "gnm-uniform", "requested_vertices": 2000, "requested_edges": 50000, "seed": 42 },
  "baseline": { "threads": 1, "total_s": 0.136748, "speedup": 1.000, "deadline_exceeded": false },
  "runs": [
    { "threads": 2, "total_s": 0.135611, "deadline_exceeded": false }
  ]
}
"#;
        let doc = Json::parse(sample).unwrap();
        assert_eq!(
            doc.path(&["source", "seed"]).and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            doc.path(&["baseline", "deadline_exceeded"])
                .and_then(Json::as_bool),
            Some(false)
        );
    }
}
