//! Deterministic server counters.
//!
//! Same philosophy as the peeling engine's `PeelStats`: every counter is
//! a deterministic function of the request sequence the server served,
//! so CI can gate them at tolerance 0 (`bench-serve/v1`).  Wall-clock
//! timings deliberately live elsewhere — nothing here varies run to run.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Monotone counters maintained by a running server.  All methods are
/// lock-free and safe to call from any worker thread.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Individual calls served (batch members count individually).
    pub requests: AtomicU64,
    /// Batch envelopes served.
    pub batches: AtomicU64,
    /// Frames that failed before dispatch: framing violations or
    /// unparseable JSON.  The CI smoke gate pins this to 0.
    pub protocol_errors: AtomicU64,
    /// Well-formed calls answered with a typed error (unknown method,
    /// wrong rank, off-grid threshold, …).
    pub request_errors: AtomicU64,
    /// Per-threshold points served from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Per-threshold points computed because the cache had no entry.
    pub cache_misses: AtomicU64,
    /// Cache entries displaced by the LRU policy.
    pub cache_evictions: AtomicU64,
    /// Rank supports built since startup — the resident-service analogue
    /// of the sweep engine's `support_builds`; one per distinct rank
    /// ever queried, no matter how many sessions or connections.
    pub support_builds: AtomicU64,
    /// Sessions opened.
    pub sessions_opened: AtomicU64,
    /// Sessions explicitly closed.
    pub sessions_closed: AtomicU64,
    /// Requests that hit their `deadline_ms` before completing.
    pub deadlines_exceeded: AtomicU64,
    /// `apply_updates` batches accepted and applied (rejected batches
    /// count as `request_errors`, never here).
    pub updates_applied: AtomicU64,
    /// Resident rank supports repaired incrementally by an update batch
    /// — the streaming analogue of `support_builds`; one per resident
    /// rank per applied batch, never a rebuild.
    pub supports_repaired: AtomicU64,
    /// Cached per-threshold points dropped because an update changed
    /// their rank's support.  A rank an update provably did not touch
    /// keeps its cached points, so this counts *exactly* the affected
    /// entries.
    pub cache_invalidations: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`ServerStats::requests`].
    pub requests: u64,
    /// See [`ServerStats::batches`].
    pub batches: u64,
    /// See [`ServerStats::protocol_errors`].
    pub protocol_errors: u64,
    /// See [`ServerStats::request_errors`].
    pub request_errors: u64,
    /// See [`ServerStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`ServerStats::cache_misses`].
    pub cache_misses: u64,
    /// See [`ServerStats::cache_evictions`].
    pub cache_evictions: u64,
    /// See [`ServerStats::support_builds`].
    pub support_builds: u64,
    /// See [`ServerStats::sessions_opened`].
    pub sessions_opened: u64,
    /// See [`ServerStats::sessions_closed`].
    pub sessions_closed: u64,
    /// See [`ServerStats::deadlines_exceeded`].
    pub deadlines_exceeded: u64,
    /// See [`ServerStats::updates_applied`].
    pub updates_applied: u64,
    /// See [`ServerStats::supports_repaired`].
    pub supports_repaired: u64,
    /// See [`ServerStats::cache_invalidations`].
    pub cache_invalidations: u64,
}

impl ServerStats {
    /// Increments `counter` by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            request_errors: self.request_errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            support_builds: self.support_builds.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            supports_repaired: self.supports_repaired.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// The counter fields as (name, value) pairs, in wire order — one
    /// place to keep the JSON shape and the gate list in sync.
    pub fn fields(&self) -> [(&'static str, u64); 14] {
        [
            ("requests", self.requests),
            ("batches", self.batches),
            ("protocol_errors", self.protocol_errors),
            ("request_errors", self.request_errors),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("support_builds", self.support_builds),
            ("sessions_opened", self.sessions_opened),
            ("sessions_closed", self.sessions_closed),
            ("deadlines_exceeded", self.deadlines_exceeded),
            ("updates_applied", self.updates_applied),
            ("supports_repaired", self.supports_repaired),
            ("cache_invalidations", self.cache_invalidations),
        ]
    }

    /// The snapshot as a JSON object (counter order fixed).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.fields()
                .into_iter()
                .map(|(name, value)| (name.to_string(), Json::num(value as f64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_every_counter() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.requests);
        ServerStats::bump(&stats.requests);
        ServerStats::bump(&stats.cache_hits);
        ServerStats::bump(&stats.support_builds);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.support_builds, 1);
        assert_eq!(snap.protocol_errors, 0);
    }

    #[test]
    fn json_shape_matches_the_field_list() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.batches);
        let snap = stats.snapshot();
        let json = snap.to_json();
        for (name, value) in snap.fields() {
            assert_eq!(
                json.get(name).and_then(Json::as_f64),
                Some(value as f64),
                "{name}"
            );
        }
        match json {
            Json::Obj(members) => assert_eq!(members.len(), snap.fields().len()),
            other => panic!("expected object, got {other:?}"),
        }
    }
}
