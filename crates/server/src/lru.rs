//! A small deterministic LRU cache.
//!
//! The server keeps materialized per-threshold decomposition points in a
//! bounded cache so repeated queries against the same (rank, method, θ)
//! skip the peel entirely.  Recency is tracked with a monotone stamp per
//! entry; eviction scans for the minimum stamp.  Eviction is O(capacity)
//! — capacities are tens of entries, and the O(1) bookkeeping of an
//! intrusive list is not worth its complexity here.  Behaviour is fully
//! deterministic: the same operation sequence always hits, misses and
//! evicts identically, which is what lets CI gate the counters exactly.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map with least-recently-used eviction.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    clock: u64,
    entries: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (`capacity`
    /// 0 caches nothing: every insert immediately evicts the entry).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = clock;
                Some(&*value)
            }
            None => None,
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry when the
    /// cache is full.  Returns the number of entries evicted (0 or 1;
    /// also 1 when `capacity` is 0 and the fresh entry itself is
    /// dropped).
    pub fn insert(&mut self, key: K, value: V) -> usize {
        self.clock += 1;
        if self.capacity == 0 {
            return 1;
        }
        let mut evicted = 0;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                evicted = 1;
            }
        }
        self.entries.insert(key, (value, self.clock));
        evicted
    }

    /// Removes every entry whose key fails `keep`, returning how many
    /// entries were removed.  Recency stamps of the survivors are
    /// untouched, so the eviction order among them is preserved.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|key, _| keep(key));
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_the_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        assert_eq!(cache.insert("a", 1), 0);
        assert_eq!(cache.insert("b", 2), 0);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.insert("c", 3), 1);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.insert("a", 10), 0);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.get(&"b"), Some(&2));
    }

    #[test]
    fn capacity_one_thrashing_is_deterministic() {
        let mut cache = LruCache::new(1);
        let mut evictions = 0;
        let mut hits = 0;
        for key in ["x", "y", "x", "y"] {
            if cache.get(&key).is_some() {
                hits += 1;
            } else {
                evictions += cache.insert(key, ());
            }
        }
        assert_eq!(hits, 0);
        assert_eq!(evictions, 3);
    }

    #[test]
    fn retain_removes_exactly_the_failing_keys_and_keeps_recency() {
        let mut cache = LruCache::new(3);
        cache.insert(("a", 1), ());
        cache.insert(("b", 1), ());
        cache.insert(("a", 2), ());
        assert_eq!(cache.retain(|(name, _)| *name != "a"), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&("b", 1)), Some(&()));
        assert_eq!(cache.get(&("a", 1)), None);
        assert_eq!(cache.retain(|_| true), 0);
    }

    #[test]
    fn capacity_zero_caches_nothing() {
        let mut cache = LruCache::new(0);
        assert_eq!(cache.insert("a", 1), 1);
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.is_empty());
    }
}
