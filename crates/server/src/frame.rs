//! Length-prefixed wire framing.
//!
//! Every message on an nd-server connection — request or response — is
//! one *frame*: a 4-byte little-endian `u32` byte length followed by
//! exactly that many bytes of UTF-8 JSON.  The prefix makes message
//! boundaries explicit on a byte stream without requiring incremental
//! JSON parsing, and lets the server reject absurd allocations up front
//! ([`MAX_FRAME_LEN`]).
//!
//! Reading distinguishes three non-success outcomes a server must treat
//! differently:
//!
//! * clean EOF *between* frames ([`ReadOutcome::Closed`]) — the peer hung
//!   up politely; not an error,
//! * EOF *inside* a frame ([`FrameError::Truncated`]) — a protocol error,
//! * a declared length above the cap ([`FrameError::Oversized`]) — a
//!   protocol error detected before any allocation.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame body, in bytes.  Large enough for any response
/// the server produces (score vectors of millions of elements), small
/// enough to refuse a hostile 4 GiB allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended inside the length prefix or the body.
    Truncated {
        /// How many of the expected bytes arrived.
        got: usize,
        /// How many bytes were expected.
        expected: usize,
    },
    /// The declared body length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        declared: u32,
    },
    /// An I/O error other than EOF.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { got, expected } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            FrameError::Oversized { declared } => write!(
                f,
                "oversized frame: declared length {declared} exceeds the {MAX_FRAME_LEN}-byte cap"
            ),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Result of one [`read_frame`] / [`read_frame_while`] call.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// `keep_waiting` returned `false` while blocked between frames
    /// (graceful-shutdown path); no frame bytes were consumed.
    Aborted,
}

/// Writes one frame (length prefix + body).
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body exceeds u32::MAX"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, blocking until it is complete.
pub fn read_frame<R: Read>(r: &mut R) -> Result<ReadOutcome, FrameError> {
    read_frame_while(r, || true, None)
}

/// Reads one frame, re-checking `keep_waiting` whenever the underlying
/// reader times out (`WouldBlock` / `TimedOut`) — the mechanism that
/// lets a server thread block on a socket with a short read timeout yet
/// still notice a shutdown flag.  Partial bytes are preserved across
/// timeouts, so a slow-but-live writer is never mistaken for a
/// truncated frame; but once `keep_waiting` turns false a stalled
/// partial frame is reported as [`FrameError::Truncated`] rather than
/// waited on forever — a peer that sends two prefix bytes and then goes
/// silent must not be able to pin a worker past a shutdown request.
///
/// `stall_patience` additionally bounds how many *consecutive* timeouts
/// are tolerated mid-frame (any byte of the prefix received, or the
/// whole prefix in and the body pending) even while `keep_waiting`
/// holds; the count resets whenever bytes arrive.  Exceeding it reports
/// the frame truncated, so a peer that starts a frame and then goes
/// silent cannot pin a worker indefinitely — which matters when the
/// worker pool has a single thread and the shutdown request itself
/// would need that worker.  Waiting *between* frames (no prefix byte
/// yet) is never bounded: idle sessions are legitimate.  `None` waits
/// mid-frame as long as `keep_waiting` allows.
pub fn read_frame_while<R: Read>(
    r: &mut R,
    keep_waiting: impl Fn() -> bool,
    stall_patience: Option<u32>,
) -> Result<ReadOutcome, FrameError> {
    let mut prefix = [0u8; 4];
    match fill(r, &mut prefix, &keep_waiting, stall_patience, false)? {
        Fill::Complete => {}
        Fill::CleanEof => return Ok(ReadOutcome::Closed),
        Fill::Aborted => return Ok(ReadOutcome::Aborted),
        Fill::TruncatedAt(got) => return Err(FrameError::Truncated { got, expected: 4 }),
    }
    let declared = u32::from_le_bytes(prefix);
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { declared });
    }
    let expected = declared as usize;
    let mut body = vec![0u8; expected];
    // `committed`: the prefix is in, so even 0 body bytes is mid-frame.
    match fill(r, &mut body, &keep_waiting, stall_patience, true)? {
        Fill::Complete => Ok(ReadOutcome::Frame(body)),
        // Once the prefix is in, the peer committed to a body: EOF and
        // shutdown both leave the frame unfinished.
        Fill::CleanEof => Err(FrameError::Truncated { got: 0, expected }),
        Fill::Aborted => Err(FrameError::Truncated { got: 0, expected }),
        Fill::TruncatedAt(got) => Err(FrameError::Truncated { got, expected }),
    }
}

enum Fill {
    Complete,
    /// EOF before the first byte.
    CleanEof,
    /// EOF — or `keep_waiting` saying stop — after `0 < n < len` bytes.
    TruncatedAt(usize),
    /// `keep_waiting` said stop before the first byte.
    Aborted,
}

/// `committed` marks a fill that is mid-frame even at 0 bytes (the body
/// after a complete prefix); it controls whether `stall_patience`
/// applies from the first timeout and whether giving up is a truncation
/// rather than a clean abort.
fn fill<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    keep_waiting: &impl Fn() -> bool,
    stall_patience: Option<u32>,
    committed: bool,
) -> Result<Fill, FrameError> {
    let mut filled = 0;
    let mut stalled = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 && !committed {
                    Fill::CleanEof
                } else {
                    Fill::TruncatedAt(filled)
                });
            }
            Ok(n) => {
                filled += n;
                stalled = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A mid-buffer timeout just means the peer is slow —
                // keep reading while `keep_waiting` holds.  Once it
                // turns false, an untouched frame is a clean abort (no
                // frame bytes consumed) while a partial one is a
                // truncation: the peer committed to bytes it never
                // delivered, and waiting longer would stall the drain.
                if !keep_waiting() {
                    return Ok(if filled == 0 && !committed {
                        Fill::Aborted
                    } else {
                        Fill::TruncatedAt(filled)
                    });
                }
                // Mid-frame, a silent peer also runs out of patience:
                // without this bound a partial frame would pin the
                // worker until shutdown.
                if committed || filled > 0 {
                    stalled += 1;
                    if stall_patience.is_some_and(|max| stalled >= max) {
                        return Ok(Fill::TruncatedAt(filled));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Fill::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, body).unwrap();
        out
    }

    #[test]
    fn round_trips_bodies() {
        for body in [&b""[..], b"x", b"{\"id\":1}", &[0u8; 100_000]] {
            let bytes = framed(body);
            assert_eq!(bytes.len(), 4 + body.len());
            match read_frame(&mut Cursor::new(bytes)).unwrap() {
                ReadOutcome::Frame(read) => assert_eq!(read, body),
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_eof_between_frames_is_closed() {
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn truncation_is_reported_with_positions() {
        // Cut inside the prefix.
        let e = read_frame(&mut Cursor::new(vec![5u8, 0])).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 2,
                    expected: 4
                }
            ),
            "{e}"
        );
        // Cut inside the body.
        let mut bytes = framed(b"hello");
        bytes.truncate(4 + 2);
        let e = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 2,
                    expected: 5
                }
            ),
            "{e}"
        );
        // Prefix present, body absent entirely.
        let e = read_frame(&mut Cursor::new(3u32.to_le_bytes().to_vec())).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 0,
                    expected: 3
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocating() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"ignored");
        let e = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(matches!(e, FrameError::Oversized { .. }), "{e}");
        assert!(e.to_string().contains("oversized"));
    }

    /// A reader that yields `WouldBlock` between every real chunk,
    /// emulating a socket with a read timeout.  With `stall_when_empty`
    /// it keeps timing out once the chunks run dry instead of signalling
    /// EOF — a peer that went silent without hanging up.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
        timeouts_first: bool,
        stall_when_empty: bool,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.timeouts_first {
                self.timeouts_first = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            match self.chunks.first_mut() {
                None if self.stall_when_empty => {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
                }
                None => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                    }
                    self.timeouts_first = true;
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn timeouts_between_chunks_do_not_truncate() {
        let bytes = framed(b"slow body");
        let mut r = Chunked {
            chunks: bytes.chunks(3).map(<[u8]>::to_vec).collect(),
            timeouts_first: true,
            stall_when_empty: false,
        };
        match read_frame_while(&mut r, || true, None).unwrap() {
            ReadOutcome::Frame(read) => assert_eq!(read, b"slow body"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn abort_only_fires_between_frames() {
        // Nothing buffered: the flag aborts the wait.
        let mut idle = Chunked {
            chunks: vec![],
            timeouts_first: true,
            stall_when_empty: false,
        };
        assert!(matches!(
            read_frame_while(&mut idle, || false, None).unwrap(),
            ReadOutcome::Aborted
        ));
    }

    /// `keep_waiting` that stays patient for `n` timeouts, then stops —
    /// a shutdown flag flipping partway through a read.
    fn patience(n: u32) -> impl Fn() -> bool {
        let left = std::cell::Cell::new(n);
        move || {
            let remaining = left.get();
            left.set(remaining.saturating_sub(1));
            remaining > 0
        }
    }

    #[test]
    fn stalled_partial_prefix_truncates_once_waiting_stops() {
        // Two prefix bytes arrive, then the peer goes silent without
        // hanging up.  Once `keep_waiting` turns false the read must
        // report truncation instead of looping on timeouts forever.
        let mut r = Chunked {
            chunks: vec![vec![5, 0]],
            timeouts_first: false,
            stall_when_empty: true,
        };
        let e = read_frame_while(&mut r, patience(3), None).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 2,
                    expected: 4
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn stall_patience_bounds_a_mid_frame_stall_even_while_waiting_holds() {
        // Partial prefix, then silence, `keep_waiting` forever true: the
        // patience bound alone must end the read as a truncation.
        let mut r = Chunked {
            chunks: vec![vec![5, 0]],
            timeouts_first: false,
            stall_when_empty: true,
        };
        let e = read_frame_while(&mut r, || true, Some(4)).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 2,
                    expected: 4
                }
            ),
            "{e}"
        );
        // Prefix complete, body never arrives: bounded too (mid-frame
        // even though the body buffer holds 0 bytes).
        let mut r = Chunked {
            chunks: vec![3u32.to_le_bytes().to_vec()],
            timeouts_first: false,
            stall_when_empty: true,
        };
        let e = read_frame_while(&mut r, || true, Some(4)).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 0,
                    expected: 3
                }
            ),
            "{e}"
        );
        // Between frames (no prefix byte yet) the bound does not apply:
        // the idle timeout before the prefix is not counted, so with a
        // patience of 2 only the single mid-frame timeout (between the
        // prefix and body reads of the chunked reader) is — if idling
        // counted, the total of 2 would truncate this frame.
        let bytes = framed(b"late");
        let mut r = Chunked {
            chunks: vec![bytes],
            timeouts_first: true,
            stall_when_empty: false,
        };
        match read_frame_while(&mut r, || true, Some(2)).unwrap() {
            ReadOutcome::Frame(read) => assert_eq!(read, b"late"),
            other => panic!("expected frame, got {other:?}"),
        }
        // Progress resets the count: 3-byte chunks with a timeout before
        // each stay under a patience of 2 all the way to completion.
        let bytes = framed(b"slow but steady");
        let mut r = Chunked {
            chunks: bytes.chunks(3).map(<[u8]>::to_vec).collect(),
            timeouts_first: true,
            stall_when_empty: false,
        };
        match read_frame_while(&mut r, || true, Some(2)).unwrap() {
            ReadOutcome::Frame(read) => assert_eq!(read, b"slow but steady"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn stalled_partial_body_truncates_once_waiting_stops() {
        let mut bytes = framed(b"hello");
        bytes.truncate(4 + 2); // full prefix, then 2 of 5 body bytes
        let mut r = Chunked {
            chunks: vec![bytes],
            timeouts_first: false,
            stall_when_empty: true,
        };
        let e = read_frame_while(&mut r, patience(3), None).unwrap_err();
        assert!(
            matches!(
                e,
                FrameError::Truncated {
                    got: 2,
                    expected: 5
                }
            ),
            "{e}"
        );
    }
}
