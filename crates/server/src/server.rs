//! The resident query service.
//!
//! [`ServerCore`] owns a *world*: the loaded graph plus one lazily-built
//! [`RankSupport`] per rank ever queried, each carrying a generation
//! counter (`support_builds` counts exactly one build per rank for the
//! life of the process).  Around the world sit an LRU cache of
//! materialized per-threshold decomposition points (keyed by rank,
//! method, θ *and* generation), the open sessions and the deterministic
//! [`ServerStats`].  The `apply_updates` method mutates the world in
//! one atomic transition: the graph is swapped, every resident support
//! is repaired incrementally (never rebuilt), and exactly the cache
//! entries whose rank the batch actually changed are invalidated.
//! Queries resolve graph, support and generation under a single lock
//! acquisition, so no request can ever observe a half-applied update.
//! It is transport-independent: [`ServerCore::handle_body`] maps one
//! request frame body to one response body, so tests can drive it
//! without sockets.
//!
//! [`Server`] is the TCP layer: a non-blocking acceptor plus a worker
//! pool (sized by the workspace-wide [`Parallelism`] knob) under
//! [`std::thread::scope`].  Workers block on sockets with a short read
//! timeout so a shutdown request drains naturally: every in-flight frame
//! is answered, then connections close, the scope joins and
//! [`Server::run`] returns.  No request — malformed framing included —
//! ever panics the process.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nucleus::{
    ApproxThresholds, DecompConfig, DecompHandle, Rank, RankSupport, ScoreMethod, SweepConfig,
};
use ugraph::{apply_edge_updates, EdgeUpdate, Parallelism, UncertainGraph};

use crate::frame::{read_frame_while, write_frame, FrameError, ReadOutcome};
use crate::json::Json;
use crate::proto::{
    err_response, ok_response, parse_request, require_f64, require_u64, Call, ErrorCode, Request,
    RequestError,
};
use crate::stats::{ServerStats, StatsSnapshot};

/// Tunables of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Capacity of the per-threshold result cache (entries).
    pub cache_capacity: usize,
    /// Sizes the connection worker pool and the support builds.
    /// Per-point peels run sequentially — concurrency comes from serving
    /// connections in parallel, and results are bit-identical either
    /// way.
    pub parallelism: Parallelism,
    /// Socket read timeout; bounds how long a drain can lag behind a
    /// shutdown request.
    pub read_timeout: Duration,
    /// Upper bound on how long a peer may stall *mid-frame* (a partial
    /// length prefix, or a prefix whose body never arrives) before the
    /// connection is dropped as a protocol error.  Keeps a silent or
    /// hostile peer from pinning a worker indefinitely — with a
    /// single-worker pool that worker is also the one a wire `shutdown`
    /// request would need.  Idle time *between* frames is not limited;
    /// sessions may be long-lived.
    pub frame_stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_capacity: 32,
            parallelism: Parallelism::Auto,
            read_timeout: Duration::from_millis(25),
            frame_stall_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// `frame_stall_timeout` expressed as a count of consecutive
    /// `read_timeout` expiries (at least 1).
    fn stall_patience(&self) -> u32 {
        let reads = self.frame_stall_timeout.as_millis() / self.read_timeout.as_millis().max(1);
        u32::try_from(reads).unwrap_or(u32::MAX).max(1)
    }
}

/// One open session: a pinned rank, scoring method and exact-match
/// threshold grid.  Sessions do *not* pin a support: each query resolves
/// the current world's support for the rank, so sessions opened before
/// an `apply_updates` transparently answer about the updated graph.
#[derive(Debug, Clone)]
struct Session {
    rank: Rank,
    method: ScoreMethod,
    method_tag: u8,
    grid: Arc<Vec<f64>>,
}

/// A materialized decomposition at one (rank, method, threshold) point.
#[derive(Debug)]
struct CachedPoint {
    scores: Vec<u32>,
    max_score: u32,
}

/// Cache key: rank + method + exact threshold bits + the rank's world
/// generation.  The generation keeps a compute that started before an
/// `apply_updates` from poisoning the post-update cache: its result is
/// filed under the old generation, which no post-update query asks for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PointKey {
    rank: Rank,
    method_tag: u8,
    theta_bits: u64,
    generation: u64,
}

/// The LRU of materialized points plus the set of keys currently being
/// computed, guarded by one lock so the hit/miss/eviction counters stay
/// deterministic per key: for any key, the first arrival is the miss
/// and every concurrent or later arrival is a hit, while *unrelated*
/// keys compute outside the lock in parallel.
struct PointCache {
    lru: crate::lru::LruCache<PointKey, Arc<CachedPoint>>,
    inflight: HashSet<PointKey>,
}

/// One rank's slice of the world: its current support and the
/// generation the support (and every cache entry derived from it)
/// belongs to.
struct RankState {
    support: Arc<RankSupport>,
    generation: u64,
}

/// Everything `apply_updates` swaps atomically: the graph and the
/// resident per-rank supports.  Guarded by one lock so queries resolve
/// a consistent (graph, support, generation) triple.
struct WorldState {
    graph: Arc<UncertainGraph>,
    ranks: HashMap<Rank, RankState>,
}

/// A consistent read of the world for one rank, captured under a single
/// lock acquisition.  Everything a query touches — the graph it
/// describes, the support it peels and the generation its cache entries
/// file under — comes from the same world, so a concurrent
/// `apply_updates` is observed entirely or not at all.
struct ResolvedRank {
    graph: Arc<UncertainGraph>,
    support: Arc<RankSupport>,
    generation: u64,
}

/// The transport-independent heart of the service.
pub struct ServerCore {
    world: Mutex<WorldState>,
    config: ServerConfig,
    cache: Mutex<PointCache>,
    /// Signalled whenever an in-flight compute finishes (successfully
    /// or not), waking requests that wait on the same key.
    cache_ready: Condvar,
    sessions: Mutex<HashMap<u64, Session>>,
    next_session: AtomicU64,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// Per-request deadline, measured from receipt.
struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    fn new(deadline_ms: Option<u64>) -> Self {
        Deadline {
            at: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// Errors once the deadline has passed.  `deadline_ms: 0` fails the
    /// first check deterministically.
    fn check(&self) -> Result<(), RequestError> {
        match self.at {
            Some(at) if Instant::now() >= at => Err(RequestError::new(
                ErrorCode::DeadlineExceeded,
                "request deadline elapsed",
            )),
            _ => Ok(()),
        }
    }
}

impl ServerCore {
    /// Wraps a loaded graph into a resident service.  Supports are built
    /// lazily on the first session of each rank.
    pub fn new(graph: UncertainGraph, config: ServerConfig) -> Arc<Self> {
        let cache = PointCache {
            lru: crate::lru::LruCache::new(config.cache_capacity),
            inflight: HashSet::new(),
        };
        Arc::new(ServerCore {
            world: Mutex::new(WorldState {
                graph: Arc::new(graph),
                ranks: HashMap::new(),
            }),
            config,
            cache: Mutex::new(cache),
            cache_ready: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The graph the server currently answers queries about
    /// (`apply_updates` swaps it).
    pub fn graph(&self) -> Arc<UncertainGraph> {
        Arc::clone(&self.world.lock().unwrap().graph)
    }

    /// The deterministic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// `true` once a `shutdown` request was served.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown (also reachable via the `shutdown`
    /// method on the wire).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// A consistent view of the world for `rank`, building the support
    /// on first use.  Building happens under the world lock, so
    /// concurrent sessions of the same rank still count exactly one
    /// build.
    fn resolve(&self, rank: Rank) -> ResolvedRank {
        let mut world = self.world.lock().unwrap();
        let graph = Arc::clone(&world.graph);
        let state = world.ranks.entry(rank).or_insert_with(|| {
            ServerStats::bump(&self.stats.support_builds);
            RankState {
                support: Arc::new(RankSupport::build(&graph, rank, self.config.parallelism)),
                generation: 0,
            }
        });
        ResolvedRank {
            graph,
            support: Arc::clone(&state.support),
            generation: state.generation,
        }
    }

    fn session(&self, params: &Json) -> Result<Session, RequestError> {
        let id = require_u64(params, "session")?;
        self.sessions
            .lock()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or_else(|| {
                RequestError::new(
                    ErrorCode::UnknownSession,
                    format!("session {id} is not open"),
                )
            })
    }

    /// Exact-match position of `theta` on the session grid.
    fn grid_index(session: &Session, theta: f64) -> Result<usize, RequestError> {
        session
            .grid
            .binary_search_by(|probe| {
                probe
                    .partial_cmp(&theta)
                    .unwrap_or(std::cmp::Ordering::Less)
            })
            .map_err(|_| {
                RequestError::new(
                    ErrorCode::OffGrid,
                    format!(
                        "{} = {theta} is not a grid point of this session \
                         (lookups are exact-match)",
                        session.rank.threshold_name()
                    ),
                )
            })
    }

    /// The materialized point for (session, theta) against the resolved
    /// world view, served from the LRU cache when possible.  Misses
    /// compute over the view's shared support — never a rebuild — and
    /// results are bit-identical to a direct
    /// [`nucleus::Decomposition::compute`] at the same configuration.
    ///
    /// The compute itself runs *outside* the cache lock: the first
    /// request for a key marks it in-flight (and is the one counted
    /// miss), concurrent requests for the same key wait on
    /// [`Self::cache_ready`] and then take the counted hit, and
    /// requests for unrelated keys compute in parallel.  This keeps the
    /// hit/miss/eviction counters deterministic per key without
    /// serializing every peel across all connections.
    fn point(
        &self,
        session: &Session,
        theta: f64,
        view: &ResolvedRank,
    ) -> Result<Arc<CachedPoint>, RequestError> {
        Self::grid_index(session, theta)?;
        let key = PointKey {
            rank: session.rank,
            method_tag: session.method_tag,
            theta_bits: theta.to_bits(),
            generation: view.generation,
        };
        let mut cache = self.cache.lock().unwrap();
        loop {
            if let Some(point) = cache.lru.get(&key) {
                ServerStats::bump(&self.stats.cache_hits);
                return Ok(Arc::clone(point));
            }
            if !cache.inflight.contains(&key) {
                break;
            }
            // Someone else is computing this key: wait for it instead of
            // duplicating the peel.  On the (capacity-starved) chance the
            // result was already evicted when we wake, the loop falls
            // through to computing it ourselves.
            cache = self.cache_ready.wait(cache).unwrap();
        }
        ServerStats::bump(&self.stats.cache_misses);
        cache.inflight.insert(key.clone());
        drop(cache);

        let config = DecompConfig {
            rank: session.rank,
            threshold: theta,
            method: session.method,
            parallelism: Parallelism::Sequential,
        };
        let computed = DecompHandle::from_support(Arc::clone(&view.support)).compute_at(&config);

        let mut cache = self.cache.lock().unwrap();
        cache.inflight.remove(&key);
        self.cache_ready.notify_all();
        let decomp = match computed {
            Ok(decomp) => decomp,
            Err(e) => return Err(RequestError::new(ErrorCode::InvalidParams, e.to_string())),
        };
        let point = Arc::new(CachedPoint {
            max_score: decomp.max_score(),
            scores: decomp.scores().to_vec(),
        });
        for _ in 0..cache.lru.insert(key, Arc::clone(&point)) {
            ServerStats::bump(&self.stats.cache_evictions);
        }
        Ok(point)
    }

    /// Maps one frame body to one response body.  Never panics; the
    /// response is always a well-formed frame-able JSON document.
    pub fn handle_body(&self, body: &[u8]) -> Vec<u8> {
        let response = self.handle_text(body);
        response.to_json_string().into_bytes()
    }

    fn handle_text(&self, body: &[u8]) -> Json {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => {
                ServerStats::bump(&self.stats.protocol_errors);
                return err_response(
                    0,
                    &RequestError::new(ErrorCode::BadJson, "frame body is not UTF-8"),
                );
            }
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => {
                ServerStats::bump(&self.stats.protocol_errors);
                return err_response(0, &RequestError::new(ErrorCode::BadJson, e.to_string()));
            }
        };
        match parse_request(&doc) {
            Ok(Request::Single(call)) => self.serve_call(&call),
            Ok(Request::Batch(calls)) => {
                ServerStats::bump(&self.stats.batches);
                let responses = calls.iter().map(|call| self.serve_call(call)).collect();
                Json::Obj(vec![("batch".to_string(), Json::Arr(responses))])
            }
            Err(e) => {
                ServerStats::bump(&self.stats.request_errors);
                err_response(0, &e)
            }
        }
    }

    fn serve_call(&self, call: &Call) -> Json {
        ServerStats::bump(&self.stats.requests);
        match self.dispatch(call) {
            Ok(result) => ok_response(call.id, result),
            Err(e) => {
                if e.code == ErrorCode::DeadlineExceeded {
                    ServerStats::bump(&self.stats.deadlines_exceeded);
                }
                ServerStats::bump(&self.stats.request_errors);
                err_response(call.id, &e)
            }
        }
    }

    fn dispatch(&self, call: &Call) -> Result<Json, RequestError> {
        let deadline = Deadline::new(call.deadline_ms);
        deadline.check()?;
        let params = &call.params;
        match call.method.as_str() {
            // Calls already decoded when the shutdown fired are drained;
            // anything sequenced after a shutdown call is refused.
            _ if self.is_shutdown() && call.method != "stats" => Err(RequestError::new(
                ErrorCode::ShuttingDown,
                "server is draining",
            )),
            "ping" => Ok(Json::Obj(vec![("pong".to_string(), Json::Bool(true))])),
            "info" => self.do_info(),
            "open" => self.do_open(params),
            "close" => self.do_close(params),
            "stats" => Ok(self.stats.snapshot().to_json()),
            "apply_updates" => self.do_apply_updates(params),
            "scores_at" => self.do_scores_at(params, &deadline),
            "max_score_at" => self.do_max_score_at(params, &deadline),
            "k_nuclei_at" => self.do_k_nuclei_at(params, &deadline),
            "top_nuclei" => self.do_top_nuclei(params, &deadline),
            "community" => self.do_community(params, &deadline),
            "shutdown" => {
                self.request_shutdown();
                Ok(Json::Obj(vec![(
                    "shutting_down".to_string(),
                    Json::Bool(true),
                )]))
            }
            other => Err(RequestError::new(
                ErrorCode::UnknownMethod,
                format!("unknown method '{other}'"),
            )),
        }
    }

    fn do_info(&self) -> Result<Json, RequestError> {
        let (vertices, edges) = {
            let world = self.world.lock().unwrap();
            (world.graph.num_vertices(), world.graph.num_edges())
        };
        Ok(Json::Obj(vec![
            ("vertices".to_string(), Json::num(vertices as f64)),
            ("edges".to_string(), Json::num(edges as f64)),
            (
                "sessions".to_string(),
                Json::num(self.sessions.lock().unwrap().len() as f64),
            ),
            (
                "cache_capacity".to_string(),
                Json::num(self.config.cache_capacity as f64),
            ),
        ]))
    }

    fn do_open(&self, params: &Json) -> Result<Json, RequestError> {
        let rank: Rank = params
            .get("rank")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorCode::InvalidParams, "missing 'rank'"))?
            .parse()
            .map_err(|e: nucleus::UnknownRankError| {
                RequestError::new(ErrorCode::InvalidParams, e.to_string())
            })?;
        let thetas: Vec<f64> = params
            .get("thetas")
            .and_then(Json::as_array)
            .ok_or_else(|| {
                RequestError::new(ErrorCode::InvalidParams, "'thetas' must be an array")
            })?
            .iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| {
                    RequestError::new(ErrorCode::InvalidParams, "'thetas' entries must be numbers")
                })
            })
            .collect::<Result<_, _>>()?;
        let (method, method_tag) = match params.get("method").and_then(Json::as_str) {
            None | Some("exact") => (ScoreMethod::DynamicProgramming, 0u8),
            Some("approx") => (ScoreMethod::Hybrid(ApproxThresholds::default()), 1u8),
            Some(other) => {
                return Err(RequestError::new(
                    ErrorCode::InvalidParams,
                    format!("unknown method '{other}' (expected 'exact' or 'approx')"),
                ))
            }
        };
        // One validated builder guards both the library and the wire.
        let sweep_config = SweepConfig {
            rank,
            thetas: thetas.clone(),
            method,
            parallelism: self.config.parallelism,
        };
        sweep_config
            .validate()
            .map_err(|e| RequestError::new(ErrorCode::InvalidParams, e.to_string()))?;

        let view = self.resolve(rank);
        let session = Session {
            rank,
            method,
            method_tag,
            grid: Arc::new(thetas),
        };
        let id = self.next_session.fetch_add(1, Ordering::SeqCst);
        let grid_len = session.grid.len();
        let num_elements = view.support.num_elements();
        self.sessions.lock().unwrap().insert(id, session);
        ServerStats::bump(&self.stats.sessions_opened);
        Ok(Json::Obj(vec![
            ("session".to_string(), Json::num(id as f64)),
            ("rank".to_string(), Json::str(rank.as_str())),
            ("grid_len".to_string(), Json::num(grid_len as f64)),
            ("num_elements".to_string(), Json::num(num_elements as f64)),
        ]))
    }

    fn do_close(&self, params: &Json) -> Result<Json, RequestError> {
        let id = require_u64(params, "session")?;
        match self.sessions.lock().unwrap().remove(&id) {
            Some(_) => {
                ServerStats::bump(&self.stats.sessions_closed);
                Ok(Json::Obj(vec![("closed".to_string(), Json::Bool(true))]))
            }
            None => Err(RequestError::new(
                ErrorCode::UnknownSession,
                format!("session {id} is not open"),
            )),
        }
    }

    fn do_scores_at(&self, params: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let session = self.session(params)?;
        let theta = require_f64(params, "theta")?;
        deadline.check()?;
        let view = self.resolve(session.rank);
        let point = self.point(&session, theta, &view)?;
        deadline.check()?;
        let scores: Vec<Json> = match params.get("elements") {
            None | Some(Json::Null) => point.scores.iter().map(|&s| Json::num(s as f64)).collect(),
            Some(list) => {
                let ids = list.as_array().ok_or_else(|| {
                    RequestError::new(ErrorCode::InvalidParams, "'elements' must be an array")
                })?;
                let mut subset = Vec::with_capacity(ids.len());
                for id in ids {
                    let id = id
                        .as_f64()
                        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                        .map(|n| n as usize)
                        .ok_or_else(|| {
                            RequestError::new(
                                ErrorCode::InvalidParams,
                                "'elements' entries must be non-negative integers",
                            )
                        })?;
                    let score = point.scores.get(id).ok_or_else(|| {
                        RequestError::new(
                            ErrorCode::InvalidParams,
                            format!(
                                "element {id} out of range ({} {})",
                                point.scores.len(),
                                session.rank.element_name()
                            ),
                        )
                    })?;
                    subset.push(Json::num(*score as f64));
                }
                subset
            }
        };
        Ok(Json::Obj(vec![
            ("theta".to_string(), Json::num(theta)),
            ("scores".to_string(), Json::Arr(scores)),
        ]))
    }

    fn do_max_score_at(&self, params: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let session = self.session(params)?;
        let theta = require_f64(params, "theta")?;
        deadline.check()?;
        let view = self.resolve(session.rank);
        let point = self.point(&session, theta, &view)?;
        Ok(Json::Obj(vec![
            ("theta".to_string(), Json::num(theta)),
            ("max_score".to_string(), Json::num(point.max_score as f64)),
        ]))
    }

    /// The nucleus-rank support of a resolved view, or the typed
    /// wrong-rank error mirroring [`nucleus::NucleusError::RankMismatch`].
    fn nucleus_support(
        view: &ResolvedRank,
        rank: Rank,
    ) -> Result<&nucleus::SupportStructure, RequestError> {
        view.support.as_nucleus().ok_or_else(|| {
            RequestError::new(
                ErrorCode::WrongRank,
                format!(
                    "operation requires a nucleus-rank session, but this one was \
                     opened for {}",
                    rank.as_str()
                ),
            )
        })
    }

    fn nucleus_summary(nucleus: &detdecomp::NucleusSubgraph) -> Json {
        let mut vertices: Vec<u32> = nucleus.subgraph.original_vertices().to_vec();
        vertices.sort_unstable();
        Json::Obj(vec![
            ("k".to_string(), Json::num(nucleus.k as f64)),
            (
                "num_vertices".to_string(),
                Json::num(nucleus.num_vertices() as f64),
            ),
            (
                "num_edges".to_string(),
                Json::num(nucleus.num_edges() as f64),
            ),
            (
                "vertices".to_string(),
                Json::Arr(vertices.into_iter().map(|v| Json::num(v as f64)).collect()),
            ),
        ])
    }

    fn do_k_nuclei_at(&self, params: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let session = self.session(params)?;
        let view = self.resolve(session.rank);
        let support = Self::nucleus_support(&view, session.rank)?;
        let theta = require_f64(params, "theta")?;
        let k = u32::try_from(require_u64(params, "k")?)
            .map_err(|_| RequestError::new(ErrorCode::InvalidParams, "'k' does not fit u32"))?;
        deadline.check()?;
        let point = self.point(&session, theta, &view)?;
        deadline.check()?;
        let nuclei =
            nucleus::local::nuclei::extract_k_nuclei(&view.graph, support, &point.scores, k);
        Ok(Json::Obj(vec![
            ("theta".to_string(), Json::num(theta)),
            ("k".to_string(), Json::num(k as f64)),
            ("count".to_string(), Json::num(nuclei.len() as f64)),
            (
                "nuclei".to_string(),
                Json::Arr(nuclei.iter().map(Self::nucleus_summary).collect()),
            ),
        ]))
    }

    /// The densest maximal nuclei at `theta` across every `k`, sorted by
    /// descending edge density (`num_edges / num_vertices`), ties broken
    /// by higher `k`, then more edges, then the smallest vertex id — a
    /// total, deterministic order.
    fn do_top_nuclei(&self, params: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let session = self.session(params)?;
        let view = self.resolve(session.rank);
        let support = Self::nucleus_support(&view, session.rank)?;
        let theta = require_f64(params, "theta")?;
        let limit = require_u64(params, "limit")? as usize;
        deadline.check()?;
        let point = self.point(&session, theta, &view)?;
        let mut ranked: Vec<(f64, u32, usize, u32, Json)> = Vec::new();
        for k in 1..=point.max_score {
            deadline.check()?;
            for nucleus in
                nucleus::local::nuclei::extract_k_nuclei(&view.graph, support, &point.scores, k)
            {
                let density = nucleus.num_edges() as f64 / nucleus.num_vertices() as f64;
                let first_vertex = nucleus
                    .subgraph
                    .original_vertices()
                    .iter()
                    .copied()
                    .min()
                    .unwrap_or(0);
                ranked.push((
                    density,
                    k,
                    nucleus.num_edges(),
                    first_vertex,
                    Self::nucleus_summary(&nucleus),
                ));
            }
        }
        ranked.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.cmp(&a.1))
                .then(b.2.cmp(&a.2))
                .then(a.3.cmp(&b.3))
        });
        ranked.truncate(limit);
        let nuclei: Vec<Json> = ranked
            .into_iter()
            .map(|(density, _, _, _, mut summary)| {
                if let Json::Obj(members) = &mut summary {
                    members.push(("density".to_string(), Json::num(density)));
                }
                summary
            })
            .collect();
        Ok(Json::Obj(vec![
            ("theta".to_string(), Json::num(theta)),
            ("count".to_string(), Json::num(nuclei.len() as f64)),
            ("nuclei".to_string(), Json::Arr(nuclei)),
        ]))
    }

    /// The most cohesive community of a vertex at `theta`: the maximal
    /// nucleus containing the vertex with the largest `k` (ties broken
    /// by the extraction order, which is deterministic).
    fn do_community(&self, params: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let session = self.session(params)?;
        let view = self.resolve(session.rank);
        let support = Self::nucleus_support(&view, session.rank)?;
        let theta = require_f64(params, "theta")?;
        let vertex = u32::try_from(require_u64(params, "vertex")?).map_err(|_| {
            RequestError::new(ErrorCode::InvalidParams, "'vertex' does not fit u32")
        })?;
        if (vertex as usize) >= view.graph.num_vertices() {
            return Err(RequestError::new(
                ErrorCode::InvalidParams,
                format!(
                    "vertex {vertex} out of range ({} vertices)",
                    view.graph.num_vertices()
                ),
            ));
        }
        deadline.check()?;
        let point = self.point(&session, theta, &view)?;
        for k in (1..=point.max_score).rev() {
            deadline.check()?;
            let nuclei =
                nucleus::local::nuclei::extract_k_nuclei(&view.graph, support, &point.scores, k);
            if let Some(home) = nuclei
                .iter()
                .find(|n| n.subgraph.original_vertices().contains(&vertex))
            {
                return Ok(Json::Obj(vec![
                    ("theta".to_string(), Json::num(theta)),
                    ("vertex".to_string(), Json::num(vertex as f64)),
                    ("found".to_string(), Json::Bool(true)),
                    ("community".to_string(), Self::nucleus_summary(home)),
                ]));
            }
        }
        Ok(Json::Obj(vec![
            ("theta".to_string(), Json::num(theta)),
            ("vertex".to_string(), Json::num(vertex as f64)),
            ("found".to_string(), Json::Bool(false)),
        ]))
    }

    /// Prefixes a parameter error with the position of the offending
    /// update, mirroring how [`ugraph::UpdateError`] reports indices.
    fn update_field(index: usize, e: RequestError) -> RequestError {
        RequestError::new(e.code, format!("update {index}: {}", e.message))
    }

    /// One endpoint of an update item, range-checked to `u32`.
    fn update_vertex(item: &Json, key: &str, index: usize) -> Result<u32, RequestError> {
        let raw = require_u64(item, key).map_err(|e| Self::update_field(index, e))?;
        u32::try_from(raw).map_err(|_| {
            RequestError::new(
                ErrorCode::InvalidParams,
                format!("update {index}: '{key}' does not fit u32"),
            )
        })
    }

    /// Decodes the `updates` array of an `apply_updates` call.  Shape
    /// problems (wrong types, unknown ops, missing fields) are
    /// `invalid-params`; semantic problems against the resident graph
    /// surface later as `update-rejected`.
    fn parse_updates(params: &Json) -> Result<Vec<EdgeUpdate>, RequestError> {
        let items = params
            .get("updates")
            .and_then(Json::as_array)
            .ok_or_else(|| {
                RequestError::new(ErrorCode::InvalidParams, "'updates' must be an array")
            })?;
        if items.is_empty() {
            return Err(RequestError::new(
                ErrorCode::InvalidParams,
                "'updates' must not be empty",
            ));
        }
        let mut updates = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            let op = item.get("op").and_then(Json::as_str).ok_or_else(|| {
                RequestError::new(
                    ErrorCode::InvalidParams,
                    format!("update {index}: missing 'op'"),
                )
            })?;
            let u = Self::update_vertex(item, "u", index)?;
            let v = Self::update_vertex(item, "v", index)?;
            let update = match op {
                "insert" => EdgeUpdate::Insert {
                    u,
                    v,
                    p: require_f64(item, "p").map_err(|e| Self::update_field(index, e))?,
                },
                "delete" => EdgeUpdate::Delete { u, v },
                "reweight" => EdgeUpdate::Reweight {
                    u,
                    v,
                    p: require_f64(item, "p").map_err(|e| Self::update_field(index, e))?,
                },
                other => {
                    return Err(RequestError::new(
                        ErrorCode::InvalidParams,
                        format!(
                            "update {index}: unknown op '{other}' \
                             (expected insert | delete | reweight)"
                        ),
                    ))
                }
            };
            updates.push(update);
        }
        Ok(updates)
    }

    /// Applies a batch of edge updates to the resident world.  The whole
    /// transition — validate, swap the graph, repair every resident
    /// support incrementally, invalidate exactly the affected cache
    /// entries — happens under the world lock, so every query observes
    /// either the pre-update or the post-update world, never a mix.  A
    /// rank whose repair proves the batch did not touch it (identical
    /// element set, empty repair region) keeps its generation and its
    /// cached points.
    fn do_apply_updates(&self, params: &Json) -> Result<Json, RequestError> {
        let updates = Self::parse_updates(params)?;
        let mut world = self.world.lock().unwrap();
        let delta = apply_edge_updates(&world.graph, &updates)
            .map_err(|e| RequestError::new(ErrorCode::UpdateRejected, e.to_string()))?;
        let inserted = delta.inserted.len();
        let (removed, reweighted) = (delta.removed, delta.reweighted);

        let mut repaired_ranks = 0usize;
        let mut affected_elements = 0usize;
        let mut region_elements = 0usize;
        let mut invalidated = 0usize;
        let mut ranks = HashMap::with_capacity(world.ranks.len());
        for (&rank, state) in &world.ranks {
            let repair = state
                .support
                .repair(&world.graph, &delta, self.config.parallelism);
            ServerStats::bump(&self.stats.supports_repaired);
            repaired_ranks += 1;
            affected_elements += repair.affected.len();
            region_elements += repair.region.len();
            // Cached points of this rank survive only when the repair
            // proves them still bit-exact: every element carried over in
            // place and none re-peeled.
            let untouched = repair.region.is_empty()
                && repair.new_to_old.len() == state.support.num_elements()
                && repair
                    .new_to_old
                    .iter()
                    .enumerate()
                    .all(|(i, mapped)| *mapped == Some(i as u32));
            let generation = if untouched {
                state.generation
            } else {
                let stale = self
                    .cache
                    .lock()
                    .unwrap()
                    .lru
                    .retain(|key| key.rank != rank);
                for _ in 0..stale {
                    ServerStats::bump(&self.stats.cache_invalidations);
                }
                invalidated += stale;
                state.generation + 1
            };
            ranks.insert(
                rank,
                RankState {
                    support: Arc::new(repair.support),
                    generation,
                },
            );
        }
        world.graph = Arc::new(delta.graph);
        world.ranks = ranks;
        ServerStats::bump(&self.stats.updates_applied);
        let edges = world.graph.num_edges();
        drop(world);

        Ok(Json::Obj(vec![
            ("applied".to_string(), Json::Bool(true)),
            ("inserted".to_string(), Json::num(inserted as f64)),
            ("removed".to_string(), Json::num(removed as f64)),
            ("reweighted".to_string(), Json::num(reweighted as f64)),
            ("edges".to_string(), Json::num(edges as f64)),
            (
                "repaired_ranks".to_string(),
                Json::num(repaired_ranks as f64),
            ),
            (
                "affected_elements".to_string(),
                Json::num(affected_elements as f64),
            ),
            (
                "region_elements".to_string(),
                Json::num(region_elements as f64),
            ),
            (
                "cache_invalidations".to_string(),
                Json::num(invalidated as f64),
            ),
        ]))
    }
}

/// The TCP layer around a [`ServerCore`].
pub struct Server {
    core: Arc<ServerCore>,
    listener: TcpListener,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, core: Arc<ServerCore>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { core, listener })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared core.
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Serves until a `shutdown` request (or
    /// [`ServerCore::request_shutdown`]), then drains: in-flight frames
    /// are answered, workers join, and the final counters are returned.
    pub fn run(&self) -> StatsSnapshot {
        let core = &self.core;
        let pool = core.config.parallelism.num_threads().max(1);
        let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
        let ready = Condvar::new();

        std::thread::scope(|s| {
            for _ in 0..pool {
                s.spawn(|| loop {
                    let stream = {
                        let mut q = queue.lock().unwrap();
                        loop {
                            if let Some(stream) = q.pop_front() {
                                break Some(stream);
                            }
                            if core.is_shutdown() {
                                break None;
                            }
                            let (guard, _) =
                                ready.wait_timeout(q, Duration::from_millis(20)).unwrap();
                            q = guard;
                        }
                    };
                    match stream {
                        Some(stream) => serve_connection(core, stream),
                        None => break,
                    }
                });
            }

            // Acceptor: non-blocking so the shutdown flag is observed
            // within one polling interval.
            while !core.is_shutdown() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        queue.lock().unwrap().push_back(stream);
                        ready.notify_one();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            ready.notify_all();
        });
        core.stats.snapshot()
    }
}

/// Serves one connection until the peer hangs up, an unrecoverable
/// protocol error occurs, or the server drains.
fn serve_connection(core: &Arc<ServerCore>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(core.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let patience = Some(core.config.stall_patience());
    loop {
        match read_frame_while(&mut stream, || !core.is_shutdown(), patience) {
            Ok(ReadOutcome::Frame(body)) => {
                // Drain semantics: a frame that arrived is answered even
                // if the shutdown flag was raised while reading it.
                let response = core.handle_body(&body);
                if write_frame(&mut stream, &response).is_err() {
                    break;
                }
            }
            Ok(ReadOutcome::Closed) | Ok(ReadOutcome::Aborted) => break,
            Err(FrameError::Oversized { declared }) => {
                // The declared body will never be read, so the stream
                // cannot be resynchronized: answer once, then close.
                ServerStats::bump(&core.stats.protocol_errors);
                let error = RequestError::new(
                    ErrorCode::BadFrame,
                    format!("declared frame length {declared} exceeds the cap"),
                );
                let body = err_response(0, &error).to_json_string().into_bytes();
                let _ = write_frame(&mut stream, &body);
                break;
            }
            Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_)) => {
                // The peer broke the stream mid-frame; nothing can be
                // answered reliably.
                ServerStats::bump(&core.stats.protocol_errors);
                break;
            }
        }
    }
    let _ = stream.flush();
}
