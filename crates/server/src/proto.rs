//! Request/response schema of the nd-server wire protocol.
//!
//! Bodies are JSON (see [`crate::frame`] for the framing).  A request is
//! either one call:
//!
//! ```json
//! { "id": 1, "method": "scores_at", "params": { "session": 0, "theta": 0.2 } }
//! ```
//!
//! or a batch, answered in order as `{ "batch": [ ... ] }`:
//!
//! ```json
//! { "batch": [ { "id": 1, "method": "ping" }, { "id": 2, "method": "stats" } ] }
//! ```
//!
//! Responses are `{ "id": …, "ok": true, "result": … }` or
//! `{ "id": …, "ok": false, "error": { "code": …, "message": … } }`.
//! Every failure mode has a stable machine-readable [`ErrorCode`]; no
//! request — however malformed — kills the server process.

use std::fmt;

use crate::json::Json;

/// Machine-readable error codes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself violated the framing rules (declared length
    /// above the cap).  Counted as a protocol error; the connection
    /// closes after the error response because the stream cannot be
    /// resynchronized.
    BadFrame,
    /// The frame body was not valid JSON (counted as a protocol error).
    BadJson,
    /// The JSON was not a request object (missing `id`/`method`).
    BadRequest,
    /// The method name is not part of the protocol.
    UnknownMethod,
    /// Parameters are missing, of the wrong type, or out of range.
    InvalidParams,
    /// The referenced session id is not open.
    UnknownSession,
    /// The request needs a different rank than the session was opened
    /// for (e.g. nucleus extraction on a truss session).
    WrongRank,
    /// The requested threshold is not a grid point of the session.
    OffGrid,
    /// The request's `deadline_ms` elapsed before the result was ready.
    DeadlineExceeded,
    /// An `apply_updates` batch was well-formed on the wire but invalid
    /// against the resident graph (missing edge, duplicate insert,
    /// off-graph endpoint, bad probability).  The batch is rejected
    /// atomically: the resident world is unchanged.
    UpdateRejected,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::InvalidParams => "invalid-params",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::WrongRank => "wrong-rank",
            ErrorCode::OffGrid => "off-grid",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::UpdateRejected => "update-rejected",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request-level failure: code plus human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable explanation.
    pub message: String,
}

impl RequestError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        RequestError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// One parsed call.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Method name.
    pub method: String,
    /// Parameter object (`Json::Null` when absent).
    pub params: Json,
    /// Optional per-request deadline in milliseconds from receipt.
    pub deadline_ms: Option<u64>,
}

/// A parsed request body: a single call or an ordered batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One call.
    Single(Call),
    /// An ordered batch of calls, answered in order.
    Batch(Vec<Call>),
}

/// Parses a request body.  `Err` carries the code to respond with
/// (`id` 0, since no id could be recovered).
pub fn parse_request(body: &Json) -> Result<Request, RequestError> {
    if let Some(batch) = body.get("batch") {
        let items = batch
            .as_array()
            .ok_or_else(|| RequestError::new(ErrorCode::BadRequest, "'batch' must be an array"))?;
        if items.is_empty() {
            return Err(RequestError::new(
                ErrorCode::BadRequest,
                "'batch' must not be empty",
            ));
        }
        let calls = items.iter().map(parse_call).collect::<Result<_, _>>()?;
        return Ok(Request::Batch(calls));
    }
    Ok(Request::Single(parse_call(body)?))
}

fn parse_call(body: &Json) -> Result<Call, RequestError> {
    if !matches!(body, Json::Obj(_)) {
        return Err(RequestError::new(
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    }
    let id = read_u64(body, "id")?
        .ok_or_else(|| RequestError::new(ErrorCode::BadRequest, "missing 'id'"))?;
    let method = body
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::new(ErrorCode::BadRequest, "missing 'method'"))?
        .to_string();
    let params = body.get("params").cloned().unwrap_or(Json::Null);
    let deadline_ms = read_u64(body, "deadline_ms")?;
    Ok(Call {
        id,
        method,
        params,
        deadline_ms,
    })
}

/// Reads an optional non-negative integer member.
pub fn read_u64(obj: &Json, key: &str) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        // Strict upper bound: `u64::MAX as f64` rounds up to 2^64, so
        // `<=` would accept 18446744073709551616 and saturate it to
        // `u64::MAX`.  Every f64 integer strictly below 2^64 converts
        // exactly.
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(RequestError::new(
            ErrorCode::InvalidParams,
            format!("'{key}' must be a non-negative integer"),
        )),
    }
}

/// Reads a required non-negative integer member.
pub fn require_u64(obj: &Json, key: &str) -> Result<u64, RequestError> {
    read_u64(obj, key)?
        .ok_or_else(|| RequestError::new(ErrorCode::InvalidParams, format!("missing '{key}'")))
}

/// Reads a required finite number member.
pub fn require_f64(obj: &Json, key: &str) -> Result<f64, RequestError> {
    match obj.get(key) {
        Some(Json::Num(n)) if n.is_finite() => Ok(*n),
        Some(_) => Err(RequestError::new(
            ErrorCode::InvalidParams,
            format!("'{key}' must be a finite number"),
        )),
        None => Err(RequestError::new(
            ErrorCode::InvalidParams,
            format!("missing '{key}'"),
        )),
    }
}

/// A successful response body.
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::num(id as f64)),
        ("ok".to_string(), Json::Bool(true)),
        ("result".to_string(), result),
    ])
}

/// A failed response body.
pub fn err_response(id: u64, error: &RequestError) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::num(id as f64)),
        ("ok".to_string(), Json::Bool(false)),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("code".to_string(), Json::str(error.code.as_str())),
                ("message".to_string(), Json::str(error.message.clone())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_calls_with_and_without_extras() {
        let body = Json::parse(r#"{"id": 3, "method": "ping"}"#).unwrap();
        match parse_request(&body).unwrap() {
            Request::Single(call) => {
                assert_eq!(call.id, 3);
                assert_eq!(call.method, "ping");
                assert_eq!(call.params, Json::Null);
                assert_eq!(call.deadline_ms, None);
            }
            other => panic!("expected single, got {other:?}"),
        }
        let body = Json::parse(
            r#"{"id": 4, "method": "scores_at", "deadline_ms": 250,
                "params": {"session": 0, "theta": 0.2}}"#,
        )
        .unwrap();
        match parse_request(&body).unwrap() {
            Request::Single(call) => {
                assert_eq!(call.deadline_ms, Some(250));
                assert_eq!(call.params.get("theta").and_then(Json::as_f64), Some(0.2));
            }
            other => panic!("expected single, got {other:?}"),
        }
    }

    #[test]
    fn parses_batches_in_order() {
        let body = Json::parse(
            r#"{"batch": [
                {"id": 1, "method": "ping"},
                {"id": 2, "method": "stats"}
            ]}"#,
        )
        .unwrap();
        match parse_request(&body).unwrap() {
            Request::Batch(calls) => {
                assert_eq!(calls.len(), 2);
                assert_eq!(calls[0].method, "ping");
                assert_eq!(calls[1].id, 2);
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_bad_request() {
        for bad in [
            "17",
            "[]",
            r#"{"method": "ping"}"#,
            r#"{"id": 1}"#,
            r#"{"id": -1, "method": "ping"}"#,
            r#"{"id": 1.5, "method": "ping"}"#,
            // 2^64: one past u64::MAX, must not silently saturate.
            r#"{"id": 18446744073709551616, "method": "ping"}"#,
            r#"{"batch": []}"#,
            r#"{"batch": 7}"#,
            r#"{"batch": [{"id": 1}]}"#,
        ] {
            let body = Json::parse(bad).unwrap();
            let e = parse_request(&body).unwrap_err();
            assert!(
                matches!(e.code, ErrorCode::BadRequest | ErrorCode::InvalidParams),
                "{bad} -> {e}"
            );
        }
    }

    #[test]
    fn read_u64_bounds_are_strict_at_two_to_the_sixty_four() {
        // Largest f64 integer below 2^64 (2^64 - 2048): converts exactly.
        let body = Json::parse(r#"{"big": 18446744073709549568}"#).unwrap();
        assert_eq!(read_u64(&body, "big").unwrap(), Some(18446744073709549568));
        // 2^64 itself would saturate to u64::MAX under `as`: rejected.
        let body = Json::parse(r#"{"big": 18446744073709551616}"#).unwrap();
        assert_eq!(
            read_u64(&body, "big").unwrap_err().code,
            ErrorCode::InvalidParams
        );
    }

    #[test]
    fn response_builders_emit_the_wire_shape() {
        let ok = ok_response(9, Json::Obj(vec![("pong".to_string(), Json::Bool(true))]));
        assert_eq!(
            ok.to_json_string(),
            r#"{"id":9,"ok":true,"result":{"pong":true}}"#
        );
        let err = err_response(2, &RequestError::new(ErrorCode::OffGrid, "theta = 0.3"));
        let parsed = Json::parse(&err.to_json_string()).unwrap();
        assert_eq!(
            parsed.path(&["error", "code"]).and_then(Json::as_str),
            Some("off-grid")
        );
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn error_codes_have_stable_spellings() {
        let all = [
            (ErrorCode::BadFrame, "bad-frame"),
            (ErrorCode::BadJson, "bad-json"),
            (ErrorCode::BadRequest, "bad-request"),
            (ErrorCode::UnknownMethod, "unknown-method"),
            (ErrorCode::InvalidParams, "invalid-params"),
            (ErrorCode::UnknownSession, "unknown-session"),
            (ErrorCode::WrongRank, "wrong-rank"),
            (ErrorCode::OffGrid, "off-grid"),
            (ErrorCode::DeadlineExceeded, "deadline-exceeded"),
            (ErrorCode::UpdateRejected, "update-rejected"),
            (ErrorCode::ShuttingDown, "shutting-down"),
        ];
        for (code, text) in all {
            assert_eq!(code.to_string(), text);
        }
    }
}
