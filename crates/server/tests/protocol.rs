//! Wire-protocol robustness and bit-identity over real TCP.
//!
//! Two contracts under test:
//!
//! * **No input kills the process.**  Malformed frames — truncated
//!   length prefixes, oversized declared lengths, arbitrary garbage
//!   bodies, invalid JSON, unknown methods, wrong-rank queries — must
//!   each surface as a typed error (or a clean connection close for
//!   unresynchronizable framing), with the server answering fresh
//!   connections afterwards.
//! * **The wire adds nothing.**  Concurrent sessions must answer
//!   bit-identically to direct [`DecompSweep`] calls, with the support
//!   built once per rank no matter how many connections race.

use std::net::{SocketAddr, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use proptest::prelude::*;

use nd_server::client::obj;
use nd_server::{
    read_frame, Client, ErrorCode, Json, ReadOutcome, Server, ServerConfig, ServerCore,
    StatsSnapshot, MAX_FRAME_LEN,
};
use nucleus::{DecompSweep, Rank, SweepConfig};
use ugraph::{apply_edge_updates, EdgeUpdate, GraphBuilder, Parallelism, UncertainGraph};

fn clique(n: u32, p: f64) -> UncertainGraph {
    let mut b = GraphBuilder::new();
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v, p).unwrap();
        }
    }
    b.build()
}

/// Boots a server on an ephemeral loopback port, runs `f` against it,
/// shuts down, and returns `f`'s result plus the drained counters.
///
/// `f` runs under `catch_unwind` so a failing assertion still shuts the
/// server down and joins its thread — otherwise the panic would hang in
/// `thread::scope` waiting on a runner that never exits.
fn with_server<T>(
    graph: &UncertainGraph,
    config: ServerConfig,
    f: impl FnOnce(SocketAddr, &Arc<ServerCore>) -> T,
) -> (T, StatsSnapshot) {
    let core = ServerCore::new(graph.clone(), config);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&core)).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|s| {
        let runner = s.spawn(|| server.run());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(addr, &core)));
        core.request_shutdown();
        let stats = runner.join().expect("server thread must not panic");
        match result {
            Ok(value) => (value, stats),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn open_session(client: &mut Client, rank: &str, thetas: &[f64]) -> f64 {
    client
        .call(
            "open",
            obj(vec![
                ("rank", Json::str(rank)),
                (
                    "thetas",
                    Json::Arr(thetas.iter().map(|&t| Json::num(t)).collect()),
                ),
            ]),
        )
        .expect("open succeeds")
        .get("session")
        .and_then(Json::as_f64)
        .expect("open returns a session id")
}

fn scores_at(client: &mut Client, session: f64, theta: f64) -> Json {
    client
        .call(
            "scores_at",
            obj(vec![
                ("session", Json::num(session)),
                ("theta", Json::num(theta)),
            ]),
        )
        .expect("scores_at succeeds")
}

fn wire_scores(response: &Json) -> Vec<u32> {
    response
        .get("scores")
        .and_then(Json::as_array)
        .expect("scores array")
        .iter()
        .map(|v| v.as_f64().unwrap() as u32)
        .collect()
}

fn update_item(op: &str, u: u32, v: u32, p: Option<f64>) -> Json {
    let mut members = vec![
        ("op", Json::str(op)),
        ("u", Json::num(u as f64)),
        ("v", Json::num(v as f64)),
    ];
    if let Some(p) = p {
        members.push(("p", Json::num(p)));
    }
    obj(members)
}

fn apply_updates(client: &mut Client, items: Vec<Json>) -> Result<Json, nd_server::ClientError> {
    client.call("apply_updates", obj(vec![("updates", Json::Arr(items))]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bytes in a well-formed frame: the server must answer
    /// every one of them (a typed error — or a response, in the
    /// astronomically unlikely case the bytes spell a valid request),
    /// and the connection must survive for a follow-up ping.
    #[test]
    fn garbage_bodies_get_typed_answers_and_the_connection_survives(
        body in proptest::collection::vec(0u8..=255u8, 0..64usize),
    ) {
        let graph = clique(4, 0.9);
        let ((), _stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
            let mut client = Client::connect(addr).expect("connect");
            let response = client
                .call_raw(&body)
                .expect("every frame gets an answer, never a hangup");
            assert!(
                response.get("ok").is_some() || response.get("batch").is_some(),
                "unrecognized response shape: {response:?}"
            );
            client
                .call("ping", Json::Null)
                .expect("connection must survive a garbage body");
        });
    }

    /// A truncated length prefix (the peer dies mid-header): the server
    /// counts a protocol error, closes that connection without a
    /// response, and keeps serving new ones.
    #[test]
    fn truncated_length_prefix_closes_without_killing_the_server(
        prefix in proptest::collection::vec(0u8..=255u8, 1..4usize),
    ) {
        let graph = clique(4, 0.9);
        let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, core| {
            {
                use std::io::Write;
                let mut raw = TcpStream::connect(addr).expect("connect");
                raw.write_all(&prefix).expect("partial header");
                raw.shutdown(std::net::Shutdown::Write).ok();
                // The server closes without answering the broken frame.
                match read_frame(&mut raw) {
                    Ok(ReadOutcome::Closed) | Ok(ReadOutcome::Aborted) | Err(_) => {}
                    Ok(ReadOutcome::Frame(frame)) => {
                        panic!("unexpected response to a truncated header: {frame:?}")
                    }
                }
            }
            // The close above sequences after the counter bump, and a
            // fresh connection is served normally.
            assert_eq!(core.stats().protocol_errors, 1);
            let mut client = Client::connect(addr).expect("reconnect");
            client
                .call("ping", Json::Null)
                .expect("server must survive a truncated header");
        });
        prop_assert_eq!(stats.requests, 1); // just the follow-up ping
        prop_assert_eq!(stats.protocol_errors, 1);
    }
}

#[test]
fn oversized_declared_length_gets_bad_frame_then_close() {
    let graph = clique(4, 0.9);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        use std::io::Write;
        let mut raw = TcpStream::connect(addr).expect("connect");
        let declared = MAX_FRAME_LEN + 1;
        raw.write_all(&declared.to_le_bytes()).expect("header");
        // The typed answer arrives before the close: the declared body
        // can never be read, so the stream cannot be resynchronized.
        match read_frame(&mut raw).expect("a response frame") {
            ReadOutcome::Frame(bytes) => {
                let response = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
                assert_eq!(
                    response.path(&["error", "code"]).and_then(Json::as_str),
                    Some(ErrorCode::BadFrame.as_str())
                );
            }
            other => panic!("expected a bad-frame response, got {other:?}"),
        }
        match read_frame(&mut raw) {
            Ok(ReadOutcome::Closed) | Ok(ReadOutcome::Aborted) | Err(_) => {}
            Ok(ReadOutcome::Frame(f)) => panic!("connection must close, got {f:?}"),
        }
        // The server itself survives.
        let mut client = Client::connect(addr).expect("reconnect");
        client.call("ping", Json::Null).expect("server still alive");
    });
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 1);
}

/// ~50 KB of '[' is a well-formed frame far under the length cap whose
/// body would recurse tens of thousands of levels deep in an unbounded
/// parser.  It must come back as a typed `bad-json` answer on a live
/// connection — not overflow the worker stack and abort the process.
#[test]
fn deeply_nested_json_body_is_typed_not_a_stack_overflow() {
    let graph = clique(4, 0.9);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let bomb = "[".repeat(50_000).into_bytes();
        let response = client.call_raw(&bomb).expect("typed answer");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.path(&["error", "code"]).and_then(Json::as_str),
            Some(ErrorCode::BadJson.as_str())
        );
        client.call("ping", Json::Null).expect("connection alive");
    });
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 1);
}

/// A peer that sends two prefix bytes and then goes silent (without
/// hanging up) must not pin a worker past a shutdown request: the drain
/// counts it as a protocol error and `Server::run` still returns.
#[test]
fn stalled_partial_frame_does_not_hang_the_drain() {
    let graph = clique(4, 0.9);
    let core = ServerCore::new(graph, ServerConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&core)).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let mut raw = TcpStream::connect(addr).expect("connect");
    {
        use std::io::Write;
        raw.write_all(&[7, 0]).expect("partial header");
        // Keep `raw` open: no EOF ever arrives on the server side.
    }
    let stats = std::thread::scope(|s| {
        let runner = s.spawn(|| server.run());
        // Let the acceptor hand the stalled connection to a worker.
        std::thread::sleep(std::time::Duration::from_millis(200));
        core.request_shutdown();
        runner.join().expect("server thread must not panic")
    });
    drop(raw);
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 0);
}

/// With a single-worker pool, a peer that starts a frame and goes
/// silent would otherwise pin the only worker — and with it the ability
/// to even *request* a shutdown over the wire.  The frame-stall bound
/// must free the worker (counting a protocol error) so a later client
/// is served without any shutdown being involved.
#[test]
fn stalled_mid_frame_peer_cannot_pin_a_single_worker_pool() {
    let graph = clique(4, 0.9);
    let config = ServerConfig {
        parallelism: Parallelism::fixed(1),
        read_timeout: std::time::Duration::from_millis(5),
        frame_stall_timeout: std::time::Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let ((), stats) = with_server(&graph, config, |addr, _| {
        use std::io::Write;
        let mut stall = TcpStream::connect(addr).expect("connect");
        stall.write_all(&[7, 0]).expect("partial header");
        // Keep `stall` open and silent: no EOF, no further bytes.  The
        // ping below can only be answered once the worker gives up on
        // the stalled frame.
        let mut client = Client::connect(addr).expect("connect");
        client
            .call("ping", Json::Null)
            .expect("the stall bound must free the only worker");
        drop(stall);
    });
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 1);
}

#[test]
fn invalid_json_is_typed_and_does_not_kill_the_connection() {
    let graph = clique(4, 0.9);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let response = client.call_raw(b"{\"id\": 1, ").expect("typed answer");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.path(&["error", "code"]).and_then(Json::as_str),
            Some(ErrorCode::BadJson.as_str())
        );
        // Same connection keeps working.
        client.call("ping", Json::Null).expect("connection alive");
    });
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 1);
}

#[test]
fn unknown_method_and_wrong_rank_are_typed_errors() {
    let graph = clique(5, 0.8);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let err = client
            .call("frobnicate", Json::Null)
            .expect_err("unknown method fails");
        assert!(err.is_code(ErrorCode::UnknownMethod), "{err}");

        // Nuclei extraction needs the nucleus rank; a truss session gets
        // the typed wrong-rank error, not a panic or a wrong answer.
        let session = open_session(&mut client, "truss", &[0.1, 0.3]);
        let err = client
            .call(
                "k_nuclei_at",
                obj(vec![
                    ("session", Json::num(session)),
                    ("theta", Json::num(0.1)),
                    ("k", Json::num(1.0)),
                ]),
            )
            .expect_err("wrong rank fails");
        assert!(err.is_code(ErrorCode::WrongRank), "{err}");
    });
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.request_errors, 2);
}

/// Six concurrent connections, two per rank, every answer compared
/// bit-for-bit against the direct library call — and the support built
/// once per rank no matter how the connections race.
#[test]
fn concurrent_sessions_are_bit_identical_to_library_calls() {
    let graph = clique(6, 0.8);
    let thetas = vec![0.1, 0.3];

    let truth: Vec<(Rank, DecompSweep)> = [Rank::Nucleus, Rank::Core, Rank::Truss]
        .into_iter()
        .map(|rank| {
            let sweep =
                DecompSweep::compute(&graph, &SweepConfig::exact(thetas.clone()).with_rank(rank))
                    .expect("valid sweep");
            (rank, sweep)
        })
        .collect();

    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        std::thread::scope(|s| {
            for worker in 0..6 {
                let truth = &truth;
                let thetas = &thetas;
                s.spawn(move || {
                    let (rank, sweep) = &truth[worker % truth.len()];
                    let mut client = Client::connect(addr).expect("connect");
                    let session = open_session(&mut client, rank.as_str(), thetas);
                    for &theta in thetas {
                        let wire = scores_at(&mut client, session, theta);
                        let wire_scores: Vec<u32> = wire
                            .get("scores")
                            .and_then(Json::as_array)
                            .expect("scores array")
                            .iter()
                            .map(|v| v.as_f64().unwrap() as u32)
                            .collect();
                        assert_eq!(
                            Some(wire_scores.as_slice()),
                            sweep.scores_at(theta),
                            "worker {worker} diverged at rank {rank} theta {theta}"
                        );
                    }
                });
            }
        });
    });
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.request_errors, 0);
    // One support per distinct rank, however the six connections raced.
    assert_eq!(stats.support_builds, 3);
    assert_eq!(stats.sessions_opened, 6);
    // 3 ranks x 2 thetas distinct cache keys; the second connection of
    // each rank hits on both points (the first arrival marks the key
    // in-flight and is the counted miss, a racing arrival waits and
    // takes the hit, so the split is deterministic even under races).
    assert_eq!(stats.cache_misses, 6);
    assert_eq!(stats.cache_hits, 6);
}

#[test]
fn capacity_one_cache_counts_evictions_deterministically() {
    let graph = clique(5, 0.8);
    let config = ServerConfig {
        cache_capacity: 1,
        ..ServerConfig::default()
    };
    let ((), stats) = with_server(&graph, config, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let session = open_session(&mut client, "nucleus", &[0.1, 0.3]);
        // miss(0.1); miss(0.3) evicting 0.1; miss(0.1) evicting 0.3;
        // hit(0.1).
        scores_at(&mut client, session, 0.1);
        scores_at(&mut client, session, 0.3);
        scores_at(&mut client, session, 0.1);
        scores_at(&mut client, session, 0.1);
    });
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.cache_evictions, 2);
    assert_eq!(stats.cache_hits, 1);
}

#[test]
fn batches_answer_in_request_order_and_drain_past_shutdown() {
    let graph = clique(5, 0.8);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        // One frame: ping, shutdown, ping.  Drain semantics answer the
        // whole batch — the first ping normally, the post-shutdown ping
        // with the typed shutting-down refusal, all in request order.
        let results = client
            .call_batch(&[
                ("ping", Json::Null),
                ("shutdown", Json::Null),
                ("ping", Json::Null),
            ])
            .expect("batch answered");
        assert_eq!(results.len(), 3);
        assert!(
            matches!(&results[0], Ok(r) if r.get("pong").and_then(Json::as_bool) == Some(true)),
            "first ping must succeed: {:?}",
            results[0]
        );
        assert!(
            matches!(&results[1], Ok(r)
                if r.get("shutting_down").and_then(Json::as_bool) == Some(true)),
            "shutdown must be acknowledged: {:?}",
            results[1]
        );
        assert!(
            matches!(&results[2], Err(e) if e.is_code(ErrorCode::ShuttingDown)),
            "post-shutdown call must get the typed refusal: {:?}",
            results[2]
        );
    });
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.request_errors, 1);
}

/// An update batch racing a pack of query threads: every answer must be
/// bit-identical to the pre-update sweep or to the post-update sweep —
/// never a mix of the two worlds, never a torn vector — and once every
/// thread has joined, fresh queries answer about the updated graph.
#[test]
fn concurrent_updates_and_queries_are_never_torn() {
    let graph = clique(6, 0.8);
    let thetas = vec![0.1, 0.3];
    let batch = vec![EdgeUpdate::Delete { u: 4, v: 5 }];
    let post_graph = apply_edge_updates(&graph, &batch).unwrap().graph;
    let pre = DecompSweep::compute(&graph, &SweepConfig::exact(thetas.clone())).unwrap();
    let post = DecompSweep::compute(&post_graph, &SweepConfig::exact(thetas.clone())).unwrap();

    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (pre, post, thetas) = (&pre, &post, &thetas);
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let session = open_session(&mut client, "nucleus", thetas);
                    for round in 0..30 {
                        let theta = thetas[round % thetas.len()];
                        let wire = wire_scores(&scores_at(&mut client, session, theta));
                        let pre_scores = pre.scores_at(theta).unwrap();
                        let post_scores = post.scores_at(theta).unwrap();
                        assert!(
                            wire.as_slice() == pre_scores || wire.as_slice() == post_scores,
                            "torn answer at theta {theta}: {wire:?}"
                        );
                    }
                });
            }
            s.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                std::thread::sleep(std::time::Duration::from_millis(30));
                apply_updates(&mut client, vec![update_item("delete", 4, 5, None)])
                    .expect("the update batch applies");
            });
        });
        let mut client = Client::connect(addr).expect("connect");
        let session = open_session(&mut client, "nucleus", &thetas);
        let settled = wire_scores(&scores_at(&mut client, session, thetas[0]));
        assert_eq!(settled.as_slice(), post.scores_at(thetas[0]).unwrap());
    });
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.updates_applied, 1);
    assert_eq!(stats.supports_repaired, 1);
    assert_eq!(stats.support_builds, 1);
}

/// Sequential updates invalidate exactly the resident cache entries of
/// the rank they touch, with counts echoed in the response and in the
/// drained stats at tolerance 0.
#[test]
fn cache_invalidation_counts_are_deterministic() {
    let graph = clique(5, 0.8);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let session = open_session(&mut client, "truss", &[0.1, 0.3]);
        // Two misses make both grid points resident.
        scores_at(&mut client, session, 0.1);
        scores_at(&mut client, session, 0.3);
        // The first update drops both resident points.
        let applied = apply_updates(&mut client, vec![update_item("reweight", 0, 1, Some(0.4))])
            .expect("reweight applies");
        assert_eq!(
            applied.get("cache_invalidations").and_then(Json::as_f64),
            Some(2.0),
            "{applied:?}"
        );
        assert_eq!(
            applied.get("repaired_ranks").and_then(Json::as_f64),
            Some(1.0)
        );
        // Re-materialize one point; the second update drops exactly it.
        scores_at(&mut client, session, 0.1);
        let applied = apply_updates(&mut client, vec![update_item("delete", 0, 1, None)])
            .expect("delete applies");
        assert_eq!(
            applied.get("cache_invalidations").and_then(Json::as_f64),
            Some(1.0),
            "{applied:?}"
        );
        // Both points recompute against the twice-updated world.
        scores_at(&mut client, session, 0.1);
        scores_at(&mut client, session, 0.3);
    });
    assert_eq!(stats.cache_misses, 5);
    assert_eq!(stats.cache_invalidations, 3);
    assert_eq!(stats.updates_applied, 2);
    assert_eq!(stats.supports_repaired, 2);
    assert_eq!(stats.support_builds, 1);
    assert_eq!(stats.request_errors, 0);
}

/// Malformed update bodies are typed `invalid-params`, semantically
/// invalid batches are typed `update-rejected`, and neither kills the
/// connection, mutates the world, or counts a repair.
#[test]
fn malformed_update_bodies_are_typed_and_the_server_survives() {
    let graph = clique(4, 0.9);
    let ((), stats) = with_server(&graph, ServerConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        // Shape problems: invalid-params.
        let shape_errors = [
            client
                .call("apply_updates", Json::Null)
                .expect_err("missing updates"),
            client
                .call("apply_updates", obj(vec![("updates", Json::num(7.0))]))
                .expect_err("updates not an array"),
            apply_updates(&mut client, vec![]).expect_err("empty batch"),
            apply_updates(&mut client, vec![obj(vec![("u", Json::num(0.0))])])
                .expect_err("missing op"),
            apply_updates(&mut client, vec![update_item("insert", 0, 2, None)])
                .expect_err("insert without p"),
            apply_updates(&mut client, vec![update_item("smite", 0, 1, None)])
                .expect_err("unknown op"),
        ];
        for e in shape_errors {
            assert!(e.is_code(ErrorCode::InvalidParams), "{e}");
        }
        // Semantic problems against the resident graph: update-rejected.
        let semantic_errors = [
            apply_updates(&mut client, vec![update_item("insert", 0, 1, Some(0.5))])
                .expect_err("edge exists"),
            apply_updates(&mut client, vec![update_item("delete", 0, 99, None)])
                .expect_err("off-graph endpoint"),
            apply_updates(&mut client, vec![update_item("delete", 2, 2, None)])
                .expect_err("self-loop"),
            apply_updates(&mut client, vec![update_item("insert", 0, 1, Some(0.0))])
                .expect_err("zero probability"),
        ];
        for e in semantic_errors {
            assert!(e.is_code(ErrorCode::UpdateRejected), "{e}");
        }
        // The connection and the world both survive: a normal session
        // still answers over the unchanged graph.
        client.call("ping", Json::Null).expect("connection alive");
        let session = open_session(&mut client, "core", &[0.2, 0.5]);
        scores_at(&mut client, session, 0.2);
    });
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.request_errors, 10);
    assert_eq!(stats.updates_applied, 0);
    assert_eq!(stats.supports_repaired, 0);
    assert_eq!(stats.cache_invalidations, 0);
}
