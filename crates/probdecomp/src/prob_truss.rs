//! Probabilistic local (k,γ)-truss decomposition (Huang, Lu, Lakshmanan,
//! SIGMOD 2016).
//!
//! For an edge `e = (u, v)`, let `X_e` be the number of triangles through
//! `e` in a sampled possible world.  A triangle through `e` and a common
//! neighbour `w` exists when the three edges `(u,v)`, `(u,w)`, `(v,w)` all
//! exist, so `Pr[X_e ≥ k] = p(u,v) · Pr[ζ ≥ k]` where `ζ` is the
//! Poisson-binomial sum of the independent wedge events
//! `p(u,w)·p(v,w)` over the common neighbours `w`.
//!
//! The γ-support of `e` is the largest `k` with `Pr[X_e ≥ k] ≥ γ`; the
//! local (k,γ)-truss is a maximal subgraph in which every edge has
//! γ-support ≥ k, and the probabilistic truss number of `e` is the largest
//! such `k`.  The decomposition peels edges of minimum γ-support and
//! recomputes the support of edges that shared a triangle with the peeled
//! edge, mirroring Algorithm 1 of the nucleus paper one level down.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ugraph::{ConnectedComponents, EdgeId, EdgeSubgraph, UncertainGraph};

use crate::poisson_binomial::threshold_score;

/// Result of the probabilistic local (k,γ)-truss decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GammaTrussDecomposition {
    truss_numbers: Vec<u32>,
}

impl GammaTrussDecomposition {
    /// Runs the decomposition with probability threshold `gamma`.
    pub fn compute(graph: &UncertainGraph, gamma: f64) -> Self {
        let m = graph.num_edges();
        let mut alive = vec![true; m];
        let mut score = vec![0u32; m];

        let gamma_support = |graph: &UncertainGraph, e: EdgeId, alive: &[bool]| -> u32 {
            let edge = graph.edge(e);
            let (u, v) = (edge.u, edge.v);
            let mut wedge_probs = Vec::new();
            for w in graph.common_neighbors(u, v) {
                let euw = graph.edge_id(u, w).expect("edge exists");
                let evw = graph.edge_id(v, w).expect("edge exists");
                if alive[euw as usize] && alive[evw as usize] {
                    wedge_probs.push(graph.edge(euw).p * graph.edge(evw).p);
                }
            }
            threshold_score(&wedge_probs, edge.p, gamma).unwrap_or(0)
        };

        for (e, s) in score.iter_mut().enumerate() {
            *s = gamma_support(graph, e as EdgeId, &alive);
        }

        let mut heap: BinaryHeap<Reverse<(u32, EdgeId)>> =
            (0..m).map(|e| Reverse((score[e], e as EdgeId))).collect();
        let mut truss = vec![0u32; m];
        let mut level = 0u32;

        while let Some(Reverse((s, e))) = heap.pop() {
            let ei = e as usize;
            if !alive[ei] || s != score[ei] {
                continue;
            }
            alive[ei] = false;
            level = level.max(s);
            truss[ei] = level;
            let edge = graph.edge(e);
            let (u, v) = (edge.u, edge.v);
            for w in graph.common_neighbors(u, v) {
                let euw = graph.edge_id(u, w).expect("edge exists");
                let evw = graph.edge_id(v, w).expect("edge exists");
                if !alive[euw as usize] || !alive[evw as usize] {
                    continue;
                }
                for f in [euw, evw] {
                    let fi = f as usize;
                    if score[fi] > level {
                        let new_score = gamma_support(graph, f, &alive).max(level);
                        if new_score < score[fi] {
                            score[fi] = new_score;
                            heap.push(Reverse((new_score, f)));
                        }
                    }
                }
            }
        }
        GammaTrussDecomposition {
            truss_numbers: truss,
        }
    }

    /// Probabilistic truss number of edge `e`.
    pub fn truss_number(&self, e: EdgeId) -> u32 {
        self.truss_numbers[e as usize]
    }

    /// Probabilistic truss numbers of all edges.
    pub fn truss_numbers(&self) -> &[u32] {
        &self.truss_numbers
    }

    /// Largest probabilistic truss number in the graph.
    pub fn max_truss(&self) -> u32 {
        self.truss_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Edges whose probabilistic truss number is at least `k`.
    pub fn edges_in_truss(&self, k: u32) -> Vec<EdgeId> {
        self.truss_numbers
            .iter()
            .enumerate()
            .filter_map(|(e, &t)| (t >= k).then_some(e as EdgeId))
            .collect()
    }
}

/// Extracts the maximal connected (k,γ)-truss subgraphs of `graph`.
pub fn gamma_truss_subgraphs(graph: &UncertainGraph, k: u32, gamma: f64) -> Vec<EdgeSubgraph> {
    let decomp = GammaTrussDecomposition::compute(graph, gamma);
    let edges = decomp.edges_in_truss(k);
    if edges.is_empty() {
        return Vec::new();
    }
    let sub = EdgeSubgraph::induced_by_edges(graph, &edges);
    let components = ConnectedComponents::new(sub.graph());
    components
        .vertex_sets()
        .into_iter()
        .filter(|set| set.len() > 2)
        .map(|set| {
            let original: Vec<_> = set.iter().map(|&v| sub.original_vertex(v)).collect();
            let comp_edges: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|&e| {
                    let edge = graph.edge(e);
                    original.contains(&edge.u) && original.contains(&edge.v)
                })
                .collect();
            EdgeSubgraph::induced_by_edges(graph, &comp_edges)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    /// Deterministic truss numbers via naive iterative filtering (support
    /// convention), for the all-probability-one sanity check.
    fn naive_det_truss(graph: &UncertainGraph) -> Vec<u32> {
        let m = graph.num_edges();
        let mut truss = vec![0u32; m];
        for k in 1..=graph.max_degree() as u32 {
            let mut alive = vec![true; m];
            loop {
                let mut changed = false;
                for e in 0..m {
                    if !alive[e] {
                        continue;
                    }
                    let edge = graph.edge(e as EdgeId);
                    let sup = graph
                        .common_neighbors(edge.u, edge.v)
                        .iter()
                        .filter(|&&w| {
                            alive[graph.edge_id(edge.u, w).unwrap() as usize]
                                && alive[graph.edge_id(edge.v, w).unwrap() as usize]
                        })
                        .count() as u32;
                    if sup < k {
                        alive[e] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for e in 0..m {
                if alive[e] {
                    truss[e] = k;
                }
            }
        }
        truss
    }

    #[test]
    fn certain_graph_matches_deterministic_truss() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        let edges = ugraph::generators::gnm_edges(25, 100, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            25,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let prob = GammaTrussDecomposition::compute(&g, 0.6);
        let det = naive_det_truss(&g);
        assert_eq!(prob.truss_numbers(), det.as_slice());
    }

    #[test]
    fn empty_and_triangle_free_graphs() {
        let g = UncertainGraph::empty(4);
        let d = GammaTrussDecomposition::compute(&g, 0.5);
        assert_eq!(d.max_truss(), 0);

        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        let path = b.build();
        let d = GammaTrussDecomposition::compute(&path, 0.5);
        assert!(d.truss_numbers().iter().all(|&t| t == 0));
        assert!(gamma_truss_subgraphs(&path, 1, 0.5).is_empty());
    }

    #[test]
    fn gamma_truss_number_decreases_with_gamma() {
        let g = complete(6, 0.7);
        let loose = GammaTrussDecomposition::compute(&g, 0.05);
        let tight = GammaTrussDecomposition::compute(&g, 0.9);
        for e in 0..g.num_edges() {
            assert!(loose.truss_number(e as EdgeId) >= tight.truss_number(e as EdgeId));
        }
    }

    #[test]
    fn gamma_truss_never_exceeds_deterministic_truss() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let edges = ugraph::generators::gnm_edges(20, 90, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            20,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.3,
                high: 1.0,
            },
            &mut rng,
        );
        let prob = GammaTrussDecomposition::compute(&g, 0.3);
        let det = naive_det_truss(&g);
        for (e, &d) in det.iter().enumerate() {
            assert!(prob.truss_numbers()[e] <= d);
        }
    }

    #[test]
    fn single_triangle_support() {
        // One triangle with p = 0.8 everywhere.
        // Pr[X_e >= 1] = 0.8 * 0.64 = 0.512.
        let g = complete(3, 0.8);
        let d1 = GammaTrussDecomposition::compute(&g, 0.5);
        assert!(d1.truss_numbers().iter().all(|&t| t == 1));
        let d2 = GammaTrussDecomposition::compute(&g, 0.6);
        assert!(d2.truss_numbers().iter().all(|&t| t == 0));
    }

    #[test]
    fn subgraph_extraction_keeps_dense_component() {
        // A K5 with strong probabilities plus a weak triangle attached.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 0.95).unwrap();
            }
        }
        b.add_edge(4, 5, 0.2).unwrap();
        b.add_edge(4, 6, 0.2).unwrap();
        b.add_edge(5, 6, 0.2).unwrap();
        let g = b.build();
        let decomp = GammaTrussDecomposition::compute(&g, 0.5);
        let k = decomp.max_truss();
        assert!(k >= 2);
        let trusses = gamma_truss_subgraphs(&g, k, 0.5);
        assert_eq!(trusses.len(), 1);
        assert_eq!(trusses[0].num_vertices(), 5);
        assert_eq!(trusses[0].num_edges(), 10);
    }

    #[test]
    fn max_truss_and_edge_listing() {
        let g = complete(5, 0.9);
        let d = GammaTrussDecomposition::compute(&g, 0.3);
        assert!(d.max_truss() >= 2);
        assert_eq!(d.edges_in_truss(0).len(), 10);
        assert!(d.edges_in_truss(d.max_truss() + 1).is_empty());
    }
}
