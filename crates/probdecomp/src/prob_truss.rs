//! Probabilistic local (k,γ)-truss decomposition (Huang, Lu, Lakshmanan,
//! SIGMOD 2016).
//!
//! For an edge `e = (u, v)`, let `X_e` be the number of triangles through
//! `e` in a sampled possible world.  A triangle through `e` and a common
//! neighbour `w` exists when the three edges `(u,v)`, `(u,w)`, `(v,w)` all
//! exist, so `Pr[X_e ≥ k] = p(u,v) · Pr[ζ ≥ k]` where `ζ` is the
//! Poisson-binomial sum of the independent wedge events
//! `p(u,w)·p(v,w)` over the common neighbours `w`.
//!
//! The γ-support of `e` is the largest `k` with `Pr[X_e ≥ k] ≥ γ`; the
//! local (k,γ)-truss is a maximal subgraph in which every edge has
//! γ-support ≥ k, and the probabilistic truss number of `e` is the largest
//! such `k`.
//!
//! Since the (r,s)-nucleus API redesign this type is a thin wrapper over
//! the rank-generic peeling engine:
//! [`GammaTrussDecomposition::try_compute`] delegates to
//! [`nucleus::Decomposition`] at [`nucleus::Rank::Truss`], which peels
//! edges with the shared bucket-queue engine in `ugraph::rs`.  The
//! historical eager heap-based peel is frozen in
//! [`crate::reference::gamma_truss_numbers`] and the two are pinned
//! bit-identical by the differential test suite.

use nucleus::{DecompConfig, Decomposition};
use ugraph::{ConnectedComponents, EdgeId, EdgeSubgraph, UncertainGraph};

/// Result of the probabilistic local (k,γ)-truss decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GammaTrussDecomposition {
    truss_numbers: Vec<u32>,
}

impl GammaTrussDecomposition {
    /// Runs the decomposition with probability threshold `gamma`,
    /// rejecting out-of-range thresholds (`gamma ∉ (0, 1]` or NaN) with a
    /// typed [`nucleus::NucleusError::InvalidThreshold`].
    pub fn try_compute(graph: &UncertainGraph, gamma: f64) -> nucleus::Result<Self> {
        let decomp = Decomposition::compute(graph, &DecompConfig::truss(gamma))?;
        Ok(GammaTrussDecomposition {
            truss_numbers: decomp.scores().to_vec(),
        })
    }

    /// Runs the decomposition with probability threshold `gamma`.
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is outside `(0, 1]` or NaN.  The historical
    /// behaviour was to silently produce degenerate scores; migrate to
    /// [`GammaTrussDecomposition::try_compute`] to handle the typed error
    /// instead.
    #[deprecated(
        since = "0.1.0",
        note = "use `GammaTrussDecomposition::try_compute`, which returns a typed \
                `nucleus::NucleusError` for invalid thresholds instead of panicking"
    )]
    pub fn compute(graph: &UncertainGraph, gamma: f64) -> Self {
        match Self::try_compute(graph, gamma) {
            Ok(decomp) => decomp,
            Err(e) => panic!("GammaTrussDecomposition::compute: {e}"),
        }
    }

    /// Probabilistic truss number of edge `e`.
    pub fn truss_number(&self, e: EdgeId) -> u32 {
        self.truss_numbers[e as usize]
    }

    /// Probabilistic truss numbers of all edges.
    pub fn truss_numbers(&self) -> &[u32] {
        &self.truss_numbers
    }

    /// Largest probabilistic truss number in the graph.
    pub fn max_truss(&self) -> u32 {
        self.truss_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Edges whose probabilistic truss number is at least `k`.
    pub fn edges_in_truss(&self, k: u32) -> Vec<EdgeId> {
        self.truss_numbers
            .iter()
            .enumerate()
            .filter_map(|(e, &t)| (t >= k).then_some(e as EdgeId))
            .collect()
    }
}

/// Extracts the maximal connected (k,γ)-truss subgraphs of `graph`,
/// rejecting out-of-range `gamma` with a typed error.
pub fn gamma_truss_subgraphs(
    graph: &UncertainGraph,
    k: u32,
    gamma: f64,
) -> nucleus::Result<Vec<EdgeSubgraph>> {
    let decomp = GammaTrussDecomposition::try_compute(graph, gamma)?;
    let edges = decomp.edges_in_truss(k);
    if edges.is_empty() {
        return Ok(Vec::new());
    }
    let sub = EdgeSubgraph::induced_by_edges(graph, &edges);
    let components = ConnectedComponents::new(sub.graph());
    Ok(components
        .vertex_sets()
        .into_iter()
        .filter(|set| set.len() > 2)
        .map(|set| {
            let original: Vec<_> = set.iter().map(|&v| sub.original_vertex(v)).collect();
            let comp_edges: Vec<EdgeId> = edges
                .iter()
                .copied()
                .filter(|&e| {
                    let edge = graph.edge(e);
                    original.contains(&edge.u) && original.contains(&edge.v)
                })
                .collect();
            EdgeSubgraph::induced_by_edges(graph, &comp_edges)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    /// Deterministic truss numbers via naive iterative filtering (support
    /// convention), for the all-probability-one sanity check.
    fn naive_det_truss(graph: &UncertainGraph) -> Vec<u32> {
        let m = graph.num_edges();
        let mut truss = vec![0u32; m];
        for k in 1..=graph.max_degree() as u32 {
            let mut alive = vec![true; m];
            loop {
                let mut changed = false;
                for e in 0..m {
                    if !alive[e] {
                        continue;
                    }
                    let edge = graph.edge(e as EdgeId);
                    let sup = graph
                        .common_neighbors(edge.u, edge.v)
                        .iter()
                        .filter(|&&w| {
                            alive[graph.edge_id(edge.u, w).unwrap() as usize]
                                && alive[graph.edge_id(edge.v, w).unwrap() as usize]
                        })
                        .count() as u32;
                    if sup < k {
                        alive[e] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for e in 0..m {
                if alive[e] {
                    truss[e] = k;
                }
            }
        }
        truss
    }

    #[test]
    fn certain_graph_matches_deterministic_truss() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        let edges = ugraph::generators::gnm_edges(25, 100, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            25,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let prob = GammaTrussDecomposition::try_compute(&g, 0.6).unwrap();
        let det = naive_det_truss(&g);
        assert_eq!(prob.truss_numbers(), det.as_slice());
    }

    #[test]
    fn try_compute_matches_frozen_reference() {
        let g = complete(6, 0.7);
        let new = GammaTrussDecomposition::try_compute(&g, 0.2).unwrap();
        assert_eq!(
            new.truss_numbers(),
            crate::reference::gamma_truss_numbers(&g, 0.2).as_slice()
        );
    }

    #[test]
    fn malformed_gamma_is_rejected_with_typed_error() {
        let g = complete(4, 0.9);
        for bad in [0.0, -1.0, 2.0, f64::NAN] {
            match GammaTrussDecomposition::try_compute(&g, bad) {
                Err(nucleus::NucleusError::InvalidThreshold {
                    name: "gamma",
                    value,
                }) => {
                    assert!(value.is_nan() == bad.is_nan() && (bad.is_nan() || value == bad));
                }
                other => panic!("gamma={bad} should be rejected, got {other:?}"),
            }
            assert!(gamma_truss_subgraphs(&g, 1, bad).is_err());
        }
    }

    #[test]
    fn empty_and_triangle_free_graphs() {
        let g = UncertainGraph::empty(4);
        let d = GammaTrussDecomposition::try_compute(&g, 0.5).unwrap();
        assert_eq!(d.max_truss(), 0);

        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        let path = b.build();
        let d = GammaTrussDecomposition::try_compute(&path, 0.5).unwrap();
        assert!(d.truss_numbers().iter().all(|&t| t == 0));
        assert!(gamma_truss_subgraphs(&path, 1, 0.5).unwrap().is_empty());
    }

    #[test]
    fn gamma_truss_number_decreases_with_gamma() {
        let g = complete(6, 0.7);
        let loose = GammaTrussDecomposition::try_compute(&g, 0.05).unwrap();
        let tight = GammaTrussDecomposition::try_compute(&g, 0.9).unwrap();
        for e in 0..g.num_edges() {
            assert!(loose.truss_number(e as EdgeId) >= tight.truss_number(e as EdgeId));
        }
    }

    #[test]
    fn gamma_truss_never_exceeds_deterministic_truss() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let edges = ugraph::generators::gnm_edges(20, 90, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            20,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.3,
                high: 1.0,
            },
            &mut rng,
        );
        let prob = GammaTrussDecomposition::try_compute(&g, 0.3).unwrap();
        let det = naive_det_truss(&g);
        for (e, &d) in det.iter().enumerate() {
            assert!(prob.truss_numbers()[e] <= d);
        }
    }

    #[test]
    fn single_triangle_support() {
        // One triangle with p = 0.8 everywhere.
        // Pr[X_e >= 1] = 0.8 * 0.64 = 0.512.
        let g = complete(3, 0.8);
        let d1 = GammaTrussDecomposition::try_compute(&g, 0.5).unwrap();
        assert!(d1.truss_numbers().iter().all(|&t| t == 1));
        let d2 = GammaTrussDecomposition::try_compute(&g, 0.6).unwrap();
        assert!(d2.truss_numbers().iter().all(|&t| t == 0));
    }

    #[test]
    fn subgraph_extraction_keeps_dense_component() {
        // A K5 with strong probabilities plus a weak triangle attached.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 0.95).unwrap();
            }
        }
        b.add_edge(4, 5, 0.2).unwrap();
        b.add_edge(4, 6, 0.2).unwrap();
        b.add_edge(5, 6, 0.2).unwrap();
        let g = b.build();
        let decomp = GammaTrussDecomposition::try_compute(&g, 0.5).unwrap();
        let k = decomp.max_truss();
        assert!(k >= 2);
        let trusses = gamma_truss_subgraphs(&g, k, 0.5).unwrap();
        assert_eq!(trusses.len(), 1);
        assert_eq!(trusses[0].num_vertices(), 5);
        assert_eq!(trusses[0].num_edges(), 10);
    }

    #[test]
    fn max_truss_and_edge_listing() {
        let g = complete(5, 0.9);
        let d = GammaTrussDecomposition::try_compute(&g, 0.3).unwrap();
        assert!(d.max_truss() >= 2);
        assert_eq!(d.edges_in_truss(0).len(), 10);
        assert!(d.edges_in_truss(d.max_truss() + 1).is_empty());
    }
}
