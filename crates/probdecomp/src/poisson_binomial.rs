//! Poisson-binomial distribution utilities.
//!
//! Let `E_1, …, E_n` be independent Bernoulli variables with success
//! probabilities `p_1, …, p_n` and `ζ = Σ E_i`.  Both baseline
//! decompositions need the maximum `k` such that `Pr[ζ ≥ k] ≥ θ`:
//! for the (k,η)-core `E_i` are incident edges of a vertex, for the
//! (k,γ)-truss they are the wedge pairs closing a triangle over an edge.
//!
//! The probability mass function is computed with the standard `O(n·k)`
//! dynamic program (iterative convolution), the same recurrence the paper
//! uses for the nucleus case (Equation 7).

/// Probability mass function of the Poisson-binomial distribution with
/// the given success probabilities.  Entry `k` of the result is
/// `Pr[ζ = k]`, for `k = 0..=n`.
pub fn poisson_binomial_pmf(probs: &[f64]) -> Vec<f64> {
    let n = probs.len();
    let mut pmf = vec![0.0f64; n + 1];
    pmf[0] = 1.0;
    for (j, &p) in probs.iter().enumerate() {
        // Process counts downwards so each E_j is used once.
        for k in (0..=j + 1).rev() {
            let stay = if k <= j { pmf[k] * (1.0 - p) } else { 0.0 };
            let up = if k > 0 { pmf[k - 1] * p } else { 0.0 };
            pmf[k] = stay + up;
        }
    }
    pmf
}

/// Tail probabilities of the Poisson-binomial distribution.  Entry `k` of
/// the result is `Pr[ζ ≥ k]`, for `k = 0..=n` (entry 0 is always 1).
pub fn poisson_binomial_tail(probs: &[f64]) -> Vec<f64> {
    let pmf = poisson_binomial_pmf(probs);
    let mut tail = vec![0.0f64; pmf.len()];
    let mut acc = 0.0;
    for k in (0..pmf.len()).rev() {
        acc += pmf[k];
        tail[k] = acc.min(1.0);
    }
    tail
}

/// The largest `k` such that `scale · Pr[ζ ≥ k] ≥ threshold`, or `None`
/// when even `k = 0` fails (i.e. `scale < threshold`).
///
/// `scale` is the probability of the conditioning element itself — the
/// edge for the truss case, `1.0` for the core case — matching
/// Proposition 5.1 of the paper where the tail is multiplied by `Pr(△)`.
pub fn threshold_score(probs: &[f64], scale: f64, threshold: f64) -> Option<u32> {
    let tail = poisson_binomial_tail(probs);
    let mut best: Option<u32> = None;
    for (k, &t) in tail.iter().enumerate() {
        if scale * t >= threshold {
            best = Some(k as u32);
        } else {
            break; // tails are non-increasing in k
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn pmf_of_empty_set() {
        let pmf = poisson_binomial_pmf(&[]);
        assert_eq!(pmf, vec![1.0]);
    }

    #[test]
    fn pmf_single_bernoulli() {
        let pmf = poisson_binomial_pmf(&[0.3]);
        assert_close(pmf[0], 0.7);
        assert_close(pmf[1], 0.3);
    }

    #[test]
    fn pmf_matches_binomial_for_identical_probs() {
        let p = 0.4;
        let n = 6;
        let probs = vec![p; n];
        let pmf = poisson_binomial_pmf(&probs);
        for (k, &mass) in pmf.iter().enumerate() {
            let binom = binomial(n, k) as f64 * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
            assert_close(mass, binom);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let probs = [0.1, 0.9, 0.5, 0.33, 0.77];
        let pmf = poisson_binomial_pmf(&probs);
        assert_close(pmf.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn pmf_matches_exhaustive_enumeration() {
        let probs = [0.2, 0.5, 0.8, 0.3];
        let pmf = poisson_binomial_pmf(&probs);
        // Enumerate all 2^4 outcomes.
        let mut expected = [0.0f64; 5];
        for mask in 0u32..16 {
            let mut p = 1.0;
            let mut count = 0usize;
            for (i, &pi) in probs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pi;
                    count += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            expected[count] += p;
        }
        for k in 0..5 {
            assert_close(pmf[k], expected[k]);
        }
    }

    #[test]
    fn tail_is_monotone_and_starts_at_one() {
        let probs = [0.3, 0.6, 0.2, 0.9];
        let tail = poisson_binomial_tail(&probs);
        assert_close(tail[0], 1.0);
        for w in tail.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
    }

    #[test]
    fn threshold_score_basic() {
        // Two certain events: Pr[ζ ≥ 2] = 1.
        assert_eq!(threshold_score(&[1.0, 1.0], 1.0, 0.9), Some(2));
        // Pr[ζ ≥ 1] for p = 0.5, 0.5 is 0.75.
        assert_eq!(threshold_score(&[0.5, 0.5], 1.0, 0.75), Some(1));
        assert_eq!(threshold_score(&[0.5, 0.5], 1.0, 0.76), Some(0));
        // Scale below the threshold: nothing qualifies.
        assert_eq!(threshold_score(&[0.5], 0.1, 0.2), None);
        // Empty probability set with qualifying scale gives k = 0.
        assert_eq!(threshold_score(&[], 1.0, 0.5), Some(0));
    }

    #[test]
    fn threshold_score_respects_scale() {
        // Pr[ζ ≥ 1] = 0.96 for two 0.8s; with scale 0.5 the product is 0.48.
        assert_eq!(threshold_score(&[0.8, 0.8], 0.5, 0.5), Some(0));
        assert_eq!(threshold_score(&[0.8, 0.8], 0.5, 0.45), Some(1));
    }

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }
}
