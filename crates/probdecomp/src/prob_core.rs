//! Probabilistic (k,η)-core decomposition (Bonchi et al., KDD 2014).
//!
//! The η-degree of a vertex `v` in a probabilistic graph is the largest
//! `k` such that `Pr[deg(v) ≥ k] ≥ η`, where the degree is taken over
//! sampled possible worlds.  A (k,η)-core is a maximal subgraph in which
//! every vertex has η-degree ≥ k *within the subgraph*; the η-core number
//! of a vertex is the largest `k` for which it belongs to a (k,η)-core.
//!
//! The decomposition peels vertices in non-decreasing order of their
//! current η-degree, recomputing the η-degree of the neighbours of a
//! peeled vertex over their still-alive incident edges — the probabilistic
//! analogue of the Batagelj–Zaveršnik algorithm.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ugraph::{ConnectedComponents, EdgeSubgraph, UncertainGraph, VertexId};

use crate::poisson_binomial::threshold_score;

/// Result of the probabilistic (k,η)-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EtaCoreDecomposition {
    eta_core_numbers: Vec<u32>,
}

impl EtaCoreDecomposition {
    /// Runs the decomposition with probability threshold `eta`.
    pub fn compute(graph: &UncertainGraph, eta: f64) -> Self {
        let n = graph.num_vertices();
        let mut alive = vec![true; n];
        let mut score = vec![0u32; n];

        let eta_degree = |graph: &UncertainGraph, v: VertexId, alive: &[bool]| -> u32 {
            let probs: Vec<f64> = graph
                .neighbor_entries(v)
                .filter(|(w, _, _)| alive[*w as usize])
                .map(|(_, p, _)| p)
                .collect();
            threshold_score(&probs, 1.0, eta).unwrap_or(0)
        };

        for v in 0..n as VertexId {
            score[v as usize] = eta_degree(graph, v, &alive);
        }

        let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> =
            (0..n).map(|v| Reverse((score[v], v as VertexId))).collect();
        let mut core = vec![0u32; n];
        let mut level = 0u32;

        while let Some(Reverse((s, v))) = heap.pop() {
            let vi = v as usize;
            if !alive[vi] || s != score[vi] {
                continue;
            }
            alive[vi] = false;
            level = level.max(s);
            core[vi] = level;
            for &u in graph.neighbors(v) {
                let ui = u as usize;
                if !alive[ui] {
                    continue;
                }
                let new_score = eta_degree(graph, u, &alive);
                // Scores never rise above the current peeling level when
                // they are already below it.
                let new_score = new_score.max(level.min(score[ui]));
                if new_score < score[ui] {
                    score[ui] = new_score;
                    heap.push(Reverse((new_score, u)));
                }
            }
        }
        EtaCoreDecomposition {
            eta_core_numbers: core,
        }
    }

    /// η-core number of vertex `v`.
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.eta_core_numbers[v as usize]
    }

    /// η-core numbers of all vertices.
    pub fn core_numbers(&self) -> &[u32] {
        &self.eta_core_numbers
    }

    /// Largest η-core number in the graph.
    pub fn max_core(&self) -> u32 {
        self.eta_core_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Vertices whose η-core number is at least `k`.
    pub fn vertices_in_core(&self, k: u32) -> Vec<VertexId> {
        self.eta_core_numbers
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c >= k).then_some(v as VertexId))
            .collect()
    }
}

/// Extracts the maximal connected (k,η)-core subgraphs of `graph`.
pub fn eta_core_subgraphs(graph: &UncertainGraph, k: u32, eta: f64) -> Vec<EdgeSubgraph> {
    let decomp = EtaCoreDecomposition::compute(graph, eta);
    let members = decomp.vertices_in_core(k);
    if members.is_empty() {
        return Vec::new();
    }
    let in_core: Vec<bool> = (0..graph.num_vertices() as VertexId)
        .map(|v| decomp.core_number(v) >= k)
        .collect();
    let components = ConnectedComponents::over_vertices(graph, |v| in_core[v as usize]);
    components
        .vertex_sets()
        .into_iter()
        .filter(|set| set.len() > 1)
        .map(|set| EdgeSubgraph::induced_by_vertices(graph, &set))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use detcore_helpers::*;
    use ugraph::GraphBuilder;

    /// Helpers shared with the deterministic sanity checks.
    mod detcore_helpers {
        use ugraph::{GraphBuilder, UncertainGraph};

        pub fn complete(n: u32, p: f64) -> UncertainGraph {
            let mut b = GraphBuilder::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build()
        }
    }

    #[test]
    fn certain_graph_matches_deterministic_core() {
        // With all probabilities 1 and any eta ≤ 1, the η-core equals the
        // deterministic core.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let edges = ugraph::generators::gnm_edges(40, 160, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            40,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let prob = EtaCoreDecomposition::compute(&g, 0.7);
        let det = detdecomp_core(&g);
        assert_eq!(prob.core_numbers(), det.as_slice());
    }

    /// Deterministic core numbers via the naive iterative algorithm, to
    /// avoid a dev-dependency cycle on `detdecomp`.
    fn detdecomp_core(graph: &UncertainGraph) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut core = vec![0u32; n];
        for k in 1..=graph.max_degree() as u32 {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n as VertexId {
                    if alive[v as usize] {
                        let deg = graph
                            .neighbors(v)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count() as u32;
                        if deg < k {
                            alive[v as usize] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    use ugraph::UncertainGraph;

    #[test]
    fn eta_degree_drops_with_threshold() {
        // A star with 4 leaves, each edge p = 0.5.  Pr[deg >= 2] = 0.6875,
        // Pr[deg >= 3] = 0.3125.
        let mut b = GraphBuilder::new();
        for leaf in 1..=4u32 {
            b.add_edge(0, leaf, 0.5).unwrap();
        }
        let g = b.build();
        let lenient = EtaCoreDecomposition::compute(&g, 0.3);
        let strict = EtaCoreDecomposition::compute(&g, 0.7);
        assert!(lenient.core_number(0) >= strict.core_number(0));
        // Leaves can have at most η-degree 1 (p = 0.5 < 0.7 means 0 for strict).
        assert_eq!(strict.core_number(1), 0);
    }

    #[test]
    fn clique_with_low_probabilities_has_smaller_core() {
        let high = EtaCoreDecomposition::compute(&complete(6, 0.95), 0.5);
        let low = EtaCoreDecomposition::compute(&complete(6, 0.3), 0.5);
        assert!(high.max_core() > low.max_core());
        assert_eq!(high.core_numbers().len(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::empty(3);
        let d = EtaCoreDecomposition::compute(&g, 0.5);
        assert_eq!(d.core_numbers(), &[0, 0, 0]);
        assert_eq!(d.max_core(), 0);
        assert!(eta_core_subgraphs(&g, 1, 0.5).is_empty());
    }

    #[test]
    fn core_numbers_monotone_in_eta() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let edges = ugraph::generators::gnm_edges(30, 120, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            30,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let loose = EtaCoreDecomposition::compute(&g, 0.1);
        let tight = EtaCoreDecomposition::compute(&g, 0.9);
        for v in 0..30u32 {
            assert!(
                loose.core_number(v) >= tight.core_number(v),
                "vertex {v}: eta=0.1 gives {} < eta=0.9 gives {}",
                loose.core_number(v),
                tight.core_number(v)
            );
        }
    }

    #[test]
    fn eta_core_never_exceeds_deterministic_core() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let edges = ugraph::generators::gnm_edges(30, 110, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            30,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let prob = EtaCoreDecomposition::compute(&g, 0.4);
        let det = detdecomp_core(&g);
        for (v, &d) in det.iter().enumerate() {
            assert!(prob.core_numbers()[v] <= d);
        }
    }

    #[test]
    fn subgraph_extraction_on_two_cliques() {
        // Two disjoint K5s with high probabilities, plus a weak pendant
        // vertex attached to each clique.
        let mut b = GraphBuilder::new();
        for base in [0u32, 5u32] {
            for i in 0..5u32 {
                for j in (i + 1)..5u32 {
                    b.add_edge(base + i, base + j, 0.9).unwrap();
                }
            }
        }
        b.add_edge(4, 10, 0.1).unwrap();
        b.add_edge(9, 11, 0.1).unwrap();
        let g = b.build();
        let decomp = EtaCoreDecomposition::compute(&g, 0.5);
        let k = decomp.max_core();
        assert!(k >= 3);
        let cores = eta_core_subgraphs(&g, k, 0.5);
        assert_eq!(cores.len(), 2);
        for c in &cores {
            assert_eq!(c.num_vertices(), 5);
        }
    }
}
