//! Probabilistic (k,η)-core decomposition (Bonchi et al., KDD 2014).
//!
//! The η-degree of a vertex `v` in a probabilistic graph is the largest
//! `k` such that `Pr[deg(v) ≥ k] ≥ η`, where the degree is taken over
//! sampled possible worlds.  A (k,η)-core is a maximal subgraph in which
//! every vertex has η-degree ≥ k *within the subgraph*; the η-core number
//! of a vertex is the largest `k` for which it belongs to a (k,η)-core.
//!
//! Since the (r,s)-nucleus API redesign this type is a thin wrapper over
//! the rank-generic peeling engine: [`EtaCoreDecomposition::try_compute`]
//! delegates to [`nucleus::Decomposition`] at [`nucleus::Rank::Core`],
//! which peels vertices with the shared bucket-queue engine in
//! `ugraph::rs`.  The historical eager heap-based peel is frozen in
//! [`crate::reference::eta_core_numbers`] and the two are pinned
//! bit-identical by the differential test suite.

use nucleus::{DecompConfig, Decomposition};
use ugraph::{ConnectedComponents, EdgeSubgraph, UncertainGraph, VertexId};

/// Result of the probabilistic (k,η)-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EtaCoreDecomposition {
    eta_core_numbers: Vec<u32>,
}

impl EtaCoreDecomposition {
    /// Runs the decomposition with probability threshold `eta`, rejecting
    /// out-of-range thresholds (`eta ∉ (0, 1]` or NaN) with a typed
    /// [`nucleus::NucleusError::InvalidThreshold`].
    pub fn try_compute(graph: &UncertainGraph, eta: f64) -> nucleus::Result<Self> {
        let decomp = Decomposition::compute(graph, &DecompConfig::core(eta))?;
        Ok(EtaCoreDecomposition {
            eta_core_numbers: decomp.scores().to_vec(),
        })
    }

    /// Runs the decomposition with probability threshold `eta`.
    ///
    /// # Panics
    ///
    /// Panics when `eta` is outside `(0, 1]` or NaN.  The historical
    /// behaviour was to silently produce degenerate scores; migrate to
    /// [`EtaCoreDecomposition::try_compute`] to handle the typed error
    /// instead.
    #[deprecated(
        since = "0.1.0",
        note = "use `EtaCoreDecomposition::try_compute`, which returns a typed \
                `nucleus::NucleusError` for invalid thresholds instead of panicking"
    )]
    pub fn compute(graph: &UncertainGraph, eta: f64) -> Self {
        match Self::try_compute(graph, eta) {
            Ok(decomp) => decomp,
            Err(e) => panic!("EtaCoreDecomposition::compute: {e}"),
        }
    }

    /// η-core number of vertex `v`.
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.eta_core_numbers[v as usize]
    }

    /// η-core numbers of all vertices.
    pub fn core_numbers(&self) -> &[u32] {
        &self.eta_core_numbers
    }

    /// Largest η-core number in the graph.
    pub fn max_core(&self) -> u32 {
        self.eta_core_numbers.iter().copied().max().unwrap_or(0)
    }

    /// Vertices whose η-core number is at least `k`.
    pub fn vertices_in_core(&self, k: u32) -> Vec<VertexId> {
        self.eta_core_numbers
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c >= k).then_some(v as VertexId))
            .collect()
    }
}

/// Extracts the maximal connected (k,η)-core subgraphs of `graph`,
/// rejecting out-of-range `eta` with a typed error.
pub fn eta_core_subgraphs(
    graph: &UncertainGraph,
    k: u32,
    eta: f64,
) -> nucleus::Result<Vec<EdgeSubgraph>> {
    let decomp = EtaCoreDecomposition::try_compute(graph, eta)?;
    let members = decomp.vertices_in_core(k);
    if members.is_empty() {
        return Ok(Vec::new());
    }
    let in_core: Vec<bool> = (0..graph.num_vertices() as VertexId)
        .map(|v| decomp.core_number(v) >= k)
        .collect();
    let components = ConnectedComponents::over_vertices(graph, |v| in_core[v as usize]);
    Ok(components
        .vertex_sets()
        .into_iter()
        .filter(|set| set.len() > 1)
        .map(|set| EdgeSubgraph::induced_by_vertices(graph, &set))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use detcore_helpers::*;
    use ugraph::GraphBuilder;

    /// Helpers shared with the deterministic sanity checks.
    mod detcore_helpers {
        use ugraph::{GraphBuilder, UncertainGraph};

        pub fn complete(n: u32, p: f64) -> UncertainGraph {
            let mut b = GraphBuilder::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build()
        }
    }

    #[test]
    fn certain_graph_matches_deterministic_core() {
        // With all probabilities 1 and any eta ≤ 1, the η-core equals the
        // deterministic core.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let edges = ugraph::generators::gnm_edges(40, 160, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            40,
            &ugraph::generators::ProbabilityModel::Constant(1.0),
            &mut rng,
        );
        let prob = EtaCoreDecomposition::try_compute(&g, 0.7).unwrap();
        let det = detdecomp_core(&g);
        assert_eq!(prob.core_numbers(), det.as_slice());
    }

    /// Deterministic core numbers via the naive iterative algorithm, to
    /// avoid a dev-dependency cycle on `detdecomp`.
    fn detdecomp_core(graph: &UncertainGraph) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut core = vec![0u32; n];
        for k in 1..=graph.max_degree() as u32 {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n as VertexId {
                    if alive[v as usize] {
                        let deg = graph
                            .neighbors(v)
                            .iter()
                            .filter(|&&u| alive[u as usize])
                            .count() as u32;
                        if deg < k {
                            alive[v as usize] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    use ugraph::UncertainGraph;

    #[test]
    fn try_compute_matches_frozen_reference() {
        let g = complete(6, 0.6);
        let new = EtaCoreDecomposition::try_compute(&g, 0.3).unwrap();
        assert_eq!(
            new.core_numbers(),
            crate::reference::eta_core_numbers(&g, 0.3).as_slice()
        );
    }

    #[test]
    fn malformed_eta_is_rejected_with_typed_error() {
        let g = complete(4, 0.9);
        for bad in [0.0, -0.25, 1.5, f64::NAN] {
            match EtaCoreDecomposition::try_compute(&g, bad) {
                Err(nucleus::NucleusError::InvalidThreshold { name: "eta", value }) => {
                    assert!(value.is_nan() == bad.is_nan() && (bad.is_nan() || value == bad));
                }
                other => panic!("eta={bad} should be rejected, got {other:?}"),
            }
            assert!(eta_core_subgraphs(&g, 1, bad).is_err());
        }
    }

    #[test]
    fn eta_degree_drops_with_threshold() {
        // A star with 4 leaves, each edge p = 0.5.  Pr[deg >= 2] = 0.6875,
        // Pr[deg >= 3] = 0.3125.
        let mut b = GraphBuilder::new();
        for leaf in 1..=4u32 {
            b.add_edge(0, leaf, 0.5).unwrap();
        }
        let g = b.build();
        let lenient = EtaCoreDecomposition::try_compute(&g, 0.3).unwrap();
        let strict = EtaCoreDecomposition::try_compute(&g, 0.7).unwrap();
        assert!(lenient.core_number(0) >= strict.core_number(0));
        // Leaves can have at most η-degree 1 (p = 0.5 < 0.7 means 0 for strict).
        assert_eq!(strict.core_number(1), 0);
    }

    #[test]
    fn clique_with_low_probabilities_has_smaller_core() {
        let high = EtaCoreDecomposition::try_compute(&complete(6, 0.95), 0.5).unwrap();
        let low = EtaCoreDecomposition::try_compute(&complete(6, 0.3), 0.5).unwrap();
        assert!(high.max_core() > low.max_core());
        assert_eq!(high.core_numbers().len(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::empty(3);
        let d = EtaCoreDecomposition::try_compute(&g, 0.5).unwrap();
        assert_eq!(d.core_numbers(), &[0, 0, 0]);
        assert_eq!(d.max_core(), 0);
        assert!(eta_core_subgraphs(&g, 1, 0.5).unwrap().is_empty());
    }

    #[test]
    fn core_numbers_monotone_in_eta() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let edges = ugraph::generators::gnm_edges(30, 120, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            30,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let loose = EtaCoreDecomposition::try_compute(&g, 0.1).unwrap();
        let tight = EtaCoreDecomposition::try_compute(&g, 0.9).unwrap();
        for v in 0..30u32 {
            assert!(
                loose.core_number(v) >= tight.core_number(v),
                "vertex {v}: eta=0.1 gives {} < eta=0.9 gives {}",
                loose.core_number(v),
                tight.core_number(v)
            );
        }
    }

    #[test]
    fn eta_core_never_exceeds_deterministic_core() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let edges = ugraph::generators::gnm_edges(30, 110, &mut rng);
        let g = ugraph::generators::assign_probabilities(
            &edges,
            30,
            &ugraph::generators::ProbabilityModel::Uniform {
                low: 0.2,
                high: 1.0,
            },
            &mut rng,
        );
        let prob = EtaCoreDecomposition::try_compute(&g, 0.4).unwrap();
        let det = detdecomp_core(&g);
        for (v, &d) in det.iter().enumerate() {
            assert!(prob.core_numbers()[v] <= d);
        }
    }

    #[test]
    fn subgraph_extraction_on_two_cliques() {
        // Two disjoint K5s with high probabilities, plus a weak pendant
        // vertex attached to each clique.
        let mut b = GraphBuilder::new();
        for base in [0u32, 5u32] {
            for i in 0..5u32 {
                for j in (i + 1)..5u32 {
                    b.add_edge(base + i, base + j, 0.9).unwrap();
                }
            }
        }
        b.add_edge(4, 10, 0.1).unwrap();
        b.add_edge(9, 11, 0.1).unwrap();
        let g = b.build();
        let decomp = EtaCoreDecomposition::try_compute(&g, 0.5).unwrap();
        let k = decomp.max_core();
        assert!(k >= 3);
        let cores = eta_core_subgraphs(&g, k, 0.5).unwrap();
        assert_eq!(cores.len(), 2);
        for c in &cores {
            assert_eq!(c.num_vertices(), 5);
        }
    }
}
