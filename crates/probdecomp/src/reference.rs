//! Frozen reference implementations of the baseline decompositions.
//!
//! These are verbatim copies of the original eager heap-based peeling
//! loops of [`EtaCoreDecomposition::compute`](crate::EtaCoreDecomposition)
//! and [`GammaTrussDecomposition::compute`](crate::GammaTrussDecomposition)
//! as they existed before both types were rebuilt on the generic
//! `ugraph::rs` peeling engine.  They exist so the differential test
//! suite can pin the generic engine bit-identical to the historical
//! behaviour; they are **not** part of the supported API surface and
//! make no performance claims.  Do not "improve" them — any edit here
//! invalidates the equivalence baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ugraph::{EdgeId, UncertainGraph, VertexId};

use crate::poisson_binomial::threshold_score;

/// η-core numbers of every vertex, computed by the frozen eager
/// heap-based peel (probabilistic Batagelj–Zaveršnik).
pub fn eta_core_numbers(graph: &UncertainGraph, eta: f64) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut alive = vec![true; n];
    let mut score = vec![0u32; n];

    let eta_degree = |graph: &UncertainGraph, v: VertexId, alive: &[bool]| -> u32 {
        let probs: Vec<f64> = graph
            .neighbor_entries(v)
            .filter(|(w, _, _)| alive[*w as usize])
            .map(|(_, p, _)| p)
            .collect();
        threshold_score(&probs, 1.0, eta).unwrap_or(0)
    };

    for v in 0..n as VertexId {
        score[v as usize] = eta_degree(graph, v, &alive);
    }

    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> =
        (0..n).map(|v| Reverse((score[v], v as VertexId))).collect();
    let mut core = vec![0u32; n];
    let mut level = 0u32;

    while let Some(Reverse((s, v))) = heap.pop() {
        let vi = v as usize;
        if !alive[vi] || s != score[vi] {
            continue;
        }
        alive[vi] = false;
        level = level.max(s);
        core[vi] = level;
        for &u in graph.neighbors(v) {
            let ui = u as usize;
            if !alive[ui] {
                continue;
            }
            let new_score = eta_degree(graph, u, &alive);
            // Scores never rise above the current peeling level when
            // they are already below it.
            let new_score = new_score.max(level.min(score[ui]));
            if new_score < score[ui] {
                score[ui] = new_score;
                heap.push(Reverse((new_score, u)));
            }
        }
    }
    core
}

/// Probabilistic truss numbers of every edge, computed by the frozen
/// eager heap-based peel (Huang et al., SIGMOD 2016 convention).
pub fn gamma_truss_numbers(graph: &UncertainGraph, gamma: f64) -> Vec<u32> {
    let m = graph.num_edges();
    let mut alive = vec![true; m];
    let mut score = vec![0u32; m];

    let gamma_support = |graph: &UncertainGraph, e: EdgeId, alive: &[bool]| -> u32 {
        let edge = graph.edge(e);
        let (u, v) = (edge.u, edge.v);
        let mut wedge_probs = Vec::new();
        for w in graph.common_neighbors(u, v) {
            let euw = graph.edge_id(u, w).expect("edge exists");
            let evw = graph.edge_id(v, w).expect("edge exists");
            if alive[euw as usize] && alive[evw as usize] {
                wedge_probs.push(graph.edge(euw).p * graph.edge(evw).p);
            }
        }
        threshold_score(&wedge_probs, edge.p, gamma).unwrap_or(0)
    };

    for (e, s) in score.iter_mut().enumerate() {
        *s = gamma_support(graph, e as EdgeId, &alive);
    }

    let mut heap: BinaryHeap<Reverse<(u32, EdgeId)>> =
        (0..m).map(|e| Reverse((score[e], e as EdgeId))).collect();
    let mut truss = vec![0u32; m];
    let mut level = 0u32;

    while let Some(Reverse((s, e))) = heap.pop() {
        let ei = e as usize;
        if !alive[ei] || s != score[ei] {
            continue;
        }
        alive[ei] = false;
        level = level.max(s);
        truss[ei] = level;
        let edge = graph.edge(e);
        let (u, v) = (edge.u, edge.v);
        for w in graph.common_neighbors(u, v) {
            let euw = graph.edge_id(u, w).expect("edge exists");
            let evw = graph.edge_id(v, w).expect("edge exists");
            if !alive[euw as usize] || !alive[evw as usize] {
                continue;
            }
            for f in [euw, evw] {
                let fi = f as usize;
                if score[fi] > level {
                    let new_score = gamma_support(graph, f, &alive).max(level);
                    if new_score < score[fi] {
                        score[fi] = new_score;
                        heap.push(Reverse((new_score, f)));
                    }
                }
            }
        }
    }
    truss
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn complete(n: u32, p: f64) -> ugraph::UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn reference_core_matches_known_values() {
        // Certain K5: every vertex has deterministic core number 4.
        let core = eta_core_numbers(&complete(5, 1.0), 0.5);
        assert_eq!(core, vec![4; 5]);
    }

    #[test]
    fn reference_truss_matches_known_values() {
        // Certain K5: every edge sits in 3 triangles (support convention).
        let truss = gamma_truss_numbers(&complete(5, 1.0), 0.5);
        assert_eq!(truss, vec![3; 10]);
    }
}
