//! # probdecomp — baseline probabilistic decompositions
//!
//! Re-implementations of the two probabilistic dense-subgraph baselines
//! the paper compares against in Section 7.4:
//!
//! * **(k,η)-core** (Bonchi, Gullo, Kaltenbrunner, Volkovich, KDD 2014):
//!   a maximal subgraph in which every vertex has at least `k` neighbours
//!   with probability at least `η`.  See [`prob_core`].
//! * **local (k,γ)-truss** (Huang, Lu, Lakshmanan, SIGMOD 2016): a maximal
//!   subgraph in which every edge is contained in at least `k` triangles
//!   with probability at least `γ`.  See [`prob_truss`].
//!
//! Both are instances of the same (r,s)-nucleus template as the
//! probabilistic nucleus of the `nucleus` crate — a Poisson-binomial tail
//! bound per element (vertex / edge) computed by dynamic programming,
//! combined with support peeling — and since the (r,s) API redesign both
//! types are thin shims over the rank-generic engine behind
//! [`nucleus::Decomposition`].  New code should prefer that unified
//! surface (`DecompConfig::core(eta)` / `DecompConfig::truss(gamma)`);
//! these wrappers remain for the baseline-flavoured accessors
//! (`vertices_in_core`, `edges_in_truss`, subgraph extraction).  The
//! pre-redesign eager peels are frozen verbatim in [`mod@reference`] and
//! pinned bit-identical to the generic engine by the differential tests.

pub mod poisson_binomial;
pub mod prob_core;
pub mod prob_truss;
pub mod reference;

pub use poisson_binomial::{poisson_binomial_pmf, poisson_binomial_tail, threshold_score};
pub use prob_core::{eta_core_subgraphs, EtaCoreDecomposition};
pub use prob_truss::{gamma_truss_subgraphs, GammaTrussDecomposition};
