//! # probdecomp — baseline probabilistic decompositions
//!
//! Re-implementations of the two probabilistic dense-subgraph baselines
//! the paper compares against in Section 7.4:
//!
//! * **(k,η)-core** (Bonchi, Gullo, Kaltenbrunner, Volkovich, KDD 2014):
//!   a maximal subgraph in which every vertex has at least `k` neighbours
//!   with probability at least `η`.  See [`prob_core`].
//! * **local (k,γ)-truss** (Huang, Lu, Lakshmanan, SIGMOD 2016): a maximal
//!   subgraph in which every edge is contained in at least `k` triangles
//!   with probability at least `γ`.  See [`prob_truss`].
//!
//! Both follow the same pattern as the probabilistic nucleus of the
//! `nucleus` crate one or two levels down the clique hierarchy: a
//! Poisson-binomial tail bound per element (vertex / edge) computed by
//! dynamic programming, combined with support peeling.

pub mod poisson_binomial;
pub mod prob_core;
pub mod prob_truss;

pub use poisson_binomial::{poisson_binomial_pmf, poisson_binomial_tail, threshold_score};
pub use prob_core::{eta_core_subgraphs, EtaCoreDecomposition};
pub use prob_truss::{gamma_truss_subgraphs, GammaTrussDecomposition};
