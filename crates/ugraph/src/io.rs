//! Edge-list I/O for probabilistic graphs.
//!
//! The on-disk format is the one used by most uncertain-graph datasets
//! (including those referenced by the paper): one edge per line,
//! whitespace separated, `u v p` where `p` is the existence probability.
//! Lines starting with `#` or `%` are comments.  A two-column `u v` line is
//! accepted and treated as a deterministic edge (`p = 1.0`).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::Result;

/// Reads a probabilistic edge list from any reader.
///
/// # Example
///
/// ```
/// let text = "# comment\n0 1 0.5\n1 2 0.75\n2 3\n";
/// let g = ugraph::io::read_edge_list(text.as_bytes()).unwrap();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.edge_probability(2, 3), Some(1.0));
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<UncertainGraph> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_field(parts.next(), line_no, "source vertex")?;
        let v = parse_field(parts.next(), line_no, "target vertex")?;
        let p = match parts.next() {
            Some(tok) => tok.parse::<f64>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid probability '{tok}'"),
            })?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected at most three columns (u v p)".to_string(),
            });
        }
        builder.add_edge(u, v, p)?;
    }
    Ok(builder.build())
}

fn parse_field(token: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let tok = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse::<u32>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} '{tok}'"),
    })
}

/// Reads a probabilistic edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph> {
    let file = File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as a probabilistic edge list (`u v p` per line).
pub fn write_edge_list<W: Write>(graph: &UncertainGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# probabilistic edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.p)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph as a probabilistic edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn read_basic_edge_list() {
        let text = "0 1 0.5\n1 2 0.25\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_probability(1, 2), Some(0.25));
    }

    #[test]
    fn read_skips_comments_and_blank_lines() {
        let text = "# header\n\n% more\n0 1 0.5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn read_two_column_lines_default_to_certain_edges() {
        let text = "0 1\n1 2 0.3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_probability(0, 1), Some(1.0));
        assert_eq!(g.edge_probability(1, 2), Some(0.3));
    }

    #[test]
    fn read_rejects_bad_lines() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b 0.5\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 0.5 9\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 1.5\n".as_bytes()).is_err());
        assert!(read_edge_list("3 3 0.5\n".as_bytes()).is_err());
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = read_edge_list("0 1 0.5\nbroken\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.125).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        let g = b.build();

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(2, 3, 0.75).unwrap();
        let g = b.build();
        let dir = std::env::temp_dir();
        let path = dir.join("ugraph_io_round_trip_test.txt");
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely/missing.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
