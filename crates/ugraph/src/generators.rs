//! Random probabilistic-graph generators.
//!
//! The generators produce the *structure* (edge set) and a
//! [`ProbabilityModel`] assigns existence probabilities, mirroring how the
//! paper's datasets were produced: some datasets carry intrinsic
//! probabilities (Jaccard similarity, exponential of collaboration counts,
//! experimental confidence), others were assigned probabilities uniformly
//! at random in `(0, 1]`.
//!
//! All generators are deterministic given the supplied RNG, which the
//! dataset emulation layer seeds explicitly for reproducibility.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::{UncertainGraph, VertexId};

/// How edge-existence probabilities are assigned to a generated structure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbabilityModel {
    /// Every edge has the same probability.
    Constant(f64),
    /// Probabilities are uniform in `[low, high]` (clamped to `(0, 1]`).
    Uniform {
        /// Lower bound (exclusive of zero after clamping).
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// `p = 1 − exp(−c / scale)` where `c ≥ 1` is a geometric
    /// "collaboration count" — the model used for the DBLP dataset, where
    /// the probability is an exponential function of the number of joint
    /// publications.
    ExponentialCollaboration {
        /// Mean of the geometric collaboration count.
        mean_collaborations: f64,
        /// Scale of the exponential conversion.
        scale: f64,
    },
    /// Mixture of a "high-confidence" and a "low-confidence" uniform range,
    /// as in protein-interaction datasets where experimentally confirmed
    /// interactions have much higher probability than predicted ones.
    Confidence {
        /// Fraction of edges drawn from the high range.
        high_fraction: f64,
        /// High-confidence range `(low, high)`.
        high_range: (f64, f64),
        /// Low-confidence range `(low, high)`.
        low_range: (f64, f64),
    },
    /// Average of `k` uniform draws — a cheap bell-shaped distribution on
    /// `(0, 1)` emulating Jaccard-similarity-derived probabilities that
    /// concentrate around their mean (used for the flickr dataset).
    JaccardLike {
        /// Number of averaged uniforms (larger means more concentrated).
        smoothing: u32,
        /// Multiplicative scale applied after averaging.
        scale: f64,
    },
}

impl ProbabilityModel {
    /// Samples one edge probability.  The result is always in `(0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let p = match self {
            ProbabilityModel::Constant(p) => *p,
            ProbabilityModel::Uniform { low, high } => rng.gen_range(*low..=*high),
            ProbabilityModel::ExponentialCollaboration {
                mean_collaborations,
                scale,
            } => {
                // Geometric count with the given mean (at least 1).
                let q = 1.0 / mean_collaborations.max(1.0);
                let mut c = 1u32;
                while rng.gen::<f64>() > q && c < 1000 {
                    c += 1;
                }
                1.0 - (-(c as f64) / scale).exp()
            }
            ProbabilityModel::Confidence {
                high_fraction,
                high_range,
                low_range,
            } => {
                if rng.gen::<f64>() < *high_fraction {
                    rng.gen_range(high_range.0..=high_range.1)
                } else {
                    rng.gen_range(low_range.0..=low_range.1)
                }
            }
            ProbabilityModel::JaccardLike { smoothing, scale } => {
                let k = (*smoothing).max(1);
                let avg: f64 = (0..k).map(|_| rng.gen::<f64>()).sum::<f64>() / k as f64;
                avg * scale
            }
        };
        p.clamp(1e-6, 1.0)
    }
}

/// Assigns probabilities from `model` to every structural edge in `edges`
/// and builds the graph.  `num_vertices` lets callers preserve isolated
/// vertices.
pub fn assign_probabilities<R: Rng + ?Sized>(
    edges: &[(VertexId, VertexId)],
    num_vertices: usize,
    model: &ProbabilityModel,
    rng: &mut R,
) -> UncertainGraph {
    let mut b = GraphBuilder::with_vertices(num_vertices);
    for &(u, v) in edges {
        if u == v {
            continue;
        }
        let p = model.sample(rng);
        b.add_edge(u, v, p).expect("generator edges are valid");
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: `m` distinct edges drawn uniformly at random.
pub fn gnm_edges<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<(VertexId, VertexId)> {
    let max_edges = n * (n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut set = std::collections::HashSet::with_capacity(m);
    let mut out = Vec::with_capacity(m);
    while out.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if set.insert(key) {
            out.push(key);
        }
    }
    out
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n−1)/2` pairs is an edge with
/// probability `edge_density`.  Quadratic; intended for small graphs.
pub fn gnp_edges<R: Rng + ?Sized>(
    n: usize,
    edge_density: f64,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen::<f64>() < edge_density {
                out.push((u, v));
            }
        }
    }
    out
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` vertices and attaches every new vertex to `attach`
/// existing vertices chosen proportionally to degree.  Produces the
/// heavy-tailed degree distributions of social networks (pokec,
/// ljournal-like structures).
pub fn barabasi_albert_edges<R: Rng + ?Sized>(
    n: usize,
    attach: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let attach = attach.max(1);
    let seed = (attach + 1).min(n);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Repeated-endpoint list for preferential selection.
    let mut endpoints: Vec<VertexId> = Vec::new();
    for u in 0..seed as VertexId {
        for v in (u + 1)..seed as VertexId {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in seed..n {
        let new = new as VertexId;
        let mut targets = std::collections::HashSet::new();
        let mut guard = 0;
        while targets.len() < attach.min(new as usize) && guard < 50 * attach {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..new)
            } else {
                *endpoints.choose(rng).expect("non-empty")
            };
            if t != new {
                targets.insert(t);
            }
        }
        // Sort the chosen targets so the preferential-endpoint list is
        // extended in a deterministic order (HashSet iteration order would
        // otherwise make later degree-proportional draws nondeterministic).
        let mut targets: Vec<VertexId> = targets.into_iter().collect();
        targets.sort_unstable();
        for &t in &targets {
            edges.push((new.min(t), new.max(t)));
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    edges
}

/// Planted clique communities: a sparse Erdős–Rényi background plus
/// `num_communities` vertex subsets of size in `community_size`, each
/// turned into a clique.  Consecutive communities overlap in
/// `overlap` vertices, which creates the nested dense regions that nucleus
/// decomposition is designed to reveal.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedCliqueConfig {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Number of random background edges.
    pub background_edges: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Inclusive range of community sizes.
    pub community_size: (usize, usize),
    /// Number of vertices shared between consecutive communities.
    pub overlap: usize,
}

/// Generates the structural edges of a planted-clique-community graph.
pub fn planted_clique_edges<R: Rng + ?Sized>(
    config: &PlantedCliqueConfig,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let n = config.num_vertices;
    let mut edges = gnm_edges(n, config.background_edges, rng);
    let mut previous: Vec<VertexId> = Vec::new();
    for _ in 0..config.num_communities {
        let size = rng.gen_range(config.community_size.0..=config.community_size.1);
        let mut members: Vec<VertexId> = Vec::with_capacity(size);
        // Carry over `overlap` members from the previous community.
        let carried = config.overlap.min(previous.len());
        members.extend(previous.iter().take(carried).copied());
        while members.len() < size.min(n) {
            let v = rng.gen_range(0..n) as VertexId;
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (a, b) = (members[i].min(members[j]), members[i].max(members[j]));
                edges.push((a, b));
            }
        }
        previous = members;
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Watts–Strogatz small-world structure: a ring lattice where each vertex
/// connects to its `k` nearest neighbours, with each edge rewired with
/// probability `beta`.  Produces the high-clustering, short-path structure
/// typical of collaboration networks.
pub fn watts_strogatz_edges<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let mut set = std::collections::HashSet::new();
    if n < 2 {
        return Vec::new();
    }
    let half = (k / 2).max(1);
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            if u == v {
                continue;
            }
            let mut a = u as VertexId;
            let mut b = v as VertexId;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint uniformly.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let w = rng.gen_range(0..n) as VertexId;
                    if w != a && !set.contains(&(a.min(w), a.max(w))) {
                        b = w;
                        break;
                    }
                    if guard > 100 {
                        break;
                    }
                }
            }
            if a != b {
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                set.insert((a, b));
            }
        }
    }
    let mut edges: Vec<_> = set.into_iter().collect();
    edges.sort_unstable();
    edges
}

/// Complete graph `K_n` with a single probability for every edge.
pub fn complete_graph(n: usize, p: f64) -> UncertainGraph {
    let mut b = GraphBuilder::with_vertices(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v, p).expect("valid edge");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn probability_models_stay_in_range() {
        let models = [
            ProbabilityModel::Constant(0.5),
            ProbabilityModel::Uniform {
                low: 0.0,
                high: 1.0,
            },
            ProbabilityModel::ExponentialCollaboration {
                mean_collaborations: 2.0,
                scale: 2.0,
            },
            ProbabilityModel::Confidence {
                high_fraction: 0.3,
                high_range: (0.8, 1.0),
                low_range: (0.05, 0.3),
            },
            ProbabilityModel::JaccardLike {
                smoothing: 3,
                scale: 0.5,
            },
        ];
        let mut r = rng(1);
        for model in &models {
            for _ in 0..500 {
                let p = model.sample(&mut r);
                assert!(p > 0.0 && p <= 1.0, "{model:?} produced {p}");
            }
        }
    }

    #[test]
    fn constant_model_is_constant() {
        let mut r = rng(2);
        let m = ProbabilityModel::Constant(0.37);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), 0.37);
        }
    }

    #[test]
    fn gnm_produces_requested_edges() {
        let mut r = rng(3);
        let edges = gnm_edges(50, 200, &mut r);
        assert_eq!(edges.len(), 200);
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 200);
        for &(u, v) in &edges {
            assert!(u < v);
            assert!((v as usize) < 50);
        }
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let mut r = rng(4);
        let edges = gnm_edges(5, 1000, &mut r);
        assert_eq!(edges.len(), 10);
    }

    #[test]
    fn gnp_density_roughly_matches() {
        let mut r = rng(5);
        let edges = gnp_edges(100, 0.1, &mut r);
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        assert!((edges.len() as f64 - expected).abs() < expected * 0.4);
    }

    #[test]
    fn barabasi_albert_every_late_vertex_has_degree_at_least_attach() {
        let mut r = rng(6);
        let edges = barabasi_albert_edges(200, 3, &mut r);
        let g = assign_probabilities(&edges, 200, &ProbabilityModel::Constant(1.0), &mut r);
        for v in 10..200u32 {
            assert!(g.degree(v) >= 3, "vertex {v} has degree {}", g.degree(v));
        }
    }

    #[test]
    fn planted_cliques_contain_four_cliques() {
        let mut r = rng(7);
        let cfg = PlantedCliqueConfig {
            num_vertices: 60,
            background_edges: 50,
            num_communities: 4,
            community_size: (5, 7),
            overlap: 2,
        };
        let edges = planted_clique_edges(&cfg, &mut r);
        let g = assign_probabilities(&edges, 60, &ProbabilityModel::Constant(0.9), &mut r);
        assert!(crate::cliques::count_four_cliques(&g) >= 4 * 5);
    }

    #[test]
    fn watts_strogatz_has_expected_scale_of_edges() {
        let mut r = rng(8);
        let edges = watts_strogatz_edges(100, 6, 0.1, &mut r);
        // Ring lattice with k=6 has ~3n edges; rewiring keeps the count similar.
        assert!(edges.len() > 250 && edges.len() <= 300, "{}", edges.len());
        for &(u, v) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete_graph(6, 0.4);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        assert!((g.average_probability() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = PlantedCliqueConfig {
            num_vertices: 40,
            background_edges: 30,
            num_communities: 3,
            community_size: (4, 6),
            overlap: 1,
        };
        let e1 = planted_clique_edges(&cfg, &mut rng(99));
        let e2 = planted_clique_edges(&cfg, &mut rng(99));
        assert_eq!(e1, e2);
        let g1 = assign_probabilities(
            &e1,
            40,
            &ProbabilityModel::Uniform {
                low: 0.1,
                high: 1.0,
            },
            &mut rng(5),
        );
        let g2 = assign_probabilities(
            &e2,
            40,
            &ProbabilityModel::Uniform {
                low: 0.1,
                high: 1.0,
            },
            &mut rng(5),
        );
        assert_eq!(g1, g2);
    }

    #[test]
    fn assign_probabilities_skips_self_loops() {
        let mut r = rng(11);
        let edges = vec![(0, 1), (1, 1), (1, 2)];
        let g = assign_probabilities(&edges, 3, &ProbabilityModel::Constant(0.5), &mut r);
        assert_eq!(g.num_edges(), 2);
    }
}
