//! Error type shared by all graph-construction and I/O operations.

use std::fmt;

/// Errors produced while building, loading, or manipulating an
/// [`UncertainGraph`](crate::UncertainGraph).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge probability was outside the half-open interval `(0, 1]`.
    InvalidProbability {
        /// Endpoints of the offending edge.
        edge: (u32, u32),
        /// The probability that was rejected.
        probability: f64,
    },
    /// A self-loop `(v, v)` was supplied where simple graphs are required.
    SelfLoop {
        /// The vertex of the self-loop.
        vertex: u32,
    },
    /// A vertex identifier referenced a vertex that does not exist.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge `(u, v)` that was expected to exist is absent.
    MissingEdge {
        /// Endpoints of the missing edge.
        edge: (u32, u32),
    },
    /// An edge `{u, v}` appeared more than once where the input format
    /// requires each undirected edge to be listed exactly once.
    DuplicateEdge {
        /// Endpoints of the repeated edge, canonical `u < v`.
        edge: (u32, u32),
    },
    /// A textual edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A binary `.ugsnap` snapshot could not be decoded.
    Snapshot(SnapshotError),
    /// A structure count overflowed the packed 32-bit id space.
    IdOverflow(IdOverflow),
    /// Wrapper around I/O failures while reading or writing edge lists.
    Io(String),
}

/// A structure count exceeded the 32-bit id space the packed records
/// use.
///
/// Triangles, 4-cliques and edges are addressed by dense `u32` ids
/// (half the memory of `usize` on 64-bit targets — the difference
/// between fitting a million-edge index in RAM or not).  The narrowing
/// from `usize` counts happens only through [`checked_id`], which
/// produces this typed error instead of silently wrapping past `2^32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdOverflow {
    /// What kind of id overflowed (`"triangle"`, `"4-clique"`, …).
    pub kind: &'static str,
    /// The index that did not fit.
    pub value: u64,
}

impl fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} index {} exceeds the 32-bit id space",
            self.kind, self.value
        )
    }
}

impl std::error::Error for IdOverflow {}

impl From<IdOverflow> for GraphError {
    fn from(err: IdOverflow) -> Self {
        GraphError::IdOverflow(err)
    }
}

/// Checked narrowing of a `usize` index into a dense `u32` id.
///
/// The single gate every packed-id constructor goes through: returns
/// [`IdOverflow`] for indices past `u32::MAX` instead of truncating.
pub fn checked_id(kind: &'static str, index: usize) -> Result<u32, IdOverflow> {
    u32::try_from(index).map_err(|_| IdOverflow {
        kind,
        value: index as u64,
    })
}

/// Reasons a `.ugsnap` binary snapshot is rejected by
/// [`io::read_snapshot`](crate::io::read_snapshot).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The input ended before the declared payload (or is shorter than the
    /// fixed header).
    Truncated {
        /// Bytes the snapshot should occupy given its header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The first eight bytes are not the `UGSNAP\r\n` magic.
    BadMagic,
    /// The header declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The stored checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The payload decoded but violates a structural invariant (offsets
    /// not monotone, neighbour out of bounds, non-canonical edge table…).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated snapshot: expected {expected} bytes, got {actual}"
                )
            }
            SnapshotError::BadMagic => write!(f, "missing UGSNAP magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidProbability { edge, probability } => write!(
                f,
                "edge ({}, {}) has invalid probability {probability}; expected p in (0, 1]",
                edge.0, edge.1
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of bounds for a graph with {num_vertices} vertices"
            ),
            GraphError::MissingEdge { edge } => {
                write!(f, "edge ({}, {}) does not exist", edge.0, edge.1)
            }
            GraphError::DuplicateEdge { edge } => {
                write!(f, "edge ({}, {}) is listed more than once", edge.0, edge.1)
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Snapshot(err) => write!(f, "snapshot error: {err}"),
            GraphError::IdOverflow(err) => write!(f, "id overflow: {err}"),
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<SnapshotError> for GraphError {
    fn from(err: SnapshotError) -> Self {
        GraphError::Snapshot(err)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_probability() {
        let err = GraphError::InvalidProbability {
            edge: (1, 2),
            probability: 1.5,
        };
        let text = err.to_string();
        assert!(text.contains("(1, 2)"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn display_self_loop() {
        let err = GraphError::SelfLoop { vertex: 7 };
        assert!(err.to_string().contains("7"));
    }

    #[test]
    fn display_out_of_bounds() {
        let err = GraphError::VertexOutOfBounds {
            vertex: 10,
            num_vertices: 5,
        };
        let text = err.to_string();
        assert!(text.contains("10") && text.contains("5"));
    }

    #[test]
    fn display_missing_edge_and_parse() {
        assert!(GraphError::MissingEdge { edge: (3, 4) }
            .to_string()
            .contains("(3, 4)"));
        let parse = GraphError::Parse {
            line: 12,
            message: "bad token".to_string(),
        };
        assert!(parse.to_string().contains("line 12"));
    }

    #[test]
    fn display_duplicate_edge() {
        let err = GraphError::DuplicateEdge { edge: (2, 9) };
        assert!(err.to_string().contains("(2, 9)"));
    }

    #[test]
    fn display_snapshot_errors() {
        let cases: Vec<(SnapshotError, &str)> = vec![
            (
                SnapshotError::Truncated {
                    expected: 100,
                    actual: 10,
                },
                "100",
            ),
            (SnapshotError::BadMagic, "magic"),
            (SnapshotError::UnsupportedVersion(9), "9"),
            (
                SnapshotError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "mismatch",
            ),
            (
                SnapshotError::Corrupt("bad offsets".to_string()),
                "bad offsets",
            ),
        ];
        for (err, needle) in cases {
            let wrapped: GraphError = err.into();
            let text = wrapped.to_string();
            assert!(text.contains(needle), "{text}");
            assert!(text.contains("snapshot"));
        }
    }

    #[test]
    fn checked_id_narrows_and_overflows_typed() {
        assert_eq!(checked_id("triangle", 0), Ok(0));
        assert_eq!(checked_id("triangle", u32::MAX as usize), Ok(u32::MAX));
        let err = checked_id("4-clique", u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.kind, "4-clique");
        assert_eq!(err.value, u32::MAX as u64 + 1);
        let wrapped: GraphError = err.into();
        let text = wrapped.to_string();
        assert!(
            text.contains("4-clique") && text.contains("32-bit"),
            "{text}"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io(_)));
        assert!(err.to_string().contains("nope"));
    }
}
