//! Error type shared by all graph-construction and I/O operations.

use std::fmt;

/// Errors produced while building, loading, or manipulating an
/// [`UncertainGraph`](crate::UncertainGraph).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge probability was outside the half-open interval `(0, 1]`.
    InvalidProbability {
        /// Endpoints of the offending edge.
        edge: (u32, u32),
        /// The probability that was rejected.
        probability: f64,
    },
    /// A self-loop `(v, v)` was supplied where simple graphs are required.
    SelfLoop {
        /// The vertex of the self-loop.
        vertex: u32,
    },
    /// A vertex identifier referenced a vertex that does not exist.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge `(u, v)` that was expected to exist is absent.
    MissingEdge {
        /// Endpoints of the missing edge.
        edge: (u32, u32),
    },
    /// A textual edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Wrapper around I/O failures while reading or writing edge lists.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidProbability { edge, probability } => write!(
                f,
                "edge ({}, {}) has invalid probability {probability}; expected p in (0, 1]",
                edge.0, edge.1
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of bounds for a graph with {num_vertices} vertices"
            ),
            GraphError::MissingEdge { edge } => {
                write!(f, "edge ({}, {}) does not exist", edge.0, edge.1)
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_probability() {
        let err = GraphError::InvalidProbability {
            edge: (1, 2),
            probability: 1.5,
        };
        let text = err.to_string();
        assert!(text.contains("(1, 2)"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn display_self_loop() {
        let err = GraphError::SelfLoop { vertex: 7 };
        assert!(err.to_string().contains("7"));
    }

    #[test]
    fn display_out_of_bounds() {
        let err = GraphError::VertexOutOfBounds {
            vertex: 10,
            num_vertices: 5,
        };
        let text = err.to_string();
        assert!(text.contains("10") && text.contains("5"));
    }

    #[test]
    fn display_missing_edge_and_parse() {
        assert!(GraphError::MissingEdge { edge: (3, 4) }
            .to_string()
            .contains("(3, 4)"));
        let parse = GraphError::Parse {
            line: 12,
            message: "bad token".to_string(),
        };
        assert!(parse.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io(_)));
        assert!(err.to_string().contains("nope"));
    }
}
