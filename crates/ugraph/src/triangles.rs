//! Triangle enumeration and indexing.
//!
//! Triangles are the `r = 3` cliques of the (3,4)-nucleus.  The peeling
//! algorithms need to address triangles by dense integer ids and to look a
//! triangle up by its vertex set; [`TriangleIndex`] provides both.
//!
//! The index is deliberately **compact**: it stores nothing but the
//! sorted triangle array (12 bytes per triangle — three `u32` vertex
//! ids) and answers id lookups by binary search over it.  An earlier
//! revision kept a `HashMap<Triangle, TriangleId>` alongside, which
//! more than quadrupled the per-triangle footprint; at the million-edge
//! scale the map alone dwarfed the graph.  Dense ids are `u32` and every
//! narrowing from a `usize` count goes through the checked constructor
//! ([`crate::error::checked_id`]), so a graph with more than `2^32`
//! triangles surfaces a typed [`IdOverflow`] instead of wrapping.

use crate::error::{checked_id, IdOverflow};
use crate::graph::{UncertainGraph, VertexId};
use crate::par::{self, Parallelism};

/// Dense identifier of a triangle inside a [`TriangleIndex`].
pub type TriangleId = u32;

/// A triangle, stored with its vertices sorted increasingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triangle {
    vertices: [VertexId; 3],
}

impl Triangle {
    /// Creates a triangle from three distinct vertices (any order).
    ///
    /// # Panics
    ///
    /// Panics when the vertices are not pairwise distinct.
    pub fn new(a: VertexId, b: VertexId, c: VertexId) -> Self {
        assert!(
            a != b && b != c && a != c,
            "triangle vertices must be distinct"
        );
        let mut vertices = [a, b, c];
        vertices.sort_unstable();
        Triangle { vertices }
    }

    /// The sorted vertex triple.
    pub fn vertices(&self) -> [VertexId; 3] {
        self.vertices
    }

    /// `true` when `v` is a vertex of this triangle.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// The three edges of the triangle as canonical `(u, v)` pairs with
    /// `u < v`.
    pub fn edges(&self) -> [(VertexId, VertexId); 3] {
        let [a, b, c] = self.vertices;
        [(a, b), (a, c), (b, c)]
    }

    /// Probability that the triangle exists in a sampled possible world of
    /// `graph` (product of its edge probabilities).
    ///
    /// Returns `None` when one of the edges is missing from `graph`.
    pub fn probability(&self, graph: &UncertainGraph) -> Option<f64> {
        let [a, b, c] = self.vertices;
        graph.triangle_probability(a, b, c).ok()
    }
}

impl std::fmt::Display for Triangle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c] = self.vertices;
        write!(f, "({a}, {b}, {c})")
    }
}

/// Enumerates every triangle of `graph` exactly once.
///
/// The enumeration uses the standard edge-iterator technique: for each
/// canonical edge `(u, v)` with `u < v`, the common neighbours `w > v`
/// complete a triangle `(u, v, w)`.  Each triangle is therefore reported
/// from its lexicographically smallest edge only.
pub fn enumerate_triangles(graph: &UncertainGraph) -> Vec<Triangle> {
    enumerate_triangles_with(graph, Parallelism::Sequential)
}

/// [`enumerate_triangles`] with an explicit [`Parallelism`] setting.
///
/// Edges are scanned in parallel chunks; per-chunk results are merged in
/// edge order, so the output is identical to the sequential enumeration
/// for every thread count.
pub fn enumerate_triangles_with(graph: &UncertainGraph, parallelism: Parallelism) -> Vec<Triangle> {
    let edges = graph.edges();
    par::par_extend(parallelism, edges.len(), |range, out| {
        for e in &edges[range] {
            let (u, v) = (e.u, e.v);
            for w in graph.common_neighbors(u, v) {
                if w > v {
                    out.push(Triangle::new(u, v, w));
                }
            }
        }
    })
}

/// Dense id ↔ triangle index over all triangles of a graph.
///
/// # Example
///
/// ```
/// use ugraph::{GraphBuilder, TriangleIndex, Triangle};
///
/// let mut b = GraphBuilder::new();
/// for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
///     b.add_edge(u, v, 1.0).unwrap();
/// }
/// let g = b.build();
/// let idx = TriangleIndex::build(&g);
/// assert_eq!(idx.len(), 4); // K4 has 4 triangles
/// let t = Triangle::new(0, 1, 2);
/// let id = idx.id_of(&t).unwrap();
/// assert_eq!(idx.triangle(id), t);
/// ```
#[derive(Debug, Clone)]
pub struct TriangleIndex {
    /// Sorted lexicographically; a triangle's dense id is its position.
    triangles: Vec<Triangle>,
}

impl TriangleIndex {
    /// Enumerates the triangles of `graph` and builds the index.
    ///
    /// # Panics
    ///
    /// Panics when the graph holds more than `2^32` triangles; use
    /// [`TriangleIndex::try_build_with`] for the typed error.
    pub fn build(graph: &UncertainGraph) -> Self {
        Self::build_with(graph, Parallelism::Sequential)
    }

    /// [`TriangleIndex::build`] with an explicit [`Parallelism`] setting.
    /// The resulting index is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics when the graph holds more than `2^32` triangles; use
    /// [`TriangleIndex::try_build_with`] for the typed error.
    pub fn build_with(graph: &UncertainGraph, parallelism: Parallelism) -> Self {
        Self::try_build_with(graph, parallelism).expect("triangle count exceeds the u32 id space")
    }

    /// Fallible [`TriangleIndex::build_with`]: surfaces the id-space
    /// overflow as a typed [`IdOverflow`] instead of panicking.
    pub fn try_build_with(
        graph: &UncertainGraph,
        parallelism: Parallelism,
    ) -> Result<Self, IdOverflow> {
        let mut triangles = enumerate_triangles_with(graph, parallelism);
        triangles.sort_unstable();
        Self::from_sorted(triangles)
    }

    /// Streaming sequential build that walks the edge table in chunks of
    /// `chunk_edges` edges, bounding the enumeration scratch by the
    /// densest chunk instead of the whole graph.
    ///
    /// The canonical smallest-edge enumeration emits triangles already
    /// in lexicographic order (edges are sorted by `(u, v)` and each
    /// edge's completions ascend in `w`), so chunks concatenate into the
    /// exact array [`TriangleIndex::build`] produces — no global sort,
    /// no id drift, and peak transient memory is one chunk's triangles
    /// plus the growing index itself.
    pub fn try_build_streaming(
        graph: &UncertainGraph,
        chunk_edges: usize,
    ) -> Result<Self, IdOverflow> {
        let chunk_edges = chunk_edges.max(1);
        let edges = graph.edges();
        let mut triangles = Vec::new();
        let mut scratch = Vec::new();
        let mut start = 0;
        while start < edges.len() {
            let end = (start + chunk_edges).min(edges.len());
            for e in &edges[start..end] {
                let (u, v) = (e.u, e.v);
                for w in graph.common_neighbors(u, v) {
                    if w > v {
                        scratch.push(Triangle::new(u, v, w));
                    }
                }
            }
            triangles.extend_from_slice(&scratch);
            scratch.clear();
            start = end;
        }
        debug_assert!(triangles.windows(2).all(|w| w[0] < w[1]));
        Self::from_sorted(triangles)
    }

    /// Builds an index over an explicit set of triangles (used for
    /// subgraph-restricted decompositions).
    ///
    /// # Panics
    ///
    /// Panics past `2^32` triangles (see [`TriangleIndex::build`]).
    pub fn from_triangles(mut triangles: Vec<Triangle>) -> Self {
        triangles.sort_unstable();
        triangles.dedup();
        Self::from_sorted(triangles).expect("triangle count exceeds the u32 id space")
    }

    /// Wraps an already-sorted, deduplicated triangle array, applying
    /// the checked id narrowing.
    fn from_sorted(triangles: Vec<Triangle>) -> Result<Self, IdOverflow> {
        if let Some(last) = triangles.len().checked_sub(1) {
            checked_id("triangle", last)?;
        }
        Ok(TriangleIndex { triangles })
    }

    /// Number of indexed triangles.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// `true` when the graph has no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// The triangle with dense id `id`.
    pub fn triangle(&self, id: TriangleId) -> Triangle {
        self.triangles[id as usize]
    }

    /// Dense id of `t`, or `None` when `t` is not indexed.
    ///
    /// Binary search over the sorted triangle array: `O(log T)` with no
    /// auxiliary structure to keep resident.
    pub fn id_of(&self, t: &Triangle) -> Option<TriangleId> {
        self.triangles
            .binary_search(t)
            .ok()
            .map(|i| i as TriangleId)
    }

    /// Dense id of the triangle `(a, b, c)`, or `None` when absent.
    pub fn id_of_vertices(&self, a: VertexId, b: VertexId, c: VertexId) -> Option<TriangleId> {
        self.id_of(&Triangle::new(a, b, c))
    }

    /// Repairs the index after an edge-update batch: surviving triangles
    /// are kept (a triangle survives iff all three of its edges are still
    /// present in `new_graph`), and the triangles created by the
    /// net-inserted edges (`inserted`, canonical pairs as reported by
    /// [`crate::update::GraphDelta::inserted`]) are enumerated around
    /// those edges only.  The result is identical — same triangles, same
    /// ids — to [`TriangleIndex::build`] on `new_graph`, at a cost
    /// proportional to the old index plus the inserted edges'
    /// neighbourhoods instead of the whole edge set.
    ///
    /// The incremental enumeration takes *every* common neighbour of an
    /// inserted edge (no `w > v` restriction): the inserted edge can be
    /// any of a new triangle's three edges, so the canonical smallest-edge
    /// reporting of the full enumeration does not apply.  Duplicates
    /// (a triangle containing two inserted edges) are removed by the
    /// sort + dedup before the merge.
    pub fn repair(&self, new_graph: &UncertainGraph, inserted: &[(VertexId, VertexId)]) -> Self {
        let survivors = self
            .triangles
            .iter()
            .copied()
            .filter(|t| t.edges().iter().all(|&(a, b)| new_graph.has_edge(a, b)));

        let mut added: Vec<Triangle> = Vec::new();
        for &(u, v) in inserted {
            for w in new_graph.common_neighbors(u, v) {
                added.push(Triangle::new(u, v, w));
            }
        }
        added.sort_unstable();
        added.dedup();

        // Survivors (sorted, all-old edges) and additions (sorted, each
        // contains an inserted edge) are disjoint; one merge restores the
        // global lexicographic id order of a fresh build.
        let mut triangles = Vec::with_capacity(self.triangles.len() + added.len());
        let mut add_iter = added.into_iter().peekable();
        for t in survivors {
            while let Some(&a) = add_iter.peek() {
                if a < t {
                    triangles.push(a);
                    add_iter.next();
                } else {
                    break;
                }
            }
            triangles.push(t);
        }
        triangles.extend(add_iter);

        Self::from_sorted(triangles).expect("triangle count exceeds the u32 id space")
    }

    /// Iterator over `(id, triangle)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TriangleId, Triangle)> + '_ {
        self.triangles
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TriangleId, *t))
    }

    /// All triangles in id order.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }
}

/// Counts triangles per vertex; entry `v` is the number of triangles
/// containing `v`.  Useful for clustering-coefficient style statistics.
pub fn triangle_counts_per_vertex(graph: &UncertainGraph) -> Vec<usize> {
    let mut counts = vec![0usize; graph.num_vertices()];
    for t in enumerate_triangles(graph) {
        for v in t.vertices() {
            counts[v as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn k4() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        b.build()
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn triangle_requires_distinct_vertices() {
        let _ = Triangle::new(1, 1, 2);
    }

    #[test]
    fn triangle_normalizes_order() {
        let t = Triangle::new(5, 2, 9);
        assert_eq!(t.vertices(), [2, 5, 9]);
        assert!(t.contains(5));
        assert!(!t.contains(3));
        assert_eq!(t.edges(), [(2, 5), (2, 9), (5, 9)]);
        assert_eq!(t.to_string(), "(2, 5, 9)");
    }

    #[test]
    fn enumerate_k4_triangles() {
        let g = k4();
        let ts = enumerate_triangles(&g);
        assert_eq!(ts.len(), 4);
        let expected = [
            Triangle::new(0, 1, 2),
            Triangle::new(0, 1, 3),
            Triangle::new(0, 2, 3),
            Triangle::new(1, 2, 3),
        ];
        for t in expected {
            assert!(ts.contains(&t));
        }
    }

    #[test]
    fn enumerate_no_duplicates_on_dense_graph() {
        // K6: 20 triangles.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
        let g = b.build();
        let mut ts = enumerate_triangles(&g);
        let before = ts.len();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(before, ts.len());
        assert_eq!(before, 20);
    }

    #[test]
    fn triangle_probability_matches_edges() {
        let g = k4();
        let t = Triangle::new(0, 1, 2);
        assert!((t.probability(&g).unwrap() - 0.125).abs() < 1e-12);
        let missing = Triangle::new(0, 1, 5);
        assert_eq!(missing.probability(&g), None);
    }

    #[test]
    fn index_round_trip() {
        let g = k4();
        let idx = TriangleIndex::build(&g);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        for (id, t) in idx.iter() {
            assert_eq!(idx.id_of(&t), Some(id));
            assert_eq!(idx.triangle(id), t);
        }
        assert_eq!(
            idx.id_of_vertices(2, 1, 0),
            idx.id_of(&Triangle::new(0, 1, 2))
        );
        assert_eq!(idx.id_of(&Triangle::new(0, 1, 4)), None);
    }

    #[test]
    fn index_from_explicit_triangles_dedups() {
        let ts = vec![
            Triangle::new(0, 1, 2),
            Triangle::new(2, 1, 0),
            Triangle::new(1, 2, 3),
        ];
        let idx = TriangleIndex::from_triangles(ts);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn per_vertex_triangle_counts() {
        let g = k4();
        let counts = triangle_counts_per_vertex(&g);
        assert_eq!(counts, vec![3, 3, 3, 3]);
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        // K8 has 56 triangles; exercise multiple chunked workers.
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in (u + 1)..8u32 {
                b.add_edge(u, v, 0.7).unwrap();
            }
        }
        let g = b.build();
        let sequential = enumerate_triangles(&g);
        for threads in [1, 2, 8] {
            let par = enumerate_triangles_with(&g, Parallelism::fixed(threads));
            assert_eq!(par, sequential, "threads = {threads}");
            let idx = TriangleIndex::build_with(&g, Parallelism::fixed(threads));
            assert_eq!(idx.triangles(), TriangleIndex::build(&g).triangles());
        }
    }

    #[test]
    fn repair_matches_fresh_build_after_updates() {
        use crate::update::{apply_edge_updates, EdgeUpdate};
        // Dense-ish 7-vertex graph so updates create and destroy
        // triangles in bulk.
        let mut b = GraphBuilder::new();
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 4),
            (4, 5),
            (1, 4),
            (0, 5),
            (2, 5),
            (5, 6),
        ];
        for &(u, v) in &edges {
            b.add_edge(u, v, 0.8).unwrap();
        }
        let g = b.build();
        let idx = TriangleIndex::build(&g);

        let batches: Vec<Vec<EdgeUpdate>> = vec![
            // Pure inserts creating new triangles (including at the
            // previously triangle-free vertex 6).
            vec![
                EdgeUpdate::Insert { u: 4, v: 6, p: 0.5 },
                EdgeUpdate::Insert { u: 4, v: 0, p: 0.5 },
            ],
            // Pure deletes destroying triangles.
            vec![
                EdgeUpdate::Delete { u: 1, v: 2 },
                EdgeUpdate::Delete { u: 3, v: 4 },
            ],
            // Mixed batch with a re-weight (structure-neutral) and an
            // insert-then-delete that nets out.
            vec![
                EdgeUpdate::Reweight { u: 0, v: 1, p: 0.3 },
                EdgeUpdate::Insert { u: 3, v: 5, p: 0.9 },
                EdgeUpdate::Delete { u: 0, v: 2 },
                EdgeUpdate::Insert { u: 0, v: 6, p: 0.2 },
                EdgeUpdate::Delete { u: 0, v: 6 },
            ],
        ];
        for batch in batches {
            let delta = apply_edge_updates(&g, &batch).unwrap();
            let repaired = idx.repair(&delta.graph, &delta.inserted);
            let fresh = TriangleIndex::build(&delta.graph);
            assert_eq!(repaired.triangles(), fresh.triangles());
            for (id, t) in fresh.iter() {
                assert_eq!(repaired.id_of(&t), Some(id));
            }
        }
    }

    #[test]
    fn streaming_build_matches_full_build_for_every_chunk_size() {
        // A mixed graph: K6 fused with a path and a pendant, so chunks
        // cut through dense and sparse regions alike.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                b.add_edge(u, v, 0.9).unwrap();
            }
        }
        for &(u, v) in &[(5, 6), (6, 7), (7, 8), (2, 8)] {
            b.add_edge(u, v, 0.4).unwrap();
        }
        let g = b.build();
        let full = TriangleIndex::build(&g);
        for chunk in [0, 1, 2, 3, 7, 100] {
            let streamed = TriangleIndex::try_build_streaming(&g, chunk).unwrap();
            assert_eq!(streamed.triangles(), full.triangles(), "chunk = {chunk}");
            for (id, t) in full.iter() {
                assert_eq!(streamed.id_of(&t), Some(id));
            }
        }
    }

    #[test]
    fn enumeration_order_is_already_lexicographic() {
        // The invariant the streaming build rests on: the canonical
        // smallest-edge enumeration emits triangles in sorted order.
        let mut b = GraphBuilder::new();
        for u in 0..9u32 {
            for v in (u + 1)..9u32 {
                if (u + v) % 3 != 0 {
                    b.add_edge(u, v, 0.5).unwrap();
                }
            }
        }
        let g = b.build();
        let ts = enumerate_triangles(&g);
        assert!(!ts.is_empty());
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn triangle_free_graph() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        assert!(enumerate_triangles(&g).is_empty());
        assert!(TriangleIndex::build(&g).is_empty());
    }
}
