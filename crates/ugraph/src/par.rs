//! Zero-dependency parallel execution substrate.
//!
//! The hot paths of the nucleus decomposition — triangle enumeration,
//! 4-clique enumeration and support-structure construction — are all
//! embarrassingly parallel scans over an index range (edges, triangles or
//! cliques).  This module provides the one primitive they need:
//! [`par_extend`], a chunked parallel-for over `0..n` built on
//! [`std::thread::scope`] with an atomic chunk-claiming counter, so idle
//! workers keep pulling chunks until the range is drained (self-scheduling
//! over index ranges — no channels, no allocator-heavy task queue).
//!
//! Determinism is non-negotiable for this codebase: every parallel result
//! must be **bit-identical** to the sequential one so that decompositions
//! stay reproducible across machines and thread counts.  Workers therefore
//! write into per-chunk local buffers which are concatenated in chunk
//! order after the scope joins; since chunks partition `0..n` in order,
//! the merged output is exactly what a sequential left-to-right pass
//! produces.
//!
//! How much parallelism to use is described by [`Parallelism`]:
//!
//! ```
//! use ugraph::par::{par_extend, Parallelism};
//!
//! let squares = par_extend(Parallelism::fixed(4), 10, |range, out| {
//!     for i in range {
//!         out.push(i * i);
//!     }
//! });
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! ```

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of chunks handed out per worker thread.  Oversubscription lets
/// the atomic claiming counter rebalance skewed workloads (a chunk of
/// high-degree vertices costs far more than one of low-degree vertices).
const CHUNKS_PER_THREAD: usize = 16;

/// Degree of parallelism for the enumeration and scoring hot paths.
///
/// The default is [`Parallelism::Auto`], which uses
/// [`std::thread::available_parallelism`].  [`Parallelism::Sequential`]
/// runs everything on the calling thread — useful for debugging,
/// single-threaded determinism of *execution* (results are bit-identical
/// in every mode), and as a baseline for speedup measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Run on the calling thread, spawning nothing.
    Sequential,
    /// One worker per hardware thread reported by
    /// [`std::thread::available_parallelism`] (falls back to sequential
    /// when the query fails).
    #[default]
    Auto,
    /// Exactly this many worker threads.
    Fixed(NonZeroUsize),
}

impl Parallelism {
    /// A fixed thread count; `0` is treated as [`Parallelism::Sequential`].
    pub fn fixed(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(n) => Parallelism::Fixed(n),
            None => Parallelism::Sequential,
        }
    }

    /// The number of worker threads this setting resolves to (at least 1).
    pub fn num_threads(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.get(),
        }
    }

    /// `true` when this setting resolves to a single thread.
    pub fn is_sequential(&self) -> bool {
        self.num_threads() <= 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "sequential"),
            Parallelism::Auto => write!(f, "auto({})", self.num_threads()),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Chunked parallel-for over `0..n` producing an ordered `Vec<T>`.
///
/// `body` is called once per disjoint subrange of `0..n` (in-order ranges
/// that together cover the whole interval) and appends its results to the
/// provided buffer.  Buffers are concatenated in range order, so the
/// returned vector is **identical** to what
/// `let mut out = vec![]; body(0..n, &mut out);` produces — including
/// element order and floating-point bit patterns — regardless of thread
/// count or scheduling.
///
/// Work distribution: the range is split into about
/// `threads × CHUNKS_PER_THREAD` chunks and workers claim chunk indices
/// from a shared atomic counter until none remain.
///
/// # Panics
///
/// Propagates a panic from `body` to the caller.
pub fn par_extend<T, F>(par: Parallelism, n: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>, &mut Vec<T>) + Sync,
{
    let threads = par.num_threads();
    if threads <= 1 || n <= 1 {
        let mut out = Vec::new();
        body(0..n, &mut out);
        return out;
    }

    let chunk = (n / (threads * CHUNKS_PER_THREAD)).max(1);
    let num_chunks = n.div_ceil(chunk);
    let workers = threads.min(num_chunks);
    let next = AtomicUsize::new(0);

    let mut tagged: Vec<(usize, Vec<T>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_chunks {
                            break;
                        }
                        let lo = i * chunk;
                        let hi = ((i + 1) * chunk).min(n);
                        let mut buf = Vec::new();
                        body(lo..hi, &mut buf);
                        mine.push((i, buf));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(chunks) => chunks,
                // Re-raise with the original payload so callers see the
                // real assertion message, not a generic join error.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    tagged.sort_unstable_by_key(|(i, _)| *i);
    let total = tagged.iter().map(|(_, v)| v.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (_, mut part) in tagged {
        out.append(&mut part);
    }
    out
}

/// Parallel index map: returns `[f(0), f(1), …, f(n-1)]`.
///
/// Convenience wrapper over [`par_extend`] with the same determinism
/// guarantee.
pub fn par_map<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_extend(par, n, |range, out| {
        out.reserve(range.len());
        for i in range {
            out.push(f(i));
        }
    })
}

/// Parallel index map with per-chunk worker state: like [`par_map`], but
/// `init` is called once per chunk and the produced state is threaded
/// through every `f` call of that chunk.  This is the hook scratch-buffer
/// arenas plug into: the nucleus scoring pass reuses one DP scratch per
/// chunk instead of allocating per triangle, while the ordered-merge
/// guarantee of [`par_extend`] keeps the output bit-identical to a
/// sequential left-to-right pass for every thread count.
pub fn par_map_init<T, S, I, F>(par: Parallelism, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    par_extend(par, n, |range, out| {
        let mut state = init();
        out.reserve(range.len());
        for i in range {
            out.push(f(&mut state, i));
        }
    })
}

/// Parallel sum of a per-range reducer: splits `0..n` into chunks, calls
/// `f(range)` for each and sums the partial results.  Used by counting
/// paths that never materialize their items.
pub fn par_count<F>(par: Parallelism, n: usize, f: F) -> usize
where
    F: Fn(Range<usize>) -> usize + Sync,
{
    par_extend(par, n, |range, out: &mut Vec<usize>| out.push(f(range)))
        .into_iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Sequential.num_threads(), 1);
        assert!(Parallelism::Sequential.is_sequential());
        assert_eq!(Parallelism::fixed(0), Parallelism::Sequential);
        assert_eq!(Parallelism::fixed(4).num_threads(), 4);
        assert!(!Parallelism::fixed(4).is_sequential());
        assert!(Parallelism::Auto.num_threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn parallelism_display() {
        assert_eq!(Parallelism::Sequential.to_string(), "sequential");
        assert_eq!(Parallelism::fixed(3).to_string(), "3");
        assert!(Parallelism::Auto.to_string().starts_with("auto("));
    }

    #[test]
    fn empty_range() {
        for par in [Parallelism::Sequential, Parallelism::fixed(4)] {
            let out: Vec<u64> = par_extend(par, 0, |range, _| assert!(range.is_empty()));
            assert!(out.is_empty());
        }
    }

    #[test]
    fn output_matches_sequential_for_every_thread_count() {
        // Variable-size per-index output exercises the merge logic.
        let body = |range: Range<usize>, out: &mut Vec<usize>| {
            for i in range {
                for j in 0..(i % 4) {
                    out.push(i * 10 + j);
                }
            }
        };
        let mut expected = Vec::new();
        body(0..1000, &mut expected);
        for threads in [1, 2, 3, 8, 64] {
            let got = par_extend(Parallelism::fixed(threads), 1000, body);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_matches_direct_map() {
        let f = |i: usize| (i as f64).sqrt();
        let expected: Vec<f64> = (0..257).map(f).collect();
        for threads in [1, 2, 8] {
            let got = par_map(Parallelism::fixed(threads), 257, f);
            // Bit-identical, not just approximately equal.
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(&expected) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn par_map_init_reuses_state_within_chunks() {
        // The state counts how many indices the chunk has processed so
        // far; outputs must still merge in index order, and every index
        // must observe a state initialized at the chunk boundary (the
        // per-chunk counter never exceeds the chunk length).
        for threads in [1, 2, 4, 8] {
            let chunk = (1000 / (threads * CHUNKS_PER_THREAD)).max(1);
            let got = par_map_init(
                Parallelism::fixed(threads),
                1000,
                || 0usize,
                |seen, i| {
                    *seen += 1;
                    (i, *seen)
                },
            );
            assert_eq!(got.len(), 1000);
            for (pos, &(i, seen)) in got.iter().enumerate() {
                assert_eq!(i, pos, "threads = {threads}");
                assert!(seen >= 1);
                if threads > 1 {
                    assert!(seen <= chunk, "state leaked across chunks");
                }
            }
        }
    }

    #[test]
    fn par_count_sums_partials() {
        for threads in [1, 2, 8] {
            let total = par_count(Parallelism::fixed(threads), 100, |r| {
                r.filter(|i| i % 3 == 0).count()
            });
            assert_eq!(total, 34, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map(Parallelism::fixed(32), 3, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::fixed(2), 64, |i| {
                if i == 63 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
