//! Quality metrics for probabilistic subgraphs.
//!
//! Section 7.4 of the paper evaluates decompositions with two metrics:
//!
//! * **Probabilistic density** (PD, Equation 19): the sum of edge
//!   probabilities divided by the number of vertex pairs —
//!   `PD(G) = Σ_e p_e / (|V|·(|V|−1)/2)`.
//! * **Probabilistic clustering coefficient** (PCC, Equation 20):
//!   `PCC(G) = 3·Σ_{△uvw} p(u,v)p(v,w)p(u,w) / Σ_{(u,v),(u,w),v≠w} p(u,v)p(u,w)`,
//!   i.e. three times the expected number of triangles over the expected
//!   number of open wedges.
//!
//! Both are defined on the *probabilistic* graph; possible worlds are not
//! sampled.

use crate::graph::UncertainGraph;
use crate::triangles::enumerate_triangles;

/// Probabilistic density (Equation 19).  Returns `0.0` for graphs with
/// fewer than two vertices.
pub fn probabilistic_density(graph: &UncertainGraph) -> f64 {
    let n = graph.num_vertices();
    if n < 2 {
        return 0.0;
    }
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    graph.expected_num_edges() / pairs
}

/// Probabilistic clustering coefficient (Equation 20).  Returns `0.0` when
/// the graph has no wedges (no vertex with degree ≥ 2).
pub fn probabilistic_clustering_coefficient(graph: &UncertainGraph) -> f64 {
    // Numerator: 3 * expected number of triangles.
    let mut closed = 0.0f64;
    for t in enumerate_triangles(graph) {
        let [a, b, c] = t.vertices();
        // All three edges exist because t is a triangle of the graph.
        closed += graph.triangle_probability(a, b, c).unwrap_or(0.0);
    }

    // Denominator: expected number of wedges centred at each vertex u:
    // Σ_{v<w, v,w ∈ N(u)} p(u,v)·p(u,w)
    //   = ( (Σ p)^2 − Σ p^2 ) / 2  per centre u.
    let mut wedges = 0.0f64;
    for u in graph.vertices() {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for (_, p, _) in graph.neighbor_entries(u) {
            sum += p;
            sum_sq += p * p;
        }
        wedges += (sum * sum - sum_sq) / 2.0;
    }

    if wedges <= 0.0 {
        0.0
    } else {
        3.0 * closed / wedges
    }
}

/// Process-wide peak resident set size in bytes, read from the `VmHWM`
/// line of `/proc/self/status`; `0` on platforms without that interface
/// or when the file cannot be parsed.
///
/// `VmHWM` is a high-water mark maintained by the kernel for the whole
/// process, so the value is monotone across a run and includes memory
/// the caller did not allocate itself.  Benchmark reports record it as a
/// bounded environment probe next to the deterministic
/// `peak_scratch_bytes` accounting — gate it with a generous factor, not
/// exactly.
pub fn peak_rss_bytes() -> u64 {
    peak_rss_from_status(&std::fs::read_to_string("/proc/self/status").unwrap_or_default())
}

/// Parses the `VmHWM:` line (kB) out of a `/proc/self/status` payload.
fn peak_rss_from_status(status: &str) -> u64 {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Expected degree of each vertex (sum of incident edge probabilities).
pub fn expected_degrees(graph: &UncertainGraph) -> Vec<f64> {
    graph
        .vertices()
        .map(|v| graph.neighbor_entries(v).map(|(_, p, _)| p).sum())
        .collect()
}

/// Summary statistics of a probabilistic graph, mirroring the columns of
/// Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStatistics {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average edge probability.
    pub average_probability: f64,
    /// Number of triangles (ignoring probabilities).
    pub num_triangles: usize,
}

impl GraphStatistics {
    /// Computes the statistics of `graph`.
    pub fn compute(graph: &UncertainGraph) -> Self {
        GraphStatistics {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            max_degree: graph.max_degree(),
            average_probability: graph.average_probability(),
            num_triangles: graph.count_triangles(),
        }
    }
}

impl std::fmt::Display for GraphStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} dmax={} p_avg={:.2} |triangles|={}",
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            self.average_probability,
            self.num_triangles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle(p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, p).unwrap();
        b.add_edge(1, 2, p).unwrap();
        b.add_edge(0, 2, p).unwrap();
        b.build()
    }

    #[test]
    fn density_of_certain_triangle_is_one() {
        let g = triangle(1.0);
        assert!((probabilistic_density(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_scales_with_probability() {
        let g = triangle(0.5);
        assert!((probabilistic_density(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_of_tiny_graphs_is_zero() {
        assert_eq!(probabilistic_density(&UncertainGraph::empty(0)), 0.0);
        assert_eq!(probabilistic_density(&UncertainGraph::empty(1)), 0.0);
    }

    #[test]
    fn pcc_of_certain_triangle_is_one() {
        let g = triangle(1.0);
        assert!((probabilistic_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pcc_of_star_is_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(0, 3, 0.9).unwrap();
        let g = b.build();
        assert_eq!(probabilistic_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn pcc_of_triangle_with_uniform_probability() {
        // numerator = 3·p^3, denominator = 3 wedges · p^2 → PCC = p.
        let g = triangle(0.4);
        assert!((probabilistic_clustering_coefficient(&g) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn pcc_no_wedges_returns_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        assert_eq!(probabilistic_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn pcc_matches_manual_computation_on_paw_graph() {
        // Triangle 0-1-2 plus pendant edge 2-3.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.6).unwrap();
        b.add_edge(0, 2, 0.7).unwrap();
        b.add_edge(2, 3, 0.8).unwrap();
        let g = b.build();
        let closed = 0.5 * 0.6 * 0.7;
        // Wedges: centre 0: 0.5*0.7; centre 1: 0.5*0.6;
        // centre 2: 0.6*0.7 + 0.6*0.8 + 0.7*0.8; centre 3: none.
        let wedges = 0.5 * 0.7 + 0.5 * 0.6 + (0.6 * 0.7 + 0.6 * 0.8 + 0.7 * 0.8);
        let expected = 3.0 * closed / wedges;
        assert!((probabilistic_clustering_coefficient(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_degrees_sum_to_twice_expected_edges() {
        let g = triangle(0.25);
        let degs = expected_degrees(&g);
        let total: f64 = degs.iter().sum();
        assert!((total - 2.0 * g.expected_num_edges()).abs() < 1e-12);
    }

    #[test]
    fn peak_rss_parses_vmhwm_and_tolerates_garbage() {
        let status = "Name:\ttest\nVmPeak:\t  999 kB\nVmHWM:\t    2048 kB\nThreads:\t1\n";
        assert_eq!(super::peak_rss_from_status(status), 2048 * 1024);
        assert_eq!(super::peak_rss_from_status(""), 0);
        assert_eq!(super::peak_rss_from_status("VmHWM:\tnot-a-number kB\n"), 0);
        // On Linux the live probe reports something plausible; elsewhere 0.
        let live = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(live > 0, "VmHWM should be readable on Linux");
        }
    }

    #[test]
    fn statistics_match_graph_queries() {
        let g = triangle(0.5);
        let stats = GraphStatistics::compute(&g);
        assert_eq!(stats.num_vertices, 3);
        assert_eq!(stats.num_edges, 3);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.num_triangles, 1);
        assert!((stats.average_probability - 0.5).abs() < 1e-12);
        let text = stats.to_string();
        assert!(text.contains("|V|=3"));
    }
}
