//! Konect-style TSV edge lists.
//!
//! The [Konect](http://konect.cc) collection distributes graphs as
//! `out.*` TSV files: `%`-prefixed header/comment lines, then one edge
//! per line as `u v [weight [timestamp]]`, tab or space separated.  Two
//! properties distinguish the format from SNAP edge lists:
//!
//! * the third column is a *weight* (multiplicity, rating, count), not a
//!   probability, and
//! * the same edge may legitimately appear on many lines (temporal
//!   multi-edges); occurrences are aggregated by **summing weights**, so a
//!   repeated collaboration strengthens the edge exactly as the paper's
//!   exponential weight→probability treatment of DBLP expects.
//!
//! The aggregated weight is handed to the [`EdgeProbabilityModel`]; with
//! [`EdgeProbabilityModel::Column`] the (summed) weight must itself be a
//! valid probability.  Self-loops are rejected with a typed error.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::io::prob_model::EdgeProbabilityModel;
use crate::Result;

/// Reads a Konect-style TSV from any reader.
///
/// # Example
///
/// ```
/// use ugraph::io::EdgeProbabilityModel;
///
/// // Two joint papers between 1 and 2, one between 2 and 3.
/// let text = "% sym positive\n1\t2\t1\t1091000000\n2\t3\n1\t2\t1\t1112000000\n";
/// let g = ugraph::io::read_konect(
///     text.as_bytes(),
///     &EdgeProbabilityModel::ExponentialWeight { scale: 5.0 },
/// )
/// .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// // The doubled weight makes the (1, 2) edge more probable.
/// assert!(g.edge_probability(1, 2) > g.edge_probability(2, 3));
/// ```
pub fn read_konect<R: Read>(reader: R, model: &EdgeProbabilityModel) -> Result<UncertainGraph> {
    let reader = BufReader::new(reader);
    // First-occurrence order plus aggregated weights: iteration must not
    // depend on HashMap order or seeded models would be nondeterministic.
    let mut order: Vec<(u32, u32)> = Vec::new();
    let mut weights: HashMap<(u32, u32), (f64, bool)> = HashMap::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_vertex(parts.next(), line_no, "source vertex")?;
        let v = parse_vertex(parts.next(), line_no, "target vertex")?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let weight = match parts.next() {
            Some(tok) => {
                let w = tok.parse::<f64>().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("invalid weight '{tok}'"),
                })?;
                Some(w)
            }
            None => None,
        };
        // Column 4 is a timestamp; ignore it, but reject wider rows.
        let _timestamp = parts.next();
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected at most four columns (u v weight timestamp)".to_string(),
            });
        }
        let key = (u.min(v), u.max(v));
        let entry = weights.entry(key);
        match entry {
            std::collections::hash_map::Entry::Vacant(slot) => {
                order.push(key);
                slot.insert((weight.unwrap_or(1.0), weight.is_some()));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let (total, explicit) = slot.get_mut();
                *total += weight.unwrap_or(1.0);
                *explicit = *explicit || weight.is_some();
            }
        }
    }

    let mut builder = GraphBuilder::new();
    let mut assigner = model.assigner();
    for key in order {
        let (total, explicit) = weights[&key];
        // Weightless multi-edges still aggregate: each occurrence counts 1.
        let value = if explicit || total != 1.0 {
            Some(total)
        } else {
            None
        };
        let p = assigner.probability(key, value)?;
        builder.add_edge_strict(key.0, key.1, p)?;
    }
    Ok(builder.build())
}

fn parse_vertex(token: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let tok = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse::<u32>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} '{tok}'"),
    })
}

/// Reads a Konect-style TSV from a file path.
pub fn read_konect_file<P: AsRef<Path>>(
    path: P,
    model: &EdgeProbabilityModel,
) -> Result<UncertainGraph> {
    let file = File::open(path)?;
    read_konect(file, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_model() -> EdgeProbabilityModel {
        EdgeProbabilityModel::ExponentialWeight { scale: 5.0 }
    }

    #[test]
    fn parses_tabs_comments_and_default_weights() {
        let text = "% asym\n% 3 3\n1\t2\n2\t3\t4\n\n";
        let g = read_konect(text.as_bytes(), &exp_model()).unwrap();
        assert_eq!(g.num_edges(), 2);
        let p1 = g.edge_probability(1, 2).unwrap();
        let p4 = g.edge_probability(2, 3).unwrap();
        assert!((p1 - (1.0 - (-1.0f64 / 5.0).exp())).abs() < 1e-12);
        assert!((p4 - (1.0 - (-4.0f64 / 5.0).exp())).abs() < 1e-12);
    }

    #[test]
    fn duplicate_lines_aggregate_weights() {
        // Three occurrences of {1,2}: weights 1 (implicit) + 2 + 1 = 4.
        let text = "1 2\n2 1 2\n1 2 1 1091000000\n";
        let g = read_konect(text.as_bytes(), &exp_model()).unwrap();
        assert_eq!(g.num_edges(), 1);
        let p = g.edge_probability(1, 2).unwrap();
        assert!((p - (1.0 - (-4.0f64 / 5.0).exp())).abs() < 1e-12);
    }

    #[test]
    fn column_model_requires_probability_weights() {
        let ok = read_konect("1 2 0.5\n".as_bytes(), &EdgeProbabilityModel::Column).unwrap();
        assert_eq!(ok.edge_probability(1, 2), Some(0.5));
        // Aggregated 0.5 + 0.8 = 1.3 is not a probability.
        let err = read_konect(
            "1 2 0.5\n1 2 0.8\n".as_bytes(),
            &EdgeProbabilityModel::Column,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_malformed_rows() {
        let m = exp_model();
        assert!(matches!(
            read_konect("5 5\n".as_bytes(), &m).unwrap_err(),
            GraphError::SelfLoop { vertex: 5 }
        ));
        assert!(read_konect("1\n".as_bytes(), &m).is_err());
        assert!(read_konect("a 2\n".as_bytes(), &m).is_err());
        assert!(read_konect("1 2 x\n".as_bytes(), &m).is_err());
        assert!(read_konect("1 2 1 1 1\n".as_bytes(), &m).is_err());
    }

    #[test]
    fn aggregation_order_is_first_occurrence() {
        // With a seeded uniform model the probabilities depend only on
        // first-occurrence order, so permuting *later* duplicates must not
        // change the result.
        let model = EdgeProbabilityModel::UniformSeeded {
            seed: 3,
            low: 0.1,
            high: 0.9,
        };
        let a = read_konect("1 2\n3 4\n1 2\n".as_bytes(), &model).unwrap();
        let b = read_konect("1 2\n3 4\n3 4\n".as_bytes(), &model).unwrap();
        assert_eq!(a.edge_probability(1, 2), b.edge_probability(1, 2));
        assert_eq!(a.edge_probability(3, 4), b.edge_probability(3, 4));
    }

    #[test]
    fn file_reader_reports_missing_files() {
        let err = read_konect_file("/nonexistent/missing.tsv", &exp_model()).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
