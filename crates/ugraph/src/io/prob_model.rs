//! Pluggable edge-probability models for ingested graphs.
//!
//! Real uncertain-graph benchmarks arrive in two flavours: files that
//! already carry a probability column (krogan-style confidence scores),
//! and deterministic source graphs that the paper's setup turns
//! probabilistic — uniformly random probabilities (pokec, ljournal) or an
//! exponential function of an edge weight such as the number of joint
//! publications (dblp).  [`EdgeProbabilityModel`] captures those three
//! recipes so every loader (SNAP, Konect, snapshots-to-be) shares one
//! assignment path.

use std::fmt;
use std::str::FromStr;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::GraphError;
use crate::Result;

/// How an ingested edge obtains its existence probability.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeProbabilityModel {
    /// Keep the probability parsed from the file's value column; edges
    /// without a value column are deterministic (`p = 1.0`).  Out-of-range
    /// values surface as [`GraphError::InvalidProbability`].
    Column,
    /// Every edge gets the same probability, ignoring any value column.
    Constant(f64),
    /// Seeded uniform probabilities in `[low, high]`, ignoring any value
    /// column — the treatment the paper applies to deterministic social
    /// networks.  Assignment order is the loader's canonical edge order,
    /// so a given `(file, seed)` pair always produces the same graph.
    UniformSeeded {
        /// RNG seed.
        seed: u64,
        /// Lower bound (must be `> 0`).
        low: f64,
        /// Upper bound (must be `≤ 1`).
        high: f64,
    },
    /// `p = 1 − exp(−w / scale)` where `w` is the file's value column
    /// interpreted as a weight (collaboration count, interaction count…);
    /// edges without a value column use `w = 1`.
    ExponentialWeight {
        /// Scale of the exponential conversion (the paper uses weights
        /// divided by a small constant; larger scale means smaller `p`).
        scale: f64,
    },
}

/// Streaming state for one assignment pass: the model plus whatever RNG it
/// needs, consuming edges in the loader's canonical order.
#[derive(Debug, Clone)]
pub struct ProbabilityAssigner {
    model: EdgeProbabilityModel,
    rng: Option<ChaCha8Rng>,
}

impl EdgeProbabilityModel {
    /// Starts an assignment pass.  Each loader creates exactly one
    /// assigner per file so seeded models stay deterministic.
    pub fn assigner(&self) -> ProbabilityAssigner {
        let rng = match self {
            EdgeProbabilityModel::UniformSeeded { seed, .. } => {
                Some(ChaCha8Rng::seed_from_u64(*seed))
            }
            _ => None,
        };
        ProbabilityAssigner {
            model: self.clone(),
            rng,
        }
    }
}

impl ProbabilityAssigner {
    /// Probability of the next edge, given the optional value column
    /// parsed for it.  `edge` is only used for error reporting.
    pub fn probability(&mut self, edge: (u32, u32), value: Option<f64>) -> Result<f64> {
        let p = match &self.model {
            EdgeProbabilityModel::Column => value.unwrap_or(1.0),
            EdgeProbabilityModel::Constant(p) => *p,
            EdgeProbabilityModel::UniformSeeded { low, high, .. } => {
                let rng = self.rng.as_mut().expect("uniform model has an RNG");
                rng.gen_range(*low..=*high)
            }
            EdgeProbabilityModel::ExponentialWeight { scale } => {
                let w = value.unwrap_or(1.0);
                // NaN is caught by the finiteness test.
                if !w.is_finite() || w <= 0.0 {
                    return Err(GraphError::InvalidProbability {
                        edge,
                        probability: w,
                    });
                }
                1.0 - (-w / scale.max(f64::MIN_POSITIVE)).exp()
            }
        };
        if !(p > 0.0 && p <= 1.0) || p.is_nan() {
            return Err(GraphError::InvalidProbability {
                edge,
                probability: p,
            });
        }
        Ok(p)
    }
}

impl Default for EdgeProbabilityModel {
    /// [`EdgeProbabilityModel::Column`]: trust the file's own column.
    #[allow(clippy::derivable_impls)] // a #[default] attribute would bury the doc
    fn default() -> Self {
        EdgeProbabilityModel::Column
    }
}

impl fmt::Display for EdgeProbabilityModel {
    /// The inverse of [`FromStr`], used to record dataset provenance in
    /// bench reports.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeProbabilityModel::Column => write!(f, "column"),
            EdgeProbabilityModel::Constant(p) => write!(f, "const:{p}"),
            EdgeProbabilityModel::UniformSeeded { seed, low, high } => {
                write!(f, "uniform:{seed}:{low}:{high}")
            }
            EdgeProbabilityModel::ExponentialWeight { scale } => write!(f, "exp:{scale}"),
        }
    }
}

impl FromStr for EdgeProbabilityModel {
    type Err = String;

    /// Parses the CLI spelling of a model:
    ///
    /// * `column`
    /// * `const:P`
    /// * `uniform:SEED[:LOW:HIGH]` (defaults `LOW = 0.05`, `HIGH = 0.95`)
    /// * `exp[:SCALE]` (default `SCALE = 5`)
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let parse_f64 = |tok: &str| {
            tok.parse::<f64>()
                .map_err(|_| format!("invalid number '{tok}' in probability model '{s}'"))
        };
        match head {
            "column" if rest.is_empty() => Ok(EdgeProbabilityModel::Column),
            "const" if rest.len() == 1 => Ok(EdgeProbabilityModel::Constant(parse_f64(rest[0])?)),
            "uniform" if rest.len() == 1 || rest.len() == 3 => {
                let seed = rest[0]
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed '{}' in '{s}'", rest[0]))?;
                let (low, high) = if rest.len() == 3 {
                    (parse_f64(rest[1])?, parse_f64(rest[2])?)
                } else {
                    (0.05, 0.95)
                };
                if !(low > 0.0 && low <= high && high <= 1.0) {
                    return Err(format!("uniform range ({low}, {high}) not within (0, 1]"));
                }
                Ok(EdgeProbabilityModel::UniformSeeded { seed, low, high })
            }
            "exp" if rest.len() <= 1 => {
                let scale = if rest.is_empty() {
                    5.0
                } else {
                    parse_f64(rest[0])?
                };
                if !scale.is_finite() || scale <= 0.0 {
                    return Err(format!("exp scale must be positive, got {scale}"));
                }
                Ok(EdgeProbabilityModel::ExponentialWeight { scale })
            }
            _ => Err(format!(
                "unknown probability model '{s}' \
                 (expected column | const:P | uniform:SEED[:LOW:HIGH] | exp[:SCALE])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_keeps_value_and_defaults_to_certain() {
        let mut a = EdgeProbabilityModel::Column.assigner();
        assert_eq!(a.probability((0, 1), Some(0.25)).unwrap(), 0.25);
        assert_eq!(a.probability((0, 2), None).unwrap(), 1.0);
        assert!(matches!(
            a.probability((0, 3), Some(1.5)).unwrap_err(),
            GraphError::InvalidProbability { .. }
        ));
        assert!(a.probability((0, 4), Some(0.0)).is_err());
        assert!(a.probability((0, 5), Some(f64::NAN)).is_err());
    }

    #[test]
    fn uniform_is_deterministic_per_seed_and_in_range() {
        let model = EdgeProbabilityModel::UniformSeeded {
            seed: 9,
            low: 0.2,
            high: 0.8,
        };
        let mut a = model.assigner();
        let mut b = model.assigner();
        for i in 0..100u32 {
            let pa = a.probability((i, i + 1), Some(0.5)).unwrap();
            let pb = b.probability((i, i + 1), None).unwrap();
            assert_eq!(pa, pb, "value column must be ignored");
            assert!((0.2..=0.8).contains(&pa));
        }
    }

    #[test]
    fn exponential_weight_maps_counts_to_probabilities() {
        let mut a = EdgeProbabilityModel::ExponentialWeight { scale: 5.0 }.assigner();
        let p1 = a.probability((0, 1), Some(1.0)).unwrap();
        let p10 = a.probability((0, 2), Some(10.0)).unwrap();
        assert!((p1 - (1.0 - (-0.2f64).exp())).abs() < 1e-12);
        assert!(p10 > p1, "heavier edges must be more probable");
        assert_eq!(
            a.probability((0, 3), None).unwrap(),
            a.probability((0, 4), Some(1.0)).unwrap()
        );
        assert!(a.probability((0, 5), Some(-2.0)).is_err());
    }

    #[test]
    fn parse_and_display_round_trip() {
        for spec in ["column", "const:0.5", "uniform:42:0.1:0.9", "exp:5"] {
            let model: EdgeProbabilityModel = spec.parse().unwrap();
            let again: EdgeProbabilityModel = model.to_string().parse().unwrap();
            assert_eq!(model, again, "{spec}");
        }
        assert_eq!(
            "uniform:7".parse::<EdgeProbabilityModel>().unwrap(),
            EdgeProbabilityModel::UniformSeeded {
                seed: 7,
                low: 0.05,
                high: 0.95
            }
        );
        assert_eq!(
            "exp".parse::<EdgeProbabilityModel>().unwrap(),
            EdgeProbabilityModel::ExponentialWeight { scale: 5.0 }
        );
        for bad in [
            "",
            "nope",
            "const",
            "const:x",
            "uniform:a",
            "uniform:1:2:3",
            "exp:-1",
        ] {
            assert!(bad.parse::<EdgeProbabilityModel>().is_err(), "{bad}");
        }
    }
}
