//! Dependency-free XXH64 implementation used to checksum `.ugsnap`
//! snapshots.
//!
//! This is the reference xxHash64 algorithm (Yann Collet, BSD-2), small
//! enough to carry inline rather than pulling in a hashing crate the
//! offline build environment does not have.  One-shot hashing is all the
//! snapshot reader/writer needs: payloads are materialized in memory
//! before hashing either way.

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

/// One-shot XXH64 of `data` with the given `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut cursor = 0usize;

    let mut hash = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        while cursor + 32 <= len {
            v1 = round(v1, read_u64(data, cursor));
            v2 = round(v2, read_u64(data, cursor + 8));
            v3 = round(v3, read_u64(data, cursor + 16));
            v4 = round(v4, read_u64(data, cursor + 24));
            cursor += 32;
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME_5)
    };

    hash = hash.wrapping_add(len as u64);

    while cursor + 8 <= len {
        hash = (hash ^ round(0, read_u64(data, cursor)))
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        cursor += 8;
    }
    if cursor + 4 <= len {
        hash = (hash ^ (read_u32(data, cursor) as u64).wrapping_mul(PRIME_1))
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        cursor += 4;
    }
    while cursor < len {
        hash = (hash ^ (data[cursor] as u64).wrapping_mul(PRIME_5))
            .rotate_left(11)
            .wrapping_mul(PRIME_1);
        cursor += 1;
    }

    hash ^= hash >> 33;
    hash = hash.wrapping_mul(PRIME_2);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(PRIME_3);
    hash ^ (hash >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors from the reference implementation / the
    // `xxhash` Python bindings' documentation.
    #[test]
    fn reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        // 39 bytes: exercises the 32-byte stripe loop plus every tail arm.
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seed_changes_the_hash() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
    }

    #[test]
    fn single_bit_flip_changes_the_hash() {
        let mut data = vec![0u8; 100];
        let base = xxh64(&data, 0);
        for i in [0usize, 31, 32, 63, 95, 99] {
            data[i] ^= 1;
            assert_ne!(xxh64(&data, 0), base, "flip at byte {i} undetected");
            data[i] ^= 1;
        }
    }

    #[test]
    fn every_length_up_to_a_few_stripes_is_stable() {
        // Smoke the length-dependent code paths: no panics, and distinct
        // prefixes hash differently.
        let data: Vec<u8> = (0..96u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(xxh64(&data[..len], 7)), "collision at {len}");
        }
    }
}
