//! SNAP-style whitespace edge lists.
//!
//! The format used by most uncertain-graph datasets (including those
//! referenced by the paper): one edge per line, whitespace separated,
//! `u v p` where `p` is the existence probability.  Lines starting with
//! `#` or `%` (SNAP headers, comments) and blank lines are skipped.  A
//! two-column `u v` line is accepted and treated as a deterministic edge
//! under the default [`EdgeProbabilityModel::Column`].
//!
//! The parser is streaming (line-at-a-time over any [`Read`]) and strict
//! by default: self-loops and repeated edges are rejected with typed
//! [`GraphError`] variants instead of being
//! silently dropped or overridden.  Because many published SNAP datasets
//! are *directed* lists carrying both orientations of every edge,
//! [`DuplicatePolicy::MergeIdentical`] (what the ingestion dispatcher
//! uses) accepts repeats that agree on the value column and only rejects
//! conflicting ones.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::io::prob_model::EdgeProbabilityModel;
use crate::Result;

/// What a repeated `{u, v}` line means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Any repeat is a [`GraphError::DuplicateEdge`] — the strict default
    /// of [`read_edge_list`], for inputs that must list every undirected
    /// edge exactly once.
    #[default]
    Reject,
    /// Repeats with an identical value column (or both without one) are
    /// collapsed into one edge; repeats that *conflict* are still a
    /// [`GraphError::DuplicateEdge`].  This is the right policy for
    /// directed SNAP downloads, which list `u v` and `v u` for every
    /// undirected edge.
    MergeIdentical,
}

/// Reads a probabilistic edge list with an explicit probability model and
/// duplicate policy.
///
/// # Example
///
/// ```
/// use ugraph::io::{DuplicatePolicy, EdgeProbabilityModel};
///
/// // A directed SNAP-style file: both orientations of the same edge.
/// let text = "# directed\n0 1\n1 0\n1 2 0.5\n";
/// let g = ugraph::io::read_edge_list_with_policy(
///     text.as_bytes(),
///     &EdgeProbabilityModel::Column,
///     DuplicatePolicy::MergeIdentical,
/// )
/// .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_probability(0, 1), Some(1.0));
/// ```
pub fn read_edge_list_with_policy<R: Read>(
    reader: R,
    model: &EdgeProbabilityModel,
    policy: DuplicatePolicy,
) -> Result<UncertainGraph> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut assigner = model.assigner();
    // Value column of each edge seen so far (`None` = bare `u v` row),
    // keyed by canonical pair — duplicates are resolved *before* the
    // probability model runs, so seeded models draw exactly once per
    // distinct edge no matter how often it is listed.
    let mut seen: HashMap<(u32, u32), Option<u64>> = HashMap::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_field(parts.next(), line_no, "source vertex")?;
        let v = parse_field(parts.next(), line_no, "target vertex")?;
        let value = match parts.next() {
            Some(tok) => Some(tok.parse::<f64>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid probability '{tok}'"),
            })?),
            None => None,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected at most three columns (u v p)".to_string(),
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let key = (u.min(v), u.max(v));
        let value_bits = value.map(f64::to_bits);
        if let Some(&previous) = seen.get(&key) {
            match policy {
                DuplicatePolicy::MergeIdentical if previous == value_bits => continue,
                _ => return Err(GraphError::DuplicateEdge { edge: key }),
            }
        }
        seen.insert(key, value_bits);
        let p = assigner.probability(key, value)?;
        builder.add_edge_strict(u, v, p)?;
    }
    Ok(builder.build())
}

/// Reads a probabilistic edge list from any reader, with an explicit
/// probability model and strict duplicate rejection.
///
/// # Example
///
/// ```
/// use ugraph::io::EdgeProbabilityModel;
///
/// let text = "# comment\n0 1 0.5\n\n1 2 0.75\n2 3\n";
/// let g = ugraph::io::read_edge_list_with(text.as_bytes(), &EdgeProbabilityModel::Column)
///     .unwrap();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.edge_probability(2, 3), Some(1.0));
/// ```
pub fn read_edge_list_with<R: Read>(
    reader: R,
    model: &EdgeProbabilityModel,
) -> Result<UncertainGraph> {
    read_edge_list_with_policy(reader, model, DuplicatePolicy::Reject)
}

/// Reads a probabilistic edge list, keeping the parsed probability column
/// ([`EdgeProbabilityModel::Column`]) and rejecting duplicates.
pub fn read_edge_list<R: Read>(reader: R) -> Result<UncertainGraph> {
    read_edge_list_with(reader, &EdgeProbabilityModel::Column)
}

fn parse_field(token: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let tok = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse::<u32>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} '{tok}'"),
    })
}

/// Reads a probabilistic edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph> {
    let file = File::open(path)?;
    read_edge_list(file)
}

/// [`read_edge_list_file`] with an explicit probability model.
pub fn read_edge_list_file_with<P: AsRef<Path>>(
    path: P,
    model: &EdgeProbabilityModel,
) -> Result<UncertainGraph> {
    let file = File::open(path)?;
    read_edge_list_with(file, model)
}

/// Writes a graph as a probabilistic edge list (`u v p` per line).
pub fn write_edge_list<W: Write>(graph: &UncertainGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# probabilistic edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.p)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph as a probabilistic edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn read_basic_edge_list() {
        let text = "0 1 0.5\n1 2 0.25\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_probability(1, 2), Some(0.25));
    }

    #[test]
    fn read_skips_comments_and_blank_lines() {
        let text = "# header\n\n% more\n  \t\n0 1 0.5\n  # indented comment\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn read_two_column_lines_default_to_certain_edges() {
        let text = "0 1\n1 2 0.3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_probability(0, 1), Some(1.0));
        assert_eq!(g.edge_probability(1, 2), Some(0.3));
    }

    #[test]
    fn read_rejects_bad_lines() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b 0.5\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 0.5 9\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 1.5\n".as_bytes()).is_err());
        assert!(read_edge_list("3 3 0.5\n".as_bytes()).is_err());
    }

    #[test]
    fn self_loops_and_duplicates_are_typed_errors() {
        assert!(matches!(
            read_edge_list("4 4 0.5\n".as_bytes()).unwrap_err(),
            GraphError::SelfLoop { vertex: 4 }
        ));
        // A duplicate is rejected even when listed in the other
        // orientation or with a different probability.
        assert!(matches!(
            read_edge_list("0 1 0.5\n1 0 0.9\n".as_bytes()).unwrap_err(),
            GraphError::DuplicateEdge { edge: (0, 1) }
        ));
        assert!(matches!(
            read_edge_list("2 3\n2 3\n".as_bytes()).unwrap_err(),
            GraphError::DuplicateEdge { edge: (2, 3) }
        ));
    }

    #[test]
    fn merge_identical_accepts_directed_snap_listings() {
        // Directed SNAP file: both orientations, consistent values.
        let text = "0 1\n1 0\n1 2 0.5\n2 1 0.5\n0 2 0.25\n";
        let g = read_edge_list_with_policy(
            text.as_bytes(),
            &EdgeProbabilityModel::Column,
            DuplicatePolicy::MergeIdentical,
        )
        .unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_probability(0, 1), Some(1.0));
        assert_eq!(g.edge_probability(1, 2), Some(0.5));

        // Conflicting repeats are still typed errors.
        assert!(matches!(
            read_edge_list_with_policy(
                "0 1 0.5\n1 0 0.9\n".as_bytes(),
                &EdgeProbabilityModel::Column,
                DuplicatePolicy::MergeIdentical,
            )
            .unwrap_err(),
            GraphError::DuplicateEdge { edge: (0, 1) }
        ));
        // A bare repeat of a valued row conflicts too.
        assert!(read_edge_list_with_policy(
            "0 1 0.5\n1 0\n".as_bytes(),
            &EdgeProbabilityModel::Column,
            DuplicatePolicy::MergeIdentical,
        )
        .is_err());
    }

    #[test]
    fn merge_identical_draws_seeded_probabilities_once_per_edge() {
        let model = EdgeProbabilityModel::UniformSeeded {
            seed: 5,
            low: 0.1,
            high: 0.9,
        };
        // The duplicate must not advance the RNG stream: both inputs see
        // the same draws for (0,1) and (2,3).
        let a = read_edge_list_with_policy(
            "0 1\n1 0\n2 3\n".as_bytes(),
            &model,
            DuplicatePolicy::MergeIdentical,
        )
        .unwrap();
        let b =
            read_edge_list_with_policy("0 1\n2 3\n".as_bytes(), &model, DuplicatePolicy::Reject)
                .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_probability_is_typed() {
        assert!(matches!(
            read_edge_list("0 1 0\n".as_bytes()).unwrap_err(),
            GraphError::InvalidProbability { .. }
        ));
        assert!(matches!(
            read_edge_list("0 1 -0.5\n".as_bytes()).unwrap_err(),
            GraphError::InvalidProbability { .. }
        ));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let err = read_edge_list("0 1 0.5\nbroken\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn probability_model_overrides_the_column() {
        let text = "0 1 0.5\n1 2\n";
        let g =
            read_edge_list_with(text.as_bytes(), &EdgeProbabilityModel::Constant(0.25)).unwrap();
        assert_eq!(g.edge_probability(0, 1), Some(0.25));
        assert_eq!(g.edge_probability(1, 2), Some(0.25));
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.125).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        let g = b.build();

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(2, 3, 0.75).unwrap();
        let g = b.build();
        let dir = std::env::temp_dir();
        let path = dir.join("ugraph_io_round_trip_test.txt");
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely/missing.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
