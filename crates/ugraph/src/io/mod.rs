//! Graph ingestion and persistence.
//!
//! Three on-disk formats, one pluggable probability model, one
//! dispatcher:
//!
//! * [`edge_list`] — SNAP-style whitespace edge lists (`u v [p]`, `#`/`%`
//!   comments), the format used by most published uncertain-graph
//!   datasets.
//! * [`konect`] — Konect-style TSV (`u v [weight [timestamp]]`, `%`
//!   comments) with duplicate lines aggregated by summing weights.
//! * [`snapshot`] — the versioned little-endian `.ugsnap` binary format
//!   with an XXH64 trailer checksum, giving near-instant reload of large
//!   graphs.
//!
//! [`EdgeProbabilityModel`] decides how ingested edges obtain existence
//! probabilities (keep the parsed column, seeded uniform, exponential
//! weight→probability), mirroring how the paper's evaluation turns source
//! graphs probabilistic.  [`read_graph_file`] dispatches on
//! [`InputFormat`] so callers (the datasets registry, the experiments
//! CLI) need a single entry point.

pub mod edge_list;
pub mod hash;
pub mod konect;
pub mod prob_model;
pub mod snapshot;

pub use edge_list::{
    read_edge_list, read_edge_list_file, read_edge_list_file_with, read_edge_list_with,
    read_edge_list_with_policy, write_edge_list, write_edge_list_file, DuplicatePolicy,
};
pub use hash::xxh64;
pub use konect::{read_konect, read_konect_file};
pub use prob_model::EdgeProbabilityModel;
pub use snapshot::{
    open_snapshot, open_snapshot_tagged, read_snapshot, read_snapshot_bytes,
    read_snapshot_bytes_tagged, read_snapshot_file, read_snapshot_file_tagged, write_snapshot,
    write_snapshot_file, write_snapshot_file_tagged, write_snapshot_tagged, SnapshotSource,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION, UNTAGGED,
};

use std::fmt;
use std::path::Path;
use std::str::FromStr;

use crate::graph::UncertainGraph;
use crate::Result;

/// The on-disk formats the ingestion layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputFormat {
    /// SNAP-style whitespace edge list (`u v [p]`).
    Snap,
    /// Konect-style TSV (`u v [weight [timestamp]]`).
    Konect,
    /// `.ugsnap` binary snapshot.
    Snapshot,
}

impl InputFormat {
    /// All formats, for help texts.
    pub fn all() -> [InputFormat; 3] {
        [
            InputFormat::Snap,
            InputFormat::Konect,
            InputFormat::Snapshot,
        ]
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            InputFormat::Snap => "snap",
            InputFormat::Konect => "konect",
            InputFormat::Snapshot => "ugsnap",
        }
    }
}

impl fmt::Display for InputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for InputFormat {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "snap" | "edgelist" | "txt" => Ok(InputFormat::Snap),
            "konect" | "tsv" => Ok(InputFormat::Konect),
            "ugsnap" | "snapshot" | "bin" => Ok(InputFormat::Snapshot),
            other => Err(format!(
                "unknown input format '{other}' (expected snap | konect | ugsnap)"
            )),
        }
    }
}

/// Reads a graph from `path` in the given format.
///
/// The probability model applies to the text formats; a `.ugsnap`
/// snapshot already stores final probabilities, so `model` is ignored
/// there.  SNAP inputs are read with
/// [`DuplicatePolicy::MergeIdentical`]: published SNAP datasets are
/// usually directed lists carrying both orientations of every edge, so
/// consistent repeats collapse and only *conflicting* repeats are errors
/// (use [`read_edge_list`] directly for strict single-listing inputs).
pub fn read_graph_file<P: AsRef<Path>>(
    path: P,
    format: InputFormat,
    model: &EdgeProbabilityModel,
) -> Result<UncertainGraph> {
    match format {
        InputFormat::Snap => {
            let file = std::fs::File::open(path)?;
            read_edge_list_with_policy(file, model, DuplicatePolicy::MergeIdentical)
        }
        InputFormat::Konect => read_konect_file(path, model),
        // Snapshots open through the fastest path the platform offers
        // (zero-copy mmap where available, owned decode otherwise).
        InputFormat::Snapshot => open_snapshot(path).map(SnapshotSource::into_graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn format_names_parse_round_trip() {
        for format in InputFormat::all() {
            assert_eq!(format.name().parse::<InputFormat>().unwrap(), format);
        }
        assert_eq!(
            "snapshot".parse::<InputFormat>().unwrap(),
            InputFormat::Snapshot
        );
        assert!("xml".parse::<InputFormat>().is_err());
    }

    #[test]
    fn dispatcher_reads_every_format() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.75).unwrap();
        let g = b.build();
        let dir = std::env::temp_dir();

        let txt = dir.join("ugraph_dispatch.txt");
        write_edge_list_file(&g, &txt).unwrap();
        let from_snap =
            read_graph_file(&txt, InputFormat::Snap, &EdgeProbabilityModel::Column).unwrap();
        assert_eq!(from_snap, g);

        let tsv = dir.join("ugraph_dispatch.tsv");
        std::fs::write(&tsv, "% header\n0\t1\t0.5\n1\t2\t0.75\n").unwrap();
        let from_konect =
            read_graph_file(&tsv, InputFormat::Konect, &EdgeProbabilityModel::Column).unwrap();
        assert_eq!(from_konect, g);

        let snap = dir.join("ugraph_dispatch.ugsnap");
        write_snapshot_file(&g, &snap).unwrap();
        let from_bin =
            read_graph_file(&snap, InputFormat::Snapshot, &EdgeProbabilityModel::Column).unwrap();
        assert_eq!(from_bin, g);

        for p in [txt, tsv, snap] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn dispatcher_tolerates_directed_snap_files() {
        let path = std::env::temp_dir().join("ugraph_dispatch_directed.txt");
        std::fs::write(&path, "# directed\n0 1\n1 0\n1 2\n2 1\n").unwrap();
        let g = read_graph_file(&path, InputFormat::Snap, &EdgeProbabilityModel::Column).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_edges(), 2);
    }
}
