//! Versioned little-endian binary snapshots (`.ugsnap`).
//!
//! Parsing a large text edge list costs integer/float decoding plus a
//! full graph rebuild; a snapshot persists the [`UncertainGraph`] exactly
//! as it sits in memory (CSR arrays + canonical edge table), so reloading
//! is a handful of bulk reads — in practice well over an order of
//! magnitude faster than text parsing.  The layout, all little-endian:
//!
//! ```text
//! offset  size          field
//! 0       8             magic "UGSNAP\r\n" (CRLF guards against
//!                       text-mode transfer mangling, as in PNG)
//! 8       4             format version (u32, currently 2)
//! 12      8             source tag (u64, 0 = untagged)
//! 20      8             num_vertices n (u64)
//! 28      8             num_edges m (u64)
//! 36      8·(n+1)       CSR offsets (u64 each)
//! …       4·2m          CSR neighbour ids (u32 each)
//! …       4·2m          CSR neighbour edge ids (u32 each)
//! …       16·m          edge table: u (u32), v (u32), p (f64 bits)
//! end−8   8             XXH64 checksum (seed 0) of every preceding byte
//! ```
//!
//! The **source tag** (new in version 2) binds a snapshot to whatever it
//! was derived from.  Cache layers store a fingerprint of the source
//! there ([`write_snapshot_tagged`]) and refuse snapshots whose tag does
//! not match on reload ([`read_snapshot_bytes_tagged`]): a cache file
//! overwritten with a snapshot of a *different* graph — say, an
//! in-memory graph mutated by edge updates and persisted at the cached
//! path — no longer masquerades as the parse of the original source.
//! Plain [`write_snapshot`] writes tag 0 and plain [`read_snapshot`]
//! ignores the tag, so untagged round-trips are unaffected.
//!
//! Per-neighbour probabilities are *not* stored: they are recovered from
//! the edge table through the neighbour edge ids during validation, which
//! keeps the file a third smaller and the reload correspondingly faster.
//!
//! The reader verifies the magic, version, exact length, checksum, and the
//! structural invariants of the payload (monotone offsets, sorted
//! adjacency, canonical edge table, probabilities in `(0, 1]`), returning
//! a typed [`SnapshotError`] for every failure mode — corrupt input can
//! never panic or produce an invariant-violating graph.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::error::{GraphError, SnapshotError};
use crate::graph::{Edge, EdgeId, UncertainGraph, VertexId};
use crate::io::hash::xxh64;
use crate::Result;

/// The eight magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"UGSNAP\r\n";
/// The snapshot format version this build reads and writes.  Version 2
/// added the 8-byte source tag; version-1 files are rejected with
/// [`SnapshotError::UnsupportedVersion`] (cache layers fall back to
/// re-parsing the source).
pub const SNAPSHOT_VERSION: u32 = 2;
/// The source tag of snapshots not bound to any source.
pub const UNTAGGED: u64 = 0;
/// Seed of the XXH64 trailer checksum.
const CHECKSUM_SEED: u64 = 0;
/// Bytes of magic + version + source tag + vertex/edge counts.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

fn snapshot_len(n: usize, m: usize) -> usize {
    HEADER_LEN + 8 * (n + 1) + (4 + 4) * 2 * m + 16 * m + 8
}

/// Serializes `graph` as an untagged `.ugsnap` snapshot into `writer`
/// (source tag [`UNTAGGED`]).
pub fn write_snapshot<W: Write>(graph: &UncertainGraph, writer: W) -> Result<()> {
    write_snapshot_tagged(graph, writer, UNTAGGED)
}

/// Serializes `graph` with an explicit source tag, binding the snapshot
/// to the source the tag fingerprints.
pub fn write_snapshot_tagged<W: Write>(
    graph: &UncertainGraph,
    writer: W,
    source_tag: u64,
) -> Result<()> {
    let (offsets, neighbors, _probs, edge_ids) = graph.csr_parts();
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut payload = Vec::with_capacity(snapshot_len(n, m) - 8);
    payload.extend_from_slice(&SNAPSHOT_MAGIC);
    payload.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    payload.extend_from_slice(&source_tag.to_le_bytes());
    payload.extend_from_slice(&(n as u64).to_le_bytes());
    payload.extend_from_slice(&(m as u64).to_le_bytes());
    for &o in offsets {
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &w in neighbors {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for &e in edge_ids {
        payload.extend_from_slice(&e.to_le_bytes());
    }
    for e in graph.edges() {
        payload.extend_from_slice(&e.u.to_le_bytes());
        payload.extend_from_slice(&e.v.to_le_bytes());
        payload.extend_from_slice(&e.p.to_bits().to_le_bytes());
    }
    let checksum = xxh64(&payload, CHECKSUM_SEED);
    let mut w = writer;
    w.write_all(&payload)?;
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Writes an untagged `.ugsnap` snapshot to a file path.
pub fn write_snapshot_file<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_snapshot(graph, file)
}

/// Writes a source-tagged `.ugsnap` snapshot to a file path.
pub fn write_snapshot_file_tagged<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
    source_tag: u64,
) -> Result<()> {
    let file = File::create(path)?;
    write_snapshot_tagged(graph, file, source_tag)
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Snapshot(SnapshotError::Corrupt(message.into()))
}

/// Deserializes a `.ugsnap` snapshot from a byte slice, ignoring the
/// source tag.
pub fn read_snapshot_bytes(data: &[u8]) -> Result<UncertainGraph> {
    read_snapshot_bytes_tagged(data).map(|(graph, _)| graph)
}

/// Deserializes a `.ugsnap` snapshot from a byte slice, returning the
/// graph together with its source tag so cache layers can verify the
/// snapshot really derives from the source they are about to stand in
/// for.
pub fn read_snapshot_bytes_tagged(data: &[u8]) -> Result<(UncertainGraph, u64)> {
    if data.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN + 8,
            actual: data.len(),
        }
        .into());
    }
    if data[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic.into());
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version).into());
    }
    let source_tag = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    let n = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
    let m = u64::from_le_bytes(data[28..36].try_into().expect("8 bytes"));
    // Bound the counts by what the input could possibly hold before
    // allocating anything, so a corrupt header cannot trigger an OOM.
    let max_conceivable = (data.len() as u64).saturating_add(1);
    if n > max_conceivable || m > max_conceivable || n > u32::MAX as u64 || m > u32::MAX as u64 {
        return Err(corrupt(format!("implausible counts n={n} m={m}")));
    }
    let (n, m) = (n as usize, m as usize);
    let expected = snapshot_len(n, m);
    if data.len() < expected {
        return Err(SnapshotError::Truncated {
            expected,
            actual: data.len(),
        }
        .into());
    }
    if data.len() > expected {
        return Err(corrupt(format!(
            "{} trailing bytes after the checksum",
            data.len() - expected
        )));
    }
    let stored = u64::from_le_bytes(data[expected - 8..].try_into().expect("8 bytes"));
    let computed = xxh64(&data[..expected - 8], CHECKSUM_SEED);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed }.into());
    }

    // Bulk little-endian decode, section by section.
    let mut at = HEADER_LEN;
    let mut section = |len: usize| {
        let out = &data[at..at + len];
        at += len;
        out
    };
    let offsets: Vec<usize> = section(8 * (n + 1))
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")) as usize)
        .collect();
    let neighbors: Vec<VertexId> = section(4 * 2 * m)
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .collect();
    let neighbor_edges: Vec<EdgeId> = section(4 * 2 * m)
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .collect();
    let edges: Vec<Edge> = section(16 * m)
        .chunks_exact(16)
        .map(|b| Edge {
            u: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            v: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            p: f64::from_bits(u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"))),
        })
        .collect();

    let neighbor_probs =
        validate_and_recover_probs(n, m, &offsets, &neighbors, &neighbor_edges, &edges)?;
    Ok((
        UncertainGraph::from_csr(offsets, neighbors, neighbor_probs, neighbor_edges, edges),
        source_tag,
    ))
}

/// Structural validation of a decoded payload — everything
/// [`UncertainGraph`] relies on (binary search, merge intersection, dense
/// edge ids) must hold even for adversarial inputs with a valid checksum —
/// fused with the reconstruction of the per-neighbour probability array
/// from the edge table (the snapshot does not store it).
fn validate_and_recover_probs(
    n: usize,
    m: usize,
    offsets: &[usize],
    neighbors: &[VertexId],
    edge_ids: &[EdgeId],
    edges: &[Edge],
) -> Result<Vec<f64>> {
    if offsets.first() != Some(&0) || offsets[n] != 2 * m {
        return Err(corrupt("CSR offsets do not span the adjacency arrays"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("CSR offsets are not monotone"));
    }
    for (i, e) in edges.iter().enumerate() {
        if e.u >= e.v {
            return Err(corrupt(format!("edge {i} is not canonical (u < v)")));
        }
        if e.v as usize >= n {
            return Err(corrupt(format!("edge {i} endpoint {} out of bounds", e.v)));
        }
        if !(e.p > 0.0 && e.p <= 1.0) {
            return Err(corrupt(format!(
                "edge {i} probability {} out of range",
                e.p
            )));
        }
        if i > 0 && (edges[i - 1].u, edges[i - 1].v) >= (e.u, e.v) {
            return Err(corrupt("edge table is not sorted lexicographically"));
        }
    }
    let mut probs = vec![0.0f64; 2 * m];
    for v in 0..n {
        let run = offsets[v]..offsets[v + 1];
        let mut prev: Option<VertexId> = None;
        for i in run {
            let w = neighbors[i];
            if w as usize >= n {
                return Err(corrupt(format!("neighbour {w} out of bounds")));
            }
            if prev.is_some_and(|p| p >= w) {
                return Err(corrupt(format!("adjacency of vertex {v} is not sorted")));
            }
            prev = Some(w);
            let eid = edge_ids[i] as usize;
            if eid >= m {
                return Err(corrupt(format!("edge id {eid} out of bounds")));
            }
            let e = &edges[eid];
            let (a, b) = (v as VertexId, w);
            if (e.u, e.v) != (a.min(b), a.max(b)) {
                return Err(corrupt(format!(
                    "adjacency entry ({v}, {w}) disagrees with edge {eid}"
                )));
            }
            probs[i] = e.p;
        }
    }
    Ok(probs)
}

/// Deserializes a `.ugsnap` snapshot from any reader.
pub fn read_snapshot<R: Read>(reader: R) -> Result<UncertainGraph> {
    let mut data = Vec::new();
    let mut reader = reader;
    reader.read_to_end(&mut data)?;
    read_snapshot_bytes(&data)
}

/// Reads a `.ugsnap` snapshot from a file path.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph> {
    let file = File::open(path)?;
    read_snapshot(file)
}

/// Reads a `.ugsnap` snapshot and its source tag from a file path.
pub fn read_snapshot_file_tagged<P: AsRef<Path>>(path: P) -> Result<(UncertainGraph, u64)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    read_snapshot_bytes_tagged(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{assign_probabilities, gnm_edges, ProbabilityModel};
    use crate::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_graph() -> UncertainGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let edges = gnm_edges(40, 150, &mut rng);
        assign_probabilities(
            &edges,
            40,
            &ProbabilityModel::Uniform {
                low: 0.05,
                high: 1.0,
            },
            &mut rng,
        )
    }

    fn encode(graph: &UncertainGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(graph, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let g = sample_graph();
        let buf = encode(&g);
        let g2 = read_snapshot_bytes(&buf).unwrap();
        assert_eq!(g, g2);
        // Probabilities must survive bit-exactly, not just approximately.
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
    }

    #[test]
    fn round_trip_preserves_isolated_vertices_and_empty_graphs() {
        let mut b = GraphBuilder::with_vertices(10);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        let g2 = read_snapshot_bytes(&encode(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 10);
        assert_eq!(g, g2);

        let empty = UncertainGraph::empty(3);
        assert_eq!(read_snapshot_bytes(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn file_round_trip() {
        let g = sample_graph();
        let path = std::env::temp_dir().join("ugraph_snapshot_round_trip.ugsnap");
        write_snapshot_file(&g, &path).unwrap();
        let g2 = read_snapshot_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let g = sample_graph();
        let buf = encode(&g);
        for len in [
            0,
            7,
            HEADER_LEN - 1,
            HEADER_LEN + 3,
            buf.len() / 2,
            buf.len() - 1,
        ] {
            let err = read_snapshot_bytes(&buf[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    GraphError::Snapshot(
                        SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                    )
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let g = sample_graph();
        let mut buf = encode(&g);
        buf[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot_bytes(&buf).unwrap_err(),
            GraphError::Snapshot(SnapshotError::BadMagic)
        ));
        let mut buf = encode(&g);
        buf[8] = 99;
        assert!(matches!(
            read_snapshot_bytes(&buf).unwrap_err(),
            GraphError::Snapshot(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        // Flip each byte in turn: the checksum (or, for trailer bytes,
        // the checksum comparison itself) must catch all of them.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        let g = b.build();
        let buf = encode(&g);
        for i in 12..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                read_snapshot_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn valid_checksum_with_corrupt_payload_is_rejected() {
        // Re-sign tampered payloads so only structural validation stands
        // between the reader and an invariant-violating graph.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        let g = b.build();
        let buf = encode(&g);
        let resign = |mut payload: Vec<u8>| {
            let len = payload.len();
            let sum = xxh64(&payload[..len - 8], CHECKSUM_SEED);
            payload[len - 8..].copy_from_slice(&sum.to_le_bytes());
            payload
        };

        // Out-of-range probability in the edge table (last edge's p).
        let mut bad = buf.clone();
        let p_at = bad.len() - 8 - 8;
        bad[p_at..p_at + 8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&resign(bad)).unwrap_err(),
            GraphError::Snapshot(SnapshotError::Corrupt(_))
        ));

        // Non-monotone offsets.
        let mut bad = buf.clone();
        bad[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot_bytes(&resign(bad)).is_err());

        // Implausible vertex count must not allocate.
        let mut bad = buf;
        bad[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot_bytes(&resign(bad)).is_err());
    }

    #[test]
    fn source_tags_round_trip_and_plain_writes_are_untagged() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_snapshot_tagged(&g, &mut buf, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        let (g2, tag) = read_snapshot_bytes_tagged(&buf).unwrap();
        assert_eq!(g, g2);
        assert_eq!(tag, 0xDEAD_BEEF_CAFE_F00D);
        // The untagged reader still accepts tagged snapshots.
        assert_eq!(read_snapshot_bytes(&buf).unwrap(), g);

        let (_, plain_tag) = read_snapshot_bytes_tagged(&encode(&g)).unwrap();
        assert_eq!(plain_tag, UNTAGGED);

        let path = std::env::temp_dir().join("ugraph_snapshot_tagged.ugsnap");
        write_snapshot_file_tagged(&g, &path, 7).unwrap();
        let (g3, tag3) = read_snapshot_file_tagged(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g3, g);
        assert_eq!(tag3, 7);
    }

    #[test]
    fn version_one_snapshots_are_rejected_not_misread() {
        // Hand-build a version-1 snapshot (no source tag field): the
        // reader must fail with UnsupportedVersion, never reinterpret
        // the old n/m fields through the v2 layout.
        let mut payload = Vec::new();
        payload.extend_from_slice(&SNAPSHOT_MAGIC);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes()); // n
        payload.extend_from_slice(&0u64.to_le_bytes()); // m
        for _ in 0..3 {
            payload.extend_from_slice(&0u64.to_le_bytes()); // offsets
        }
        let sum = xxh64(&payload, CHECKSUM_SEED);
        payload.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&payload).unwrap_err(),
            GraphError::Snapshot(SnapshotError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn graph_survives_use_after_reload() {
        // The reloaded graph must behave, not just compare equal.
        let g = sample_graph();
        let g2 = read_snapshot_bytes(&encode(&g)).unwrap();
        assert_eq!(g.count_triangles(), g2.count_triangles());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }
}
