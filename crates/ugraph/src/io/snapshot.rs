//! Versioned little-endian binary snapshots (`.ugsnap`).
//!
//! Parsing a large text edge list costs integer/float decoding plus a
//! full graph rebuild; a snapshot persists the [`UncertainGraph`] exactly
//! as it sits in memory (CSR arrays + canonical edge table), so reloading
//! is a handful of bulk reads — and, since format version 3, not even
//! that: every section is 8-byte aligned little-endian, so
//! [`open_snapshot`] can `mmap` the file and borrow the arrays **in
//! place** (zero-copy).  The layout, all little-endian:
//!
//! ```text
//! offset  size          field
//! 0       8             magic "UGSNAP\r\n" (CRLF guards against
//!                       text-mode transfer mangling, as in PNG)
//! 8       4             format version (u32, currently 3)
//! 12      4             reserved, must be zero
//! 16      8             source tag (u64, 0 = untagged)
//! 24      8             num_vertices n (u64)
//! 32      8             num_edges m (u64)
//! 40      8·(n+1)       CSR offsets (u64 each)
//! …       4·2m          CSR neighbour ids (u32 each)
//! …       4·2m          CSR neighbour edge ids (u32 each)
//! …       8·2m          CSR neighbour probabilities (f64 bits each)
//! …       16·m          edge table: u (u32), v (u32), p (f64 bits)
//! end−8   8             XXH64 checksum (seed 0) of every preceding byte
//! ```
//!
//! Every section starts at a multiple of 8 from the file start (the
//! header is 40 bytes and each section's byte length is a multiple of
//! 8), so a page-aligned mapping makes every section naturally aligned
//! for its element type.  See `docs/SNAPSHOT_FORMAT.md` for the
//! byte-level specification and the mmap safety argument.
//!
//! [`open_snapshot`] returns a [`SnapshotSource`] that says which path
//! was taken: `Mapped` when the file could be memory-mapped and borrowed
//! in place (checksum and structural validation still run once, over
//! the mapping), `Owned` when the platform lacks mmap or a section would
//! be misaligned — the reader then falls back to the ordinary decode.
//! Both paths produce bit-identical graphs.
//!
//! The **source tag** (since version 2) binds a snapshot to whatever it
//! was derived from.  Cache layers store a fingerprint of the source
//! there ([`write_snapshot_tagged`]) and refuse snapshots whose tag does
//! not match on reload ([`read_snapshot_bytes_tagged`]): a cache file
//! overwritten with a snapshot of a *different* graph — say, an
//! in-memory graph mutated by edge updates and persisted at the cached
//! path — no longer masquerades as the parse of the original source.
//! Plain [`write_snapshot`] writes tag 0 and plain [`read_snapshot`]
//! ignores the tag, so untagged round-trips are unaffected.
//!
//! Version 3 stores the per-neighbour probability array (versions 1–2
//! recovered it from the edge table): the mapped reader cannot
//! materialize anything, so the file carries all five arrays.  The
//! stored probabilities are still cross-checked bit-for-bit against the
//! edge table during validation, so a tampered probs section cannot
//! diverge from the source of truth.  Version 1 and 2 files are
//! rejected with [`SnapshotError::UnsupportedVersion`]; cache layers
//! fall back to re-parsing the source and rewrite a v3 cache.
//!
//! The reader verifies the magic, version, exact length, checksum, and
//! the structural invariants of the payload (monotone offsets, sorted
//! adjacency, canonical edge table, probabilities in `(0, 1]`),
//! returning a typed [`SnapshotError`] for every failure mode — corrupt
//! input can never panic, produce an invariant-violating graph, or
//! reach the zero-copy fast path.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::error::{GraphError, SnapshotError};
use crate::graph::{Edge, EdgeId, UncertainGraph, VertexId};
use crate::io::hash::xxh64;
use crate::mem::{mapped_section, Mapping};
use crate::Result;

/// The eight magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"UGSNAP\r\n";
/// The snapshot format version this build reads and writes.  Version 3
/// made every section 8-byte aligned (zero-copy mmap) and added the
/// stored probability section; version 2 added the 8-byte source tag.
/// Files of earlier versions are rejected with
/// [`SnapshotError::UnsupportedVersion`] (cache layers fall back to
/// re-parsing the source).
pub const SNAPSHOT_VERSION: u32 = 3;
/// The source tag of snapshots not bound to any source.
pub const UNTAGGED: u64 = 0;
/// Seed of the XXH64 trailer checksum.
const CHECKSUM_SEED: u64 = 0;
/// Bytes of magic + version + reserved + source tag + vertex/edge
/// counts.  A multiple of 8 so every section is naturally aligned.
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// Byte offsets of the five data sections and the total file length.
struct Layout {
    offsets: usize,
    neighbors: usize,
    neighbor_edges: usize,
    neighbor_probs: usize,
    edges: usize,
    total: usize,
}

fn layout(n: usize, m: usize) -> Layout {
    let offsets = HEADER_LEN;
    let neighbors = offsets + 8 * (n + 1);
    let neighbor_edges = neighbors + 4 * 2 * m;
    let neighbor_probs = neighbor_edges + 4 * 2 * m;
    let edges = neighbor_probs + 8 * 2 * m;
    let total = edges + 16 * m + 8;
    Layout {
        offsets,
        neighbors,
        neighbor_edges,
        neighbor_probs,
        edges,
        total,
    }
}

/// How [`open_snapshot`] materialized the graph.
///
/// Both variants hold a fully validated [`UncertainGraph`]; the
/// distinction is purely where the arrays live.  `Mapped` graphs borrow
/// the page cache through a read-only file mapping (kept alive by the
/// graph itself — the file handle may be dropped), `Owned` graphs hold
/// ordinary heap buffers.
#[derive(Debug)]
pub enum SnapshotSource {
    /// The arrays were decoded into owned heap buffers (no mmap on this
    /// platform, or a section failed the alignment check).
    Owned(UncertainGraph),
    /// The arrays borrow the memory-mapped file in place (zero-copy).
    Mapped(UncertainGraph),
}

impl SnapshotSource {
    /// The graph, however it is backed.
    pub fn graph(&self) -> &UncertainGraph {
        match self {
            SnapshotSource::Owned(g) | SnapshotSource::Mapped(g) => g,
        }
    }

    /// Consumes the source, returning the graph.
    pub fn into_graph(self) -> UncertainGraph {
        match self {
            SnapshotSource::Owned(g) | SnapshotSource::Mapped(g) => g,
        }
    }

    /// `true` for the zero-copy mapped variant.
    pub fn is_mapped(&self) -> bool {
        matches!(self, SnapshotSource::Mapped(_))
    }

    /// `"mapped"` or `"owned"`, for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotSource::Owned(_) => "owned",
            SnapshotSource::Mapped(_) => "mapped",
        }
    }
}

/// Serializes `graph` as an untagged `.ugsnap` snapshot into `writer`
/// (source tag [`UNTAGGED`]).
pub fn write_snapshot<W: Write>(graph: &UncertainGraph, writer: W) -> Result<()> {
    write_snapshot_tagged(graph, writer, UNTAGGED)
}

/// Serializes `graph` with an explicit source tag, binding the snapshot
/// to the source the tag fingerprints.
pub fn write_snapshot_tagged<W: Write>(
    graph: &UncertainGraph,
    writer: W,
    source_tag: u64,
) -> Result<()> {
    let (offsets, neighbors, probs, edge_ids) = graph.csr_parts();
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut payload = Vec::with_capacity(layout(n, m).total - 8);
    payload.extend_from_slice(&SNAPSHOT_MAGIC);
    payload.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes()); // reserved
    payload.extend_from_slice(&source_tag.to_le_bytes());
    payload.extend_from_slice(&(n as u64).to_le_bytes());
    payload.extend_from_slice(&(m as u64).to_le_bytes());
    for &o in offsets {
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &w in neighbors {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for &e in edge_ids {
        payload.extend_from_slice(&e.to_le_bytes());
    }
    for &p in probs {
        payload.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    for e in graph.edges() {
        payload.extend_from_slice(&e.u.to_le_bytes());
        payload.extend_from_slice(&e.v.to_le_bytes());
        payload.extend_from_slice(&e.p.to_bits().to_le_bytes());
    }
    let checksum = xxh64(&payload, CHECKSUM_SEED);
    let mut w = writer;
    w.write_all(&payload)?;
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Writes an untagged `.ugsnap` snapshot to a file path.
pub fn write_snapshot_file<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_snapshot(graph, file)
}

/// Writes a source-tagged `.ugsnap` snapshot to a file path.
pub fn write_snapshot_file_tagged<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
    source_tag: u64,
) -> Result<()> {
    let file = File::create(path)?;
    write_snapshot_tagged(graph, file, source_tag)
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Snapshot(SnapshotError::Corrupt(message.into()))
}

/// Checks everything about `data` that does not require looking inside
/// the sections: magic, version, reserved field, count plausibility,
/// exact length and the trailer checksum.  Returns `(source_tag, n, m)`.
fn check_envelope(data: &[u8]) -> Result<(u64, usize, usize)> {
    if data.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN + 8,
            actual: data.len(),
        }
        .into());
    }
    if data[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic.into());
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version).into());
    }
    if data[12..16] != [0, 0, 0, 0] {
        return Err(corrupt("reserved header bytes are nonzero"));
    }
    let source_tag = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
    let n = u64::from_le_bytes(data[24..32].try_into().expect("8 bytes"));
    let m = u64::from_le_bytes(data[32..40].try_into().expect("8 bytes"));
    // Bound the counts by what the input could possibly hold before
    // allocating anything, so a corrupt header cannot trigger an OOM.
    let max_conceivable = (data.len() as u64).saturating_add(1);
    if n > max_conceivable || m > max_conceivable || n > u32::MAX as u64 || m > u32::MAX as u64 {
        return Err(corrupt(format!("implausible counts n={n} m={m}")));
    }
    let (n, m) = (n as usize, m as usize);
    let expected = layout(n, m).total;
    if data.len() < expected {
        return Err(SnapshotError::Truncated {
            expected,
            actual: data.len(),
        }
        .into());
    }
    if data.len() > expected {
        return Err(corrupt(format!(
            "{} trailing bytes after the checksum",
            data.len() - expected
        )));
    }
    let stored = u64::from_le_bytes(data[expected - 8..].try_into().expect("8 bytes"));
    let computed = xxh64(&data[..expected - 8], CHECKSUM_SEED);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed }.into());
    }
    Ok((source_tag, n, m))
}

/// Deserializes a `.ugsnap` snapshot from a byte slice, ignoring the
/// source tag.
pub fn read_snapshot_bytes(data: &[u8]) -> Result<UncertainGraph> {
    read_snapshot_bytes_tagged(data).map(|(graph, _)| graph)
}

/// Deserializes a `.ugsnap` snapshot from a byte slice, returning the
/// graph together with its source tag so cache layers can verify the
/// snapshot really derives from the source they are about to stand in
/// for.
pub fn read_snapshot_bytes_tagged(data: &[u8]) -> Result<(UncertainGraph, u64)> {
    let (source_tag, n, m) = check_envelope(data)?;
    let graph = decode_owned(data, n, m)?;
    Ok((graph, source_tag))
}

/// Bulk little-endian decode into owned buffers, section by section,
/// followed by full structural validation.  `check_envelope` must have
/// passed on `data`.
fn decode_owned(data: &[u8], n: usize, m: usize) -> Result<UncertainGraph> {
    let lay = layout(n, m);
    let offsets: Vec<usize> = data[lay.offsets..lay.neighbors]
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")) as usize)
        .collect();
    let neighbors: Vec<VertexId> = data[lay.neighbors..lay.neighbor_edges]
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .collect();
    let neighbor_edges: Vec<EdgeId> = data[lay.neighbor_edges..lay.neighbor_probs]
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .collect();
    let neighbor_probs: Vec<f64> = data[lay.neighbor_probs..lay.edges]
        .chunks_exact(8)
        .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().expect("8 bytes"))))
        .collect();
    let edges: Vec<Edge> = data[lay.edges..lay.total - 8]
        .chunks_exact(16)
        .map(|b| Edge {
            u: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            v: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            p: f64::from_bits(u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"))),
        })
        .collect();
    validate(
        n,
        m,
        &offsets,
        &neighbors,
        &neighbor_edges,
        &neighbor_probs,
        &edges,
    )?;
    Ok(UncertainGraph::from_csr(
        offsets,
        neighbors,
        neighbor_probs,
        neighbor_edges,
        edges,
    ))
}

/// Structural validation of a decoded (or mapped) payload — everything
/// [`UncertainGraph`] relies on (binary search, merge intersection,
/// dense edge ids) must hold even for adversarial inputs with a valid
/// checksum.  The stored per-neighbour probabilities must agree
/// **bit-for-bit** with the canonical edge table, so the two copies the
/// v3 format carries can never diverge.
fn validate(
    n: usize,
    m: usize,
    offsets: &[usize],
    neighbors: &[VertexId],
    edge_ids: &[EdgeId],
    probs: &[f64],
    edges: &[Edge],
) -> Result<()> {
    if offsets.first() != Some(&0) || offsets[n] != 2 * m {
        return Err(corrupt("CSR offsets do not span the adjacency arrays"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("CSR offsets are not monotone"));
    }
    for (i, e) in edges.iter().enumerate() {
        if e.u >= e.v {
            return Err(corrupt(format!("edge {i} is not canonical (u < v)")));
        }
        if e.v as usize >= n {
            return Err(corrupt(format!("edge {i} endpoint {} out of bounds", e.v)));
        }
        if !(e.p > 0.0 && e.p <= 1.0) {
            return Err(corrupt(format!(
                "edge {i} probability {} out of range",
                e.p
            )));
        }
        if i > 0 && (edges[i - 1].u, edges[i - 1].v) >= (e.u, e.v) {
            return Err(corrupt("edge table is not sorted lexicographically"));
        }
    }
    for v in 0..n {
        let run = offsets[v]..offsets[v + 1];
        let mut prev: Option<VertexId> = None;
        for i in run {
            let w = neighbors[i];
            if w as usize >= n {
                return Err(corrupt(format!("neighbour {w} out of bounds")));
            }
            if prev.is_some_and(|p| p >= w) {
                return Err(corrupt(format!("adjacency of vertex {v} is not sorted")));
            }
            prev = Some(w);
            let eid = edge_ids[i] as usize;
            if eid >= m {
                return Err(corrupt(format!("edge id {eid} out of bounds")));
            }
            let e = &edges[eid];
            let (a, b) = (v as VertexId, w);
            if (e.u, e.v) != (a.min(b), a.max(b)) {
                return Err(corrupt(format!(
                    "adjacency entry ({v}, {w}) disagrees with edge {eid}"
                )));
            }
            if probs[i].to_bits() != e.p.to_bits() {
                return Err(corrupt(format!(
                    "stored probability at adjacency slot {i} disagrees with edge {eid}"
                )));
            }
        }
    }
    Ok(())
}

/// Opens a snapshot file through the fastest available path, ignoring
/// the source tag.  See [`open_snapshot_tagged`].
pub fn open_snapshot<P: AsRef<Path>>(path: P) -> Result<SnapshotSource> {
    open_snapshot_tagged(path).map(|(source, _)| source)
}

/// Opens a snapshot file through the fastest available path and returns
/// the source tag alongside.
///
/// On 64-bit little-endian Unix the file is memory-mapped, the checksum
/// and the full structural validation run **once** over the mapping,
/// and the graph's arrays borrow the mapping in place
/// ([`SnapshotSource::Mapped`]) — no per-element decode, no heap copy
/// of the payload.  When the platform cannot map, or any section would
/// be misaligned for its element type, the reader falls back to the
/// owned decode ([`SnapshotSource::Owned`]).  Every validation failure
/// is the same typed [`SnapshotError`] the byte reader produces;
/// corrupt input never reaches the zero-copy fast path.
pub fn open_snapshot_tagged<P: AsRef<Path>>(path: P) -> Result<(SnapshotSource, u64)> {
    let mut file = File::open(path)?;
    match Mapping::map_file(&file) {
        Ok(map) => {
            let map = Arc::new(map);
            let (source_tag, n, m) = check_envelope(map.bytes())?;
            match mapped_graph(&map, n, m)? {
                Some(graph) => Ok((SnapshotSource::Mapped(graph), source_tag)),
                // Misaligned section (cannot happen for files this
                // module wrote, but the check is what makes the unsafe
                // view sound): decode from the mapping instead.
                None => {
                    let graph = decode_owned(map.bytes(), n, m)?;
                    Ok((SnapshotSource::Owned(graph), source_tag))
                }
            }
        }
        // No mmap on this platform (or an empty/unmappable file): read
        // the bytes and take the owned path, surfacing its typed errors.
        Err(_) => {
            let mut data = Vec::new();
            file.read_to_end(&mut data)?;
            let (graph, source_tag) = read_snapshot_bytes_tagged(&data)?;
            Ok((SnapshotSource::Owned(graph), source_tag))
        }
    }
}

/// Builds zero-copy section views over a checksum-verified mapping and
/// validates them structurally.  Returns `Ok(None)` when any section
/// fails the alignment check (caller falls back to the owned decode).
fn mapped_graph(map: &Arc<Mapping>, n: usize, m: usize) -> Result<Option<UncertainGraph>> {
    let lay = layout(n, m);
    let offsets = mapped_section::<usize>(map, lay.offsets, n + 1);
    let neighbors = mapped_section::<VertexId>(map, lay.neighbors, 2 * m);
    let neighbor_edges = mapped_section::<EdgeId>(map, lay.neighbor_edges, 2 * m);
    let neighbor_probs = mapped_section::<f64>(map, lay.neighbor_probs, 2 * m);
    let edges = mapped_section::<Edge>(map, lay.edges, m);
    let (Some(offsets), Some(neighbors), Some(neighbor_edges), Some(neighbor_probs), Some(edges)) =
        (offsets, neighbors, neighbor_edges, neighbor_probs, edges)
    else {
        return Ok(None);
    };
    validate(
        n,
        m,
        &offsets,
        &neighbors,
        &neighbor_edges,
        &neighbor_probs,
        &edges,
    )?;
    Ok(Some(UncertainGraph::from_sections(
        offsets,
        neighbors,
        neighbor_probs,
        neighbor_edges,
        edges,
    )))
}

/// Deserializes a `.ugsnap` snapshot from any reader.
pub fn read_snapshot<R: Read>(reader: R) -> Result<UncertainGraph> {
    let mut data = Vec::new();
    let mut reader = reader;
    reader.read_to_end(&mut data)?;
    read_snapshot_bytes(&data)
}

/// Reads a `.ugsnap` snapshot from a file path into owned buffers.
/// Prefer [`open_snapshot`] where a borrowed, zero-copy graph is
/// acceptable.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph> {
    let file = File::open(path)?;
    read_snapshot(file)
}

/// Reads a `.ugsnap` snapshot and its source tag from a file path into
/// owned buffers.
pub fn read_snapshot_file_tagged<P: AsRef<Path>>(path: P) -> Result<(UncertainGraph, u64)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    read_snapshot_bytes_tagged(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{assign_probabilities, gnm_edges, ProbabilityModel};
    use crate::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_graph() -> UncertainGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let edges = gnm_edges(40, 150, &mut rng);
        assign_probabilities(
            &edges,
            40,
            &ProbabilityModel::Uniform {
                low: 0.05,
                high: 1.0,
            },
            &mut rng,
        )
    }

    fn encode(graph: &UncertainGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(graph, &mut buf).unwrap();
        buf
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ugraph_snapshot_{tag}.ugsnap"))
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let g = sample_graph();
        let buf = encode(&g);
        let g2 = read_snapshot_bytes(&buf).unwrap();
        assert_eq!(g, g2);
        // Probabilities must survive bit-exactly, not just approximately.
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
    }

    #[test]
    fn round_trip_preserves_isolated_vertices_and_empty_graphs() {
        let mut b = GraphBuilder::with_vertices(10);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        let g2 = read_snapshot_bytes(&encode(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 10);
        assert_eq!(g, g2);

        let empty = UncertainGraph::empty(3);
        assert_eq!(read_snapshot_bytes(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn file_round_trip() {
        let g = sample_graph();
        let path = temp_path("round_trip");
        write_snapshot_file(&g, &path).unwrap();
        let g2 = read_snapshot_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        // The alignment guarantee the zero-copy reader relies on: the
        // header and every section boundary sit at multiples of 8.
        for (n, m) in [(0usize, 0usize), (1, 0), (7, 13), (40, 150)] {
            let lay = layout(n, m);
            for off in [
                HEADER_LEN,
                lay.offsets,
                lay.neighbors,
                lay.neighbor_edges,
                lay.neighbor_probs,
                lay.edges,
                lay.total,
            ] {
                assert_eq!(off % 8, 0, "layout for n={n} m={m} misaligned");
            }
        }
    }

    #[test]
    fn open_snapshot_maps_and_matches_owned_bit_for_bit() {
        let g = sample_graph();
        let path = temp_path("open_mapped");
        write_snapshot_file(&g, &path).unwrap();
        let source = open_snapshot(&path).unwrap();
        // On 64-bit little-endian Unix (all CI targets) the fast path
        // must actually engage.
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        {
            assert!(source.is_mapped(), "expected the zero-copy path");
            assert_eq!(source.kind(), "mapped");
            assert!(source.graph().is_memory_mapped());
        }
        let owned = read_snapshot_file(&path).unwrap();
        assert!(!owned.is_memory_mapped());
        assert_eq!(source.graph(), &owned);
        for (a, b) in source.graph().edges().iter().zip(owned.edges()) {
            assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
        // The mapped graph must behave, not just compare equal — and
        // keep working after the path is gone (the mapping holds on).
        std::fs::remove_file(&path).ok();
        let g2 = source.into_graph();
        assert_eq!(g.count_triangles(), g2.count_triangles());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn open_snapshot_returns_the_source_tag() {
        let g = sample_graph();
        let path = temp_path("open_tagged");
        write_snapshot_file_tagged(&g, &path, 0xFEED_F00D).unwrap();
        let (source, tag) = open_snapshot_tagged(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(tag, 0xFEED_F00D);
        assert_eq!(source.graph(), &g);
    }

    #[test]
    fn open_snapshot_rejects_corruption_with_typed_errors() {
        // Corrupt files must produce the same typed errors through the
        // mmap path as through the byte reader — and never a graph.
        let g = sample_graph();
        let buf = encode(&g);
        let path = temp_path("open_corrupt");

        // Truncated file.
        std::fs::write(&path, &buf[..buf.len() / 2]).unwrap();
        assert!(matches!(
            open_snapshot(&path).unwrap_err(),
            GraphError::Snapshot(
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            )
        ));

        // Flipped payload byte.
        let mut bad = buf.clone();
        bad[HEADER_LEN + 3] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            open_snapshot(&path).unwrap_err(),
            GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })
        ));

        // Old version field.
        let mut bad = buf.clone();
        bad[8] = 2;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            open_snapshot(&path).unwrap_err(),
            GraphError::Snapshot(SnapshotError::UnsupportedVersion(2))
        ));

        // Missing file is a plain I/O error.
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            open_snapshot(&path).unwrap_err(),
            GraphError::Io(_)
        ));
    }

    #[test]
    fn open_snapshot_handles_empty_graphs_via_fallback_or_map() {
        // An empty graph's snapshot is tiny but valid; whatever path the
        // platform takes must produce the same graph.
        let empty = UncertainGraph::empty(5);
        let path = temp_path("open_empty");
        write_snapshot_file(&empty, &path).unwrap();
        let source = open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(source.into_graph(), empty);
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let g = sample_graph();
        let buf = encode(&g);
        for len in [
            0,
            7,
            HEADER_LEN - 1,
            HEADER_LEN + 3,
            buf.len() / 2,
            buf.len() - 1,
        ] {
            let err = read_snapshot_bytes(&buf[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    GraphError::Snapshot(
                        SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                    )
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let g = sample_graph();
        let mut buf = encode(&g);
        buf[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot_bytes(&buf).unwrap_err(),
            GraphError::Snapshot(SnapshotError::BadMagic)
        ));
        let mut buf = encode(&g);
        buf[8] = 99;
        assert!(matches!(
            read_snapshot_bytes(&buf).unwrap_err(),
            GraphError::Snapshot(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        // Flip each byte in turn: the checksum (or, for trailer bytes,
        // the checksum comparison itself) must catch all of them.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        let g = b.build();
        let buf = encode(&g);
        for i in 12..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                read_snapshot_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn valid_checksum_with_corrupt_payload_is_rejected() {
        // Re-sign tampered payloads so only structural validation stands
        // between the reader and an invariant-violating graph.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        let g = b.build();
        let buf = encode(&g);
        let resign = |mut payload: Vec<u8>| {
            let len = payload.len();
            let sum = xxh64(&payload[..len - 8], CHECKSUM_SEED);
            payload[len - 8..].copy_from_slice(&sum.to_le_bytes());
            payload
        };

        // Out-of-range probability in the edge table (last edge's p).
        let mut bad = buf.clone();
        let p_at = bad.len() - 8 - 8;
        bad[p_at..p_at + 8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&resign(bad)).unwrap_err(),
            GraphError::Snapshot(SnapshotError::Corrupt(_))
        ));

        // A stored probability that disagrees with the edge table.
        let lay = layout(g.num_vertices(), g.num_edges());
        let mut bad = buf.clone();
        bad[lay.neighbor_probs..lay.neighbor_probs + 8]
            .copy_from_slice(&0.999f64.to_bits().to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&resign(bad)).unwrap_err(),
            GraphError::Snapshot(SnapshotError::Corrupt(_))
        ));

        // Non-monotone offsets.
        let mut bad = buf.clone();
        bad[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot_bytes(&resign(bad)).is_err());

        // Nonzero reserved bytes.
        let mut bad = buf.clone();
        bad[13] = 1;
        assert!(read_snapshot_bytes(&resign(bad)).is_err());

        // Implausible vertex count must not allocate.
        let mut bad = buf;
        bad[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot_bytes(&resign(bad)).is_err());
    }

    #[test]
    fn source_tags_round_trip_and_plain_writes_are_untagged() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_snapshot_tagged(&g, &mut buf, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        let (g2, tag) = read_snapshot_bytes_tagged(&buf).unwrap();
        assert_eq!(g, g2);
        assert_eq!(tag, 0xDEAD_BEEF_CAFE_F00D);
        // The untagged reader still accepts tagged snapshots.
        assert_eq!(read_snapshot_bytes(&buf).unwrap(), g);

        let (_, plain_tag) = read_snapshot_bytes_tagged(&encode(&g)).unwrap();
        assert_eq!(plain_tag, UNTAGGED);

        let path = temp_path("tagged");
        write_snapshot_file_tagged(&g, &path, 7).unwrap();
        let (g3, tag3) = read_snapshot_file_tagged(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g3, g);
        assert_eq!(tag3, 7);
    }

    #[test]
    fn old_version_snapshots_are_rejected_not_misread() {
        // Hand-build a version-2 snapshot (36-byte header, no stored
        // probability section): the reader must fail with
        // UnsupportedVersion, never reinterpret the old layout through
        // the v3 offsets.
        let mut payload = Vec::new();
        payload.extend_from_slice(&SNAPSHOT_MAGIC);
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes()); // v2 source tag
        payload.extend_from_slice(&2u64.to_le_bytes()); // n
        payload.extend_from_slice(&0u64.to_le_bytes()); // m
        for _ in 0..3 {
            payload.extend_from_slice(&0u64.to_le_bytes()); // offsets
        }
        let sum = xxh64(&payload, CHECKSUM_SEED);
        payload.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&payload).unwrap_err(),
            GraphError::Snapshot(SnapshotError::UnsupportedVersion(2))
        ));

        // Same through the mmap open path.
        let path = temp_path("old_version");
        std::fs::write(&path, &payload).unwrap();
        let err = open_snapshot(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            GraphError::Snapshot(SnapshotError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn graph_survives_use_after_reload() {
        // The reloaded graph must behave, not just compare equal.
        let g = sample_graph();
        let g2 = read_snapshot_bytes(&encode(&g)).unwrap();
        assert_eq!(g.count_triangles(), g2.count_triangles());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }
}
