//! Connectivity utilities: disjoint-set union (union-find) and connected
//! components over vertex or edge subsets.
//!
//! Every decomposition in this workspace reports *maximal connected*
//! subgraphs, so connectivity checks are on the hot path of the nuclei
//! extraction code in `nucleus` and the baselines in `probdecomp`.

use crate::graph::{UncertainGraph, VertexId};

/// Disjoint-set union with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates a structure over `n` singleton elements `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently tracked.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of the set containing `x` (with path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they
    /// were previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by representative, returning only groups that
    /// satisfy `keep` on the element id (useful for restricting to a
    /// subset of active elements).
    pub fn groups_filtered<F>(&mut self, keep: F) -> Vec<Vec<u32>>
    where
        F: Fn(u32) -> bool,
    {
        let n = self.len();
        let mut by_root: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for x in 0..n as u32 {
            if keep(x) {
                let r = self.find(x);
                by_root.entry(r).or_default().push(x);
            }
        }
        let mut groups: Vec<Vec<u32>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// Groups all elements by representative.
    pub fn groups(&mut self) -> Vec<Vec<u32>> {
        self.groups_filtered(|_| true)
    }
}

/// Connected components of an [`UncertainGraph`], computed structurally
/// (edge probabilities are ignored).
#[derive(Debug, Clone)]
pub struct ConnectedComponents {
    /// `component[v]` is the component index of vertex `v`.
    component: Vec<usize>,
    /// Number of components.
    count: usize,
}

impl ConnectedComponents {
    /// Computes components over the whole graph.
    pub fn new(graph: &UncertainGraph) -> Self {
        Self::over_vertices(graph, |_| true)
    }

    /// Computes components of the subgraph induced by vertices satisfying
    /// `include`.  Excluded vertices are assigned `usize::MAX`.
    pub fn over_vertices<F>(graph: &UncertainGraph, include: F) -> Self
    where
        F: Fn(VertexId) -> bool,
    {
        let n = graph.num_vertices();
        let mut component = vec![usize::MAX; n];
        let mut count = 0usize;
        let mut stack = Vec::new();
        for start in 0..n as VertexId {
            if !include(start) || component[start as usize] != usize::MAX {
                continue;
            }
            component[start as usize] = count;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &w in graph.neighbors(v) {
                    if include(w) && component[w as usize] == usize::MAX {
                        component[w as usize] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        ConnectedComponents { component, count }
    }

    /// Number of connected components (of the included vertices).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of `v`, or `None` for excluded vertices.
    pub fn component_of(&self, v: VertexId) -> Option<usize> {
        let c = self.component[v as usize];
        if c == usize::MAX {
            None
        } else {
            Some(c)
        }
    }

    /// `true` when every included vertex is in one component and at least
    /// one vertex was included.
    pub fn is_connected(&self) -> bool {
        self.count == 1
    }

    /// Vertices of each component, sorted by component index.
    pub fn vertex_sets(&self) -> Vec<Vec<VertexId>> {
        let mut sets = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter().enumerate() {
            if c != usize::MAX {
                sets[c].push(v as VertexId);
            }
        }
        sets
    }
}

/// Returns `true` when the deterministic structure of `graph` (ignoring
/// probabilities) is connected and non-empty.
pub fn is_connected(graph: &UncertainGraph) -> bool {
    if graph.num_vertices() == 0 {
        return false;
    }
    ConnectedComponents::new(graph).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_find_groups() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(3, 4);
        let groups = uf.groups();
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&3) && sizes.contains(&1));
    }

    #[test]
    fn union_find_groups_filtered() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        let groups = uf.groups_filtered(|x| x != 3);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().any(|g| g == &vec![0, 1]));
        assert!(groups.iter().any(|g| g == &vec![2]));
    }

    #[test]
    fn components_of_two_triangles() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build();
        let cc = ConnectedComponents::new(&g);
        assert_eq!(cc.count(), 2);
        assert!(!cc.is_connected());
        assert_eq!(cc.component_of(0), cc.component_of(2));
        assert_ne!(cc.component_of(0), cc.component_of(3));
        let sets = cc.vertex_sets();
        assert_eq!(sets[0], vec![0, 1, 2]);
        assert_eq!(sets[1], vec![3, 4, 5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_respect_isolated_vertices() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build();
        let cc = ConnectedComponents::new(&g);
        assert_eq!(cc.count(), 3); // {0,1}, {2}, {3}
    }

    #[test]
    fn induced_components() {
        let mut b = GraphBuilder::new();
        // path 0-1-2-3
        for &(u, v) in &[(0, 1), (1, 2), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        // removing vertex 1 separates 0 from {2,3}
        let cc = ConnectedComponents::over_vertices(&g, |v| v != 1);
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.component_of(1), None);
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_graph_is_not_connected() {
        let g = crate::UncertainGraph::empty(0);
        assert!(!is_connected(&g));
    }
}
