//! The crate's **only** `unsafe` module: read-only file mappings and
//! typed zero-copy views over them.
//!
//! Everything `unsafe` in `ugraph` lives behind this module boundary so
//! it can be audited in one place (`lib.rs` carries
//! `#![deny(unsafe_code)]`; this module alone opts back in).  Three
//! pieces:
//!
//! * [`Mapping`] — a `PROT_READ`/`MAP_PRIVATE` memory mapping of a whole
//!   file, created through raw `mmap(2)`/`munmap(2)` declarations (the
//!   repo vendors no libc crate; the symbols come from the libc that
//!   `std` already links).  Only compiled in on 64-bit little-endian
//!   Unix; everywhere else [`Mapping::map_file`] reports
//!   "unsupported" and callers fall back to owned buffers.
//! * [`Plain`] — an `unsafe` marker trait for plain-old-data element
//!   types that a byte region may be reinterpreted as: every bit
//!   pattern must be a valid value, and the type must be `#[repr(C)]`
//!   (or a primitive) with no padding bytes and no pointers.
//! * [`Section`] — a slice-like container that is either an owned
//!   `Vec<T>` or a borrowed window into an [`Mapping`] kept alive by an
//!   `Arc`.  `Deref<Target = [T]>` makes the two cases indistinguishable
//!   to the rest of the crate.
//!
//! # Safety argument
//!
//! * A [`Section::Mapped`] is only ever constructed by
//!   [`mapped_section`], which bounds-checks the byte range against the
//!   mapping length, checks the *absolute* pointer alignment for `T`,
//!   and returns `None` (caller falls back to an owned decode) rather
//!   than building a misaligned or out-of-range view.
//! * The mapping is `PROT_READ`: nothing in this process can write
//!   through it, so `&[T]` aliasing rules hold for the lifetime of the
//!   `Arc<Mapping>` each view carries.
//! * The standard `mmap` caveat remains: truncating the *file* while it
//!   is mapped raises `SIGBUS` on access.  Snapshot files are written
//!   once and atomically replaced by the cache layers in this repo, and
//!   the checksum is verified through the mapping exactly once at open,
//!   so the window is the same one every mmap-based reader accepts.
//! * All element types implementing [`Plain`] (`u32`, `u64`, `usize` on
//!   64-bit targets, `f64`, and the `#[repr(C)]` [`Edge`]) have no
//!   invalid bit patterns and no padding, so reinterpreting checksummed
//!   file bytes can never produce an invalid value, only a *wrong* one —
//!   which the structural validation in `io::snapshot` then rejects.

#![allow(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::Arc;

use crate::graph::Edge;

/// Marker for plain-old-data element types that mapped bytes may be
/// reinterpreted as.
///
/// # Safety
///
/// Implementors must guarantee: every bit pattern is a valid value, the
/// layout is fixed (`#[repr(C)]` or primitive), and the type contains
/// no padding bytes and no pointers or lifetimes.
pub(crate) unsafe trait Plain: Copy + Send + Sync + 'static {}

unsafe impl Plain for u32 {}
unsafe impl Plain for u64 {}
unsafe impl Plain for f64 {}
// `usize` is plain data on every width; reinterpreting 8-byte file
// sections as `usize` is additionally gated on 64-bit targets by
// `Mapping::map_file` refusing to map elsewhere.
unsafe impl Plain for usize {}
// `Edge` is `#[repr(C)] { u: u32, v: u32, p: f64 }`: 16 bytes, no
// padding (asserted below), and any bits form a valid value.
unsafe impl Plain for Edge {}

// The snapshot layout and the `Plain` impl above both rely on this.
const _: () = assert!(std::mem::size_of::<Edge>() == 16);
const _: () = assert!(std::mem::align_of::<Edge>() == 8);

/// A read-only memory mapping of an entire file.
pub(crate) struct Mapping {
    ptr: NonNull<u8>,
    len: usize,
}

// The mapping is PROT_READ and never handed out mutably.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    // Declared by hand because the repo deliberately vendors no libc
    // crate; these two symbols come from the libc `std` links anyway.
    // Signatures match POSIX on 64-bit Linux and macOS (`off_t` = i64).
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mapping {
    /// Maps `file` read-only in its entirety.
    ///
    /// Returns `Unsupported` on platforms without the fast path (non-
    /// Unix, big-endian, or 32-bit pointers — the snapshot reader then
    /// decodes into owned buffers instead) and a plain I/O error when
    /// the `mmap` call itself fails.  Zero-length files are reported as
    /// unsupported: `mmap` rejects them and there is nothing to borrow.
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    pub(crate) fn map_file(file: &File) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::Unsupported, "file exceeds address space")
        })?;
        // SAFETY: len is nonzero, the fd is valid for the duration of
        // the call, and we request a fresh private read-only mapping at
        // a kernel-chosen address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        let ptr = NonNull::new(ptr as *mut u8).ok_or_else(|| {
            // A null mapping would be a kernel bug; treat it as failure
            // rather than building a NonNull from it.
            io::Error::other("mmap returned a null address")
        })?;
        Ok(Mapping { ptr, len })
    }

    /// Fallback stub: no mmap fast path on this platform.
    #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
    pub(crate) fn map_file(_file: &File) -> io::Result<Mapping> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is not supported on this platform",
        ))
    }

    /// Length of the mapping in bytes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The mapped file contents.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; no mutable access exists anywhere.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once; all borrowing Sections hold an Arc keeping this
        // drop from running while views are alive.
        unsafe {
            sys::munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

/// Slice-like storage that is either owned or a zero-copy window into a
/// file mapping.  `Deref<Target = [T]>` hides the difference.
pub(crate) enum Section<T: Plain> {
    /// Heap-allocated elements (the default everywhere).
    Owned(Vec<T>),
    /// A typed window into a [`Mapping`], kept alive by the `Arc`.
    Mapped {
        /// First element; validated aligned and in-bounds at creation.
        ptr: NonNull<T>,
        /// Element count.
        len: usize,
        /// Keeps the mapping (and thus `ptr`) alive.
        map: Arc<Mapping>,
        /// `Section<T>` logically owns `[T]` data.
        marker: PhantomData<T>,
    },
}

// SAFETY: Plain requires Send + Sync element types, Mapped data is
// immutable, and Arc<Mapping> is itself Send + Sync.
unsafe impl<T: Plain> Send for Section<T> {}
unsafe impl<T: Plain> Sync for Section<T> {}

/// Builds a typed view of `elems` elements of `T` starting `byte_off`
/// bytes into the mapping.
///
/// Returns `None` — never a skewed view — when the range overflows or
/// exceeds the mapping, or when the absolute address is misaligned for
/// `T`; callers treat `None` as "take the owned decode path".
pub(crate) fn mapped_section<T: Plain>(
    map: &Arc<Mapping>,
    byte_off: usize,
    elems: usize,
) -> Option<Section<T>> {
    let bytes = elems.checked_mul(std::mem::size_of::<T>())?;
    let end = byte_off.checked_add(bytes)?;
    if end > map.len() {
        return None;
    }
    // SAFETY: byte_off ≤ end ≤ map.len(), so the offset stays inside
    // (or one past) the allocation.
    let ptr = unsafe { map.ptr.as_ptr().add(byte_off) };
    if (ptr as usize) % std::mem::align_of::<T>() != 0 {
        return None;
    }
    Some(Section::Mapped {
        // SAFETY: derived from a NonNull base by an in-bounds add.
        ptr: unsafe { NonNull::new_unchecked(ptr.cast::<T>()) },
        len: elems,
        map: Arc::clone(map),
        marker: PhantomData,
    })
}

impl<T: Plain> Deref for Section<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        match self {
            Section::Owned(v) => v,
            // SAFETY: construction via `mapped_section` proved the
            // range in-bounds and aligned; `map` keeps it alive; `T:
            // Plain` makes every bit pattern valid.
            Section::Mapped { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts(ptr.as_ptr(), *len)
            },
        }
    }
}

impl<T: Plain> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Section::Owned(v)
    }
}

impl<T: Plain> Clone for Section<T> {
    fn clone(&self) -> Self {
        match self {
            Section::Owned(v) => Section::Owned(v.clone()),
            Section::Mapped { ptr, len, map, .. } => Section::Mapped {
                ptr: *ptr,
                len: *len,
                map: Arc::clone(map),
                marker: PhantomData,
            },
        }
    }
}

impl<T: Plain + fmt::Debug> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: Plain + PartialEq> PartialEq for Section<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Plain> Section<T> {
    /// `true` when this section borrows a file mapping.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, Section::Mapped { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("ugraph_mem_{tag}.bin"));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn mapping_reads_file_contents() {
        let path = temp_file("basic", b"0123456789abcdef");
        let map = Mapping::map_file(&File::open(&path).unwrap());
        std::fs::remove_file(&path).ok();
        let map = match map {
            Ok(m) => m,
            // Platform without the fast path: nothing to assert.
            Err(e) if e.kind() == io::ErrorKind::Unsupported => return,
            Err(e) => panic!("mmap failed: {e}"),
        };
        assert_eq!(map.bytes(), b"0123456789abcdef");
        assert_eq!(map.len(), 16);
    }

    #[test]
    fn empty_files_are_unsupported_not_mapped() {
        let path = temp_file("empty", b"");
        let res = Mapping::map_file(&File::open(&path).unwrap());
        std::fs::remove_file(&path).ok();
        assert!(res.is_err());
    }

    #[test]
    fn mapped_section_rejects_misalignment_and_overflow() {
        let mut bytes = Vec::new();
        for i in 0u64..8 {
            bytes.extend_from_slice(&i.to_le_bytes());
        }
        let path = temp_file("views", &bytes);
        let map = Mapping::map_file(&File::open(&path).unwrap());
        std::fs::remove_file(&path).ok();
        let map = match map {
            Ok(m) => Arc::new(m),
            Err(_) => return,
        };
        // Aligned, in-bounds: the view reads the encoded values.
        let ok = mapped_section::<u64>(&map, 8, 7).expect("aligned view");
        assert!(ok.is_mapped());
        assert_eq!(&*ok, &[1, 2, 3, 4, 5, 6, 7]);
        // A byte offset that misaligns u64 must be refused (the mmap
        // base itself is page-aligned, so +4 is misaligned for sure).
        assert!(mapped_section::<u64>(&map, 4, 1).is_none());
        // Out of bounds and arithmetic overflow must be refused.
        assert!(mapped_section::<u64>(&map, 8, 8).is_none());
        assert!(mapped_section::<u64>(&map, usize::MAX, 1).is_none());
        assert!(mapped_section::<u64>(&map, 0, usize::MAX / 4).is_none());
    }

    #[test]
    fn sections_outlive_the_arc_binding() {
        // The view must keep the mapping alive after the caller drops
        // its own Arc.
        let mut bytes = Vec::new();
        for i in 0u32..16 {
            bytes.extend_from_slice(&i.to_le_bytes());
        }
        let path = temp_file("keepalive", &bytes);
        let map = Mapping::map_file(&File::open(&path).unwrap());
        std::fs::remove_file(&path).ok();
        let map = match map {
            Ok(m) => Arc::new(m),
            Err(_) => return,
        };
        let view = mapped_section::<u32>(&map, 0, 16).unwrap();
        drop(map);
        assert_eq!(view[15], 15);
        let clone = view.clone();
        drop(view);
        assert_eq!(clone[0], 0);
    }

    #[test]
    fn owned_and_mapped_sections_compare_by_contents() {
        let owned: Section<u32> = vec![1, 2, 3].into();
        assert!(!owned.is_mapped());
        assert_eq!(&*owned, &[1, 2, 3]);
        let other: Section<u32> = vec![1, 2, 3].into();
        assert_eq!(owned, other);
        assert_eq!(format!("{owned:?}"), "[1, 2, 3]");
    }
}
