//! # ugraph — probabilistic (uncertain) graph substrate
//!
//! This crate provides the graph infrastructure that the probabilistic
//! nucleus decomposition of Esfahani et al. (ICDE 2022) is built on:
//!
//! * [`UncertainGraph`] — a compact CSR representation of an undirected
//!   graph in which every edge carries an independent existence
//!   probability `p ∈ (0, 1]`.
//! * [`GraphBuilder`] — incremental construction with de-duplication.
//! * [`PossibleWorld`] — deterministic instantiations of an uncertain graph
//!   obtained by flipping a biased coin per edge, together with their
//!   existence probability (Equation 1 of the paper).
//! * Triangle and 4-clique enumeration ([`triangles`], [`cliques`]) — the
//!   `r = 3`, `s = 4` higher-order structures used by the (3,4)-nucleus.
//! * Parallel execution substrate ([`par`]) — a zero-dependency, scoped-
//!   thread chunked parallel-for with atomic chunk claiming that drives the
//!   `*_with` variants of the enumerators.  Every parallel result is
//!   bit-identical to the sequential one; the degree of parallelism is
//!   chosen through [`Parallelism`].
//! * Connectivity utilities ([`connectivity`]) — union-find and BFS
//!   components, used by every decomposition to report maximal connected
//!   subgraphs.
//! * Quality metrics ([`metrics`]) — probabilistic density (PD) and
//!   probabilistic clustering coefficient (PCC) from Section 7.4.
//! * Generic (r,s)-nucleus engine ([`rs`]) — the support-structure trait
//!   ([`rs::RsSupport`]), its (1,2) and (2,3) implementations, the shared
//!   Poisson-binomial DP ([`rs::dp`]) and the deferred bucket-queue peel
//!   that `detdecomp`, `probdecomp` and `nucleus` all instantiate.
//! * Random generators ([`generators`]) and ingestion/persistence
//!   ([`io`]) — SNAP edge lists, Konect TSV, versioned `.ugsnap` binary
//!   snapshots with checksums, and pluggable edge-probability models.
//! * Edge updates ([`update`]) — atomic, typed-error batches of
//!   insert/delete/re-weight mutations producing a new graph plus the
//!   edge-id [`update::GraphDelta`] the incremental support-repair
//!   paths consume.
//!
//! The crate is deliberately free of any decomposition logic; it is the
//! substrate shared by `detdecomp`, `probdecomp` and `nucleus`.
//!
//! # Unsafe-code discipline
//!
//! The crate denies `unsafe_code` globally; the single exception is the
//! private `mem` module, which isolates the `mmap(2)` syscall and the
//! typed zero-copy views the snapshot reader builds over mapped files.
//! Everything `unsafe` can be audited in that one file.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cliques;
pub mod connectivity;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub(crate) mod mem;
pub mod metrics;
pub mod par;
pub mod possible_world;
pub mod rs;
pub mod subgraph;
pub mod triangles;
pub mod update;

pub use builder::GraphBuilder;
pub use cliques::{FourClique, FourCliqueEnumerator};
pub use connectivity::{ConnectedComponents, UnionFind};
pub use error::{GraphError, IdOverflow, SnapshotError};
pub use graph::{Edge, EdgeId, UncertainGraph, VertexId};
pub use io::{EdgeProbabilityModel, InputFormat};
pub use par::Parallelism;
pub use possible_world::{PossibleWorld, WorldSampler};
pub use subgraph::EdgeSubgraph;
pub use triangles::{Triangle, TriangleId, TriangleIndex};
pub use update::{apply_edge_updates, EdgeUpdate, GraphDelta, UpdateError};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
