//! Core probabilistic graph representation.
//!
//! [`UncertainGraph`] stores an undirected simple graph in compressed
//! sparse row (CSR) form.  Every undirected edge `{u, v}` is stored once in
//! a canonical edge table (with `u < v`) and twice in the adjacency arrays
//! (as `u → v` and `v → u`), so that neighbourhood scans and binary
//! searches are cache friendly while per-edge metadata (the existence
//! probability) is never duplicated as the source of truth.

use crate::error::GraphError;
use crate::mem::Section;
use crate::Result;

/// Identifier of a vertex; vertices are densely numbered `0..num_vertices`.
pub type VertexId = u32;

/// Identifier of an undirected edge; edges are densely numbered
/// `0..num_edges` in the canonical order produced by the builder
/// (lexicographic by `(min(u,v), max(u,v))`).
pub type EdgeId = u32;

/// A single undirected probabilistic edge with canonical orientation
/// `u < v`.
///
/// `#[repr(C)]` pins the layout to 16 bytes without padding (`u` at 0,
/// `v` at 4, `p` at 8) so the binary snapshot format can persist the
/// edge table verbatim and the zero-copy reader can borrow it in place.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Existence probability in `(0, 1]`.
    pub p: f64,
}

impl Edge {
    /// Returns the endpoint different from `w`, or `None` when `w` is not
    /// an endpoint of this edge.
    pub fn other(&self, w: VertexId) -> Option<VertexId> {
        if w == self.u {
            Some(self.v)
        } else if w == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Returns both endpoints as a `(u, v)` pair with `u < v`.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }
}

/// An undirected simple graph with independent edge-existence
/// probabilities, stored in CSR form.
///
/// The probabilistic semantics follow the possible-world model of the
/// paper: a possible world `G ⊑ 𝒢` keeps each edge independently with its
/// probability, and `Pr(G) = Π_{e∈G} p_e · Π_{e∉G} (1 − p_e)` (Equation 1).
///
/// # Example
///
/// ```
/// use ugraph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 0.9).unwrap();
/// b.add_edge(1, 2, 0.5).unwrap();
/// b.add_edge(0, 2, 1.0).unwrap();
/// let g = b.build();
///
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edge_probability(0, 1), Some(0.9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainGraph {
    /// CSR offsets: the neighbours of vertex `v` live at
    /// `neighbors[offsets[v]..offsets[v+1]]`.
    offsets: Section<usize>,
    /// Flattened adjacency lists, each sorted by neighbour id.
    neighbors: Section<VertexId>,
    /// Probability of the edge to the corresponding neighbour.
    neighbor_probs: Section<f64>,
    /// Canonical edge id of the edge to the corresponding neighbour.
    neighbor_edges: Section<EdgeId>,
    /// Canonical edge table (one entry per undirected edge, `u < v`).
    edges: Section<Edge>,
}

impl UncertainGraph {
    /// Constructs a graph directly from CSR parts.  Intended for use by
    /// [`GraphBuilder`](crate::GraphBuilder) and the subgraph machinery;
    /// invariants (sorted adjacency, symmetric edges, canonical edge table)
    /// must already hold.
    pub(crate) fn from_csr(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        neighbor_probs: Vec<f64>,
        neighbor_edges: Vec<EdgeId>,
        edges: Vec<Edge>,
    ) -> Self {
        Self::from_sections(
            offsets.into(),
            neighbors.into(),
            neighbor_probs.into(),
            neighbor_edges.into(),
            edges.into(),
        )
    }

    /// Constructs a graph from already-wrapped sections — the zero-copy
    /// snapshot reader hands in [`Section::Mapped`] windows here.  The
    /// same invariants as [`Self::from_csr`] must hold.
    pub(crate) fn from_sections(
        offsets: Section<usize>,
        neighbors: Section<VertexId>,
        neighbor_probs: Section<f64>,
        neighbor_edges: Section<EdgeId>,
        edges: Section<Edge>,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), neighbor_probs.len());
        debug_assert_eq!(neighbors.len(), neighbor_edges.len());
        debug_assert_eq!(neighbors.len(), edges.len() * 2);
        UncertainGraph {
            offsets,
            neighbors,
            neighbor_probs,
            neighbor_edges,
            edges,
        }
    }

    /// `true` when any of the graph's arrays borrow a memory-mapped
    /// snapshot instead of owning heap buffers.
    pub fn is_memory_mapped(&self) -> bool {
        self.offsets.is_mapped()
            || self.neighbors.is_mapped()
            || self.neighbor_probs.is_mapped()
            || self.neighbor_edges.is_mapped()
            || self.edges.is_mapped()
    }

    /// The raw CSR arrays `(offsets, neighbors, neighbor_probs,
    /// neighbor_edges)` — used by the binary snapshot writer, which
    /// persists the graph exactly as it sits in memory.
    pub(crate) fn csr_parts(&self) -> (&[usize], &[VertexId], &[f64], &[EdgeId]) {
        (
            &self.offsets,
            &self.neighbors,
            &self.neighbor_probs,
            &self.neighbor_edges,
        )
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        UncertainGraph::from_csr(
            vec![0; n + 1],
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        )
    }

    /// Number of vertices (including isolated ones).
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Degree of vertex `v` (number of incident edges, probabilities are
    /// ignored).
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all vertices; `0` for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average edge probability; `0.0` for an edgeless graph.
    pub fn average_probability(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.p).sum::<f64>() / self.edges.len() as f64
    }

    /// Sum of all edge probabilities (the expected number of edges in a
    /// sampled possible world).
    pub fn expected_num_edges(&self) -> f64 {
        self.edges.iter().map(|e| e.p).sum()
    }

    /// Sorted neighbour ids of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over `(neighbour, probability, edge id)` triples of `v`,
    /// sorted by neighbour id.
    pub fn neighbor_entries(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, f64, EdgeId)> + '_ {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        range.map(move |i| {
            (
                self.neighbors[i],
                self.neighbor_probs[i],
                self.neighbor_edges[i],
            )
        })
    }

    /// Returns `true` when the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_index(u, v).is_some()
    }

    /// Probability of the edge `{u, v}`, or `None` when absent.
    pub fn edge_probability(&self, u: VertexId, v: VertexId) -> Option<f64> {
        self.edge_index(u, v).map(|i| self.neighbor_probs[i])
    }

    /// Canonical edge id of `{u, v}`, or `None` when absent.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.edge_index(u, v).map(|i| self.neighbor_edges[i])
    }

    /// The canonical edge record for edge id `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    /// Canonical edge table (one record per undirected edge, `u < v`,
    /// indexed by [`EdgeId`]).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Position of `v` inside `u`'s adjacency slice, if the edge exists.
    fn edge_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if (u as usize) >= self.num_vertices() || (v as usize) >= self.num_vertices() {
            return None;
        }
        let base = self.offsets[u as usize];
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|pos| base + pos)
    }

    /// Intersection of the neighbourhoods of `u` and `v` (sorted merge of
    /// two sorted lists), excluding `u` and `v` themselves.
    ///
    /// This is the set of vertices forming a triangle with the edge
    /// `{u, v}`; it is the basic primitive behind triangle and 4-clique
    /// enumeration.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let a = self.neighbors(u);
        let b = self.neighbors(v);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i] != u && a[i] != v {
                        out.push(a[i]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Common neighbours of three vertices `u`, `v`, `w` — the vertices
    /// completing a 4-clique over the triangle `(u, v, w)` when all edges
    /// exist.
    pub fn common_neighbors3(&self, u: VertexId, v: VertexId, w: VertexId) -> Vec<VertexId> {
        let uv = self.common_neighbors(u, v);
        let nw = self.neighbors(w);
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < uv.len() && j < nw.len() {
            match uv[i].cmp(&nw[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if uv[i] != w {
                        out.push(uv[i]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Probability that the triangle `(u, v, w)` exists, i.e. the product of
    /// its three edge probabilities.  Returns an error when one of the
    /// edges is missing.
    pub fn triangle_probability(&self, u: VertexId, v: VertexId, w: VertexId) -> Result<f64> {
        let puv = self
            .edge_probability(u, v)
            .ok_or(GraphError::MissingEdge { edge: (u, v) })?;
        let pvw = self
            .edge_probability(v, w)
            .ok_or(GraphError::MissingEdge { edge: (v, w) })?;
        let puw = self
            .edge_probability(u, w)
            .ok_or(GraphError::MissingEdge { edge: (u, w) })?;
        Ok(puv * pvw * puw)
    }

    /// Total number of `(u, v, w)` triangles in the graph, ignoring
    /// probabilities.  Convenience wrapper over the triangle enumerator.
    pub fn count_triangles(&self) -> usize {
        crate::triangles::enumerate_triangles(self).len()
    }

    /// Ignoring probabilities, checks structural equality with `other`
    /// (same vertex count and same edge set).
    pub fn same_structure(&self, other: &UncertainGraph) -> bool {
        if self.num_vertices() != other.num_vertices() || self.num_edges() != other.num_edges() {
            return false;
        }
        self.edges
            .iter()
            .zip(other.edges.iter())
            .all(|(a, b)| a.u == b.u && a.v == b.v)
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle_graph() -> crate::UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.6).unwrap();
        b.add_edge(0, 2, 0.7).unwrap();
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_graph();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_probability() - 0.6).abs() < 1e-12);
        assert!((g.expected_num_edges() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = crate::UncertainGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_probability(), 0.0);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn adjacency_queries() {
        let g = triangle_graph();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.edge_probability(2, 1), Some(0.6));
        assert_eq!(g.edge_probability(0, 3), None);
        let eid = g.edge_id(0, 2).unwrap();
        let e = g.edge(eid);
        assert_eq!((e.u, e.v), (0, 2));
        assert_eq!(e.p, 0.7);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle_graph();
        let e = g.edge(g.edge_id(0, 1).unwrap());
        assert_eq!(e.other(0), Some(1));
        assert_eq!(e.other(1), Some(0));
        assert_eq!(e.other(2), None);
        assert_eq!(e.endpoints(), (0, 1));
    }

    #[test]
    fn common_neighbors_of_edge_and_triangle() {
        let mut b = GraphBuilder::new();
        // K4 on {0,1,2,3} plus a pendant vertex 4 attached to 0.
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        assert_eq!(g.common_neighbors(0, 1), vec![2, 3]);
        assert_eq!(g.common_neighbors3(0, 1, 2), vec![3]);
        assert_eq!(g.common_neighbors3(0, 1, 3), vec![2]);
        assert!(g.common_neighbors(0, 4).is_empty());
    }

    #[test]
    fn triangle_probability() {
        let g = triangle_graph();
        let p = g.triangle_probability(0, 1, 2).unwrap();
        assert!((p - 0.5 * 0.6 * 0.7).abs() < 1e-12);
        assert!(g.triangle_probability(0, 1, 5).is_err());
    }

    #[test]
    fn count_triangles_on_k4() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        let g = b.build();
        assert_eq!(g.count_triangles(), 4);
    }

    #[test]
    fn same_structure_ignores_probabilities() {
        let a = triangle_graph();
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.1).unwrap();
        b.add_edge(1, 2, 0.2).unwrap();
        b.add_edge(0, 2, 0.3).unwrap();
        let g2 = b.build();
        assert!(a.same_structure(&g2));

        let mut c = GraphBuilder::new();
        c.add_edge(0, 1, 0.1).unwrap();
        c.add_edge(1, 2, 0.2).unwrap();
        let g3 = c.build();
        assert!(!a.same_structure(&g3));
    }
}
