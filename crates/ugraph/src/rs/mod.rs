//! Generic (r,s)-nucleus peeling engine.
//!
//! The (r,s)-nucleus family (Sarıyüce et al.) parameterizes dense-subgraph
//! decompositions by a pair of clique sizes: every r-clique *element* is
//! scored by the s-cliques (*cells*) containing it, and elements are
//! peeled in non-decreasing score order.  The instances this workspace
//! cares about:
//!
//! | rank | element | cell | probabilistic decomposition |
//! |------|---------|------|-----------------------------|
//! | (1,2) | vertex | edge | (k,η)-core (Bonchi et al.) |
//! | (2,3) | edge | triangle | local (k,γ)-truss (Huang et al.) |
//! | (3,4) | triangle | 4-clique | ℓ-nucleus (Esfahani et al., the paper) |
//!
//! All three share one scoring shape — the largest `k` such that
//! `Pr(e) · Pr[ζ ≥ k] ≥ θ`, with `ζ` the Poisson-binomial sum of the
//! cell-completion events ([`dp`]) — and one peeling shape.  This module
//! hosts the shared machinery so that every engine optimization (monotone
//! bucket queue, deferred batched recompute, scratch arenas, perf
//! counters) lands on every rank at once:
//!
//! * [`RsSupport`] — the support-structure abstraction: cells per
//!   element, members per cell, completion probabilities, element
//!   existence probability.
//! * [`CoreSupport`] / [`TrussSupport`] — the (1,2) and (2,3)
//!   implementations (the (3,4) one is `nucleus::SupportStructure`).
//! * [`peel_deferred`] — the deferred bucket-queue peel, generic over the
//!   support and the (monotone) rescoring function.
//! * [`region`] — the bounded re-peel machinery for incremental edge
//!   updates: affected-set diffing, component closure and the
//!   [`RegionSupport`] adapter that re-peels only the touched region on
//!   this same engine.
//! * [`TailScratch`] — the reusable Poisson-binomial tail scorer.
//! * [`PeelStats`] — deterministic perf counters, identical for every
//!   thread count, gated in CI via committed bench baselines.
//!
//! Deferral requires the scorer to be *monotone*: removing a cell must
//! never raise the score (true for the exact DP — the Poisson-binomial
//! tail is pointwise dominated — and trivially for deterministic cell
//! counting).  Non-monotone scorers (the hybrid statistical
//! approximations of `nucleus`) must use an eager schedule instead.

pub mod core_support;
pub mod dp;
pub mod region;
pub mod truss_support;

pub use core_support::CoreSupport;
pub use dp::DpScratch;
pub use region::{affected_elements, component_closure, RegionSupport};
pub use truss_support::TrussSupport;

/// The support structure of one (r,s) rank: for every r-clique *element*
/// (dense ids `0..num_elements`), the s-clique *cells* containing it
/// (dense ids `0..num_cells`), the elements of each cell, and the
/// probabilities the Poisson-binomial scorer consumes.
///
/// Contract required for bit-identical peeling across engines:
///
/// * [`cells_of`](Self::cells_of) lists cells in a fixed, build-order
///   deterministic order — the completion probabilities are gathered in
///   exactly this order, and the DP is order-sensitive at the last ulp.
/// * [`cell_elements`](Self::cell_elements) lists each cell's member
///   elements; an element appears in `cells_of(t)` iff `t` appears in
///   `cell_elements(c)`.
/// * [`completion_prob`](Self::completion_prob) is the probability that
///   the *rest* of cell `c` materializes given element `t` exists (the
///   event `E_i` of the paper's Section 5.1 at rank 3).
pub trait RsSupport {
    /// Number of elements being peeled.
    fn num_elements(&self) -> usize;

    /// Number of cells.
    fn num_cells(&self) -> usize;

    /// Existence probability of element `t` itself — the factor the tail
    /// is scaled by (`Pr(△)` at rank 3, the edge probability at rank 2,
    /// `1.0` at rank 1).
    fn element_prob(&self, t: u32) -> f64;

    /// Ids of the cells containing element `t`, in the fixed gather
    /// order.
    fn cells_of(&self, t: u32) -> &[u32];

    /// Ids of the elements of cell `c`.
    fn cell_elements(&self, c: u32) -> &[u32];

    /// Completion probability of cell `c` for its member element `t`.
    fn completion_prob(&self, c: u32, t: u32) -> f64;

    /// Deterministic support of element `t`: the number of cells
    /// containing it.
    fn support(&self, t: u32) -> usize {
        self.cells_of(t).len()
    }

    /// Clears `out` and fills it with the completion probabilities of the
    /// cells of `t` accepted by `filter`, in [`cells_of`](Self::cells_of)
    /// order.  The peeling engines' score recomputations run through this
    /// with a reused buffer, so the steady state allocates nothing.
    fn completion_probs_into<F>(&self, t: u32, mut filter: F, out: &mut Vec<f64>)
    where
        F: FnMut(u32) -> bool,
    {
        out.clear();
        for &c in self.cells_of(t) {
            if filter(c) {
                out.push(self.completion_prob(c, t));
            }
        }
    }
}

/// Deterministic perf counters of one peeling run.
///
/// Every field is a function of the graph and the configuration only —
/// independent of wall clock, thread count and allocator behaviour — so
/// the counters can be committed to a benchmark baseline and gated on in
/// CI (`experiments bench-compare`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeelStats {
    /// Full score recomputations performed during peeling (DP or, for the
    /// hybrid scorer, whichever approximation was selected).  The initial
    /// score pass is not included: it is always exactly one evaluation
    /// per element.
    pub dp_calls: usize,
    /// Score recomputations avoided because the score was already pinned
    /// to the current level.  Deferred engine: pops of a dirty element
    /// resolved by the cheap `min(κ, alive)` bound alone.  Eager engine:
    /// per-neighbour `κ ≤ level` skips inside the cell-death loop (the
    /// reference implementation's own shortcut).  The two denominators
    /// differ, so don't compare this field across engine kinds.
    pub recompute_skips: usize,
    /// Distinct bucket-queue priorities that ever held an entry (0 for
    /// the eager heap engine, which has no buckets).
    pub buckets_touched: usize,
    /// Logical high-water mark, in bytes, of the per-evaluation scratch:
    /// the probability gather buffer plus — when the DP tables were
    /// actually filled — the pmf/tail tables.  Counted from requested
    /// element counts, not allocator capacities, so it is identical for
    /// every thread count.
    pub peak_scratch_bytes: usize,
    /// Process-wide peak resident set size in bytes (`VmHWM` from
    /// `/proc/self/status`) sampled when the engine finished; `0` on
    /// platforms without that interface.  Unlike every other field this
    /// one depends on the allocator and on what else the process already
    /// did, so it is **excluded from equality** (determinism tests compare
    /// the logical counters only) and benchmark gates treat it as a
    /// bounded environment probe, not an exact number.
    pub peak_rss_bytes: u64,
}

impl PartialEq for PeelStats {
    /// Logical counters only; `peak_rss_bytes` is an environment probe
    /// and deliberately ignored.
    fn eq(&self, other: &Self) -> bool {
        self.dp_calls == other.dp_calls
            && self.recompute_skips == other.recompute_skips
            && self.buckets_touched == other.buckets_touched
            && self.peak_scratch_bytes == other.peak_scratch_bytes
    }
}

impl Eq for PeelStats {}

/// Monotone bucket priority queue over small integer priorities.
///
/// Priorities are bounded by the largest initial score and the drain
/// level never decreases, so the queue is a `Vec` of buckets scanned once
/// from priority 0 upward: push and pop are `O(1)`, and the whole peel
/// costs `O(max priority + pushes)` queue work.  Pushing below the
/// current drain level violates the monotone contract and is rejected in
/// debug builds.
///
/// Stale entries are the caller's concern (lazy deletion): the queue
/// never removes an entry early, callers skip entries whose recorded
/// priority no longer matches.
pub struct BucketQueue {
    buckets: Vec<Vec<u32>>,
    /// Bucket currently being drained.
    cursor: usize,
    /// Next unread index within `buckets[cursor]`.
    head: usize,
    /// Distinct priorities that ever received an entry.
    touched: usize,
}

impl BucketQueue {
    /// A queue accepting priorities `0..=max_priority`.
    pub fn new(max_priority: u32) -> Self {
        BucketQueue {
            buckets: vec![Vec::new(); max_priority as usize + 1],
            cursor: 0,
            head: 0,
            touched: 0,
        }
    }

    /// Inserts `id` at `priority`.  Monotone contract: `priority` must be
    /// at least the current drain level.
    pub fn push(&mut self, priority: u32, id: u32) {
        let b = priority as usize;
        debug_assert!(
            b >= self.cursor,
            "monotone bucket queue: push at {b} below drain level {}",
            self.cursor
        );
        if self.buckets[b].is_empty() {
            self.touched += 1;
        }
        self.buckets[b].push(id);
    }

    /// Pops the next entry in non-decreasing priority order: entries
    /// within one bucket come out in insertion (FIFO) order, including
    /// entries pushed at the drain level mid-drain.
    pub fn pop(&mut self) -> Option<(u32, u32)> {
        loop {
            let bucket = self.buckets.get_mut(self.cursor)?;
            if self.head < bucket.len() {
                let id = bucket[self.head];
                self.head += 1;
                return Some((self.cursor as u32, id));
            }
            // The drained bucket can never be pushed to again; release
            // its memory as the cursor leaves it.
            *bucket = Vec::new();
            self.cursor += 1;
            self.head = 0;
        }
    }

    /// Number of distinct priorities that ever held an entry.
    pub fn buckets_touched(&self) -> usize {
        self.touched
    }
}

/// The deferred bucket-queue peel, generic over the support structure and
/// the rescoring function.
///
/// `kappa` holds the initial score of every element (one evaluation per
/// element, typically computed in parallel by the caller); the return
/// value is the final decomposition number of every element (the drain
/// level at which it was processed) plus the engine's perf counters
/// (`peak_scratch_bytes` is left 0 — the caller owns the scratch and
/// folds its high-water mark in).
///
/// `rescore(t, cell_dead)` must return the score of element `t` over the
/// cells whose `cell_dead` entry is false, and must be **monotone**:
/// killing a cell never raises the score.  Monotonicity is what makes the
/// peeling fixpoint independent of the evaluation schedule, so the
/// deferred engine is bit-identical to an eager one.
///
/// Invariants, with `level` the current drain bucket:
///
/// * `kappa[t]` is the score of `t` over the cells alive at its last
///   evaluation — an upper bound on the current score.
/// * `alive[t]` counts the alive cells of `t`, so
///   `min(kappa[t], alive[t])` is a cheap upper bound on the current
///   score.
/// * every unprocessed element has exactly one live queue entry, at
///   `pos[t] ≥ level`; when a cell of `t` dies, `t` is requeued at the
///   current level (its score may have dropped arbitrarily far), where
///   the pop either skips via the cheap bound or recomputes once over
///   the batched deaths.
pub fn peel_deferred<S, R>(
    support: &S,
    mut kappa: Vec<u32>,
    mut rescore: R,
) -> (Vec<u32>, PeelStats)
where
    S: RsSupport,
    R: FnMut(u32, &[bool]) -> u32,
{
    let nt = kappa.len();
    let nc = support.num_cells();
    let mut stats = PeelStats::default();

    let mut scores = vec![0u32; nt];
    let mut processed = vec![false; nt];
    let mut dirty = vec![false; nt];
    let mut cell_dead = vec![false; nc];
    let mut alive: Vec<u32> = (0..nt).map(|t| support.support(t as u32) as u32).collect();

    let max_kappa = kappa.iter().copied().max().unwrap_or(0);
    let mut queue = BucketQueue::new(max_kappa);
    let mut pos: Vec<u32> = kappa.clone();
    for (t, &k) in kappa.iter().enumerate() {
        queue.push(k, t as u32);
    }

    while let Some((level, t)) = queue.pop() {
        let ti = t as usize;
        if processed[ti] || pos[ti] != level {
            continue; // lazily deleted stale entry
        }
        if dirty[ti] {
            let bound = kappa[ti].min(alive[ti]);
            if bound > level {
                // The batched recompute: one evaluation over the cells
                // still alive, covering every death since the last one.
                let fresh = rescore(t, &cell_dead);
                stats.dp_calls += 1;
                // min() for defence in depth: the scorer is monotone, so
                // fresh ≤ kappa[ti] already holds.
                kappa[ti] = fresh.min(kappa[ti]);
                dirty[ti] = false;
                if kappa[ti] > level {
                    // Still above the level: requeue at its exact score.
                    pos[ti] = kappa[ti];
                    queue.push(kappa[ti], t);
                    continue;
                }
            } else {
                // min(κ, alive) ≤ level pins the clamped score to the
                // level; the recompute could not change anything.
                stats.recompute_skips += 1;
            }
        }
        processed[ti] = true;
        scores[ti] = level;

        // Every cell through t ceases to exist; affected elements are
        // only marked, not rescored.
        for &c in support.cells_of(t) {
            if cell_dead[c as usize] {
                continue;
            }
            cell_dead[c as usize] = true;
            for &other in support.cell_elements(c) {
                let oi = other as usize;
                if other == t || processed[oi] {
                    continue;
                }
                alive[oi] -= 1;
                dirty[oi] = true;
                if pos[oi] > level {
                    // Its score may now be as low as the current level;
                    // requeue for (at most) one deferred recompute.
                    pos[oi] = level;
                    queue.push(level, other);
                }
            }
        }
    }

    stats.buckets_touched = queue.buckets_touched();
    stats.peak_rss_bytes = crate::metrics::peak_rss_bytes();
    (scores, stats)
}

/// Reusable Poisson-binomial tail scorer: the probability gather buffer
/// and the DP pmf/tail tables are shared across evaluations, so the
/// steady state allocates nothing.  One per worker thread (initial pass)
/// or per engine (peeling).
///
/// Scoring is the exact arithmetic of gathering the completion
/// probabilities in cell order and running [`dp::max_k`], so scores are
/// bit-identical to the allocating entry points — and to the frozen
/// per-rank reference implementations, which gather the same floats in
/// the same order.
#[derive(Debug, Clone, Default)]
pub struct TailScratch {
    probs: Vec<f64>,
    dp: DpScratch,
    peak_bytes: usize,
}

impl TailScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        TailScratch::default()
    }

    /// Scores element `t` over the cells accepted by `filter`: the
    /// largest `k` with `element_prob · Pr[ζ ≥ k] ≥ threshold`.
    pub fn score<S, F>(&mut self, support: &S, t: u32, threshold: f64, filter: F) -> u32
    where
        S: RsSupport,
        F: FnMut(u32) -> bool,
    {
        support.completion_probs_into(t, filter, &mut self.probs);
        let element_prob = support.element_prob(t);
        let k = dp::max_k_with_scratch(&mut self.dp, element_prob, &self.probs, threshold);
        // The DP tables are only materialized when the DP actually ran
        // (`max_k` returns early for sub-threshold elements without
        // touching them).
        let c = self.probs.len();
        let dp_tables = element_prob >= threshold;
        let needed =
            c * std::mem::size_of::<f64>() + if dp_tables { dp::table_bytes(c) } else { 0 };
        self.peak_bytes = self.peak_bytes.max(needed);
        k
    }

    /// Running maximum of the per-evaluation logical scratch requirement.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_queue_pops_in_priority_then_fifo_order() {
        let mut q = BucketQueue::new(3);
        q.push(2, 10);
        q.push(0, 11);
        q.push(2, 12);
        q.push(3, 13);
        q.push(0, 14);
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, vec![(0, 11), (0, 14), (2, 10), (2, 12), (3, 13)]);
        // Priorities 0, 2 and 3 held entries; 1 never did.
        assert_eq!(q.buckets_touched(), 3);
    }

    #[test]
    fn bucket_queue_accepts_pushes_at_the_drain_level() {
        let mut q = BucketQueue::new(2);
        q.push(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        // Mid-drain push at the current level must come out before any
        // higher bucket.
        q.push(1, 2);
        q.push(2, 3);
        assert_eq!(q.pop(), Some((1, 2)));
        assert_eq!(q.pop(), Some((2, 3)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "exhausted queue stays exhausted");
    }

    #[test]
    #[should_panic(expected = "monotone bucket queue")]
    #[cfg(debug_assertions)]
    fn bucket_queue_rejects_push_below_drain_level() {
        let mut q = BucketQueue::new(3);
        q.push(2, 1);
        assert_eq!(q.pop(), Some((2, 1)));
        q.push(1, 2);
    }

    #[test]
    fn empty_queue_and_zero_priority() {
        let mut q = BucketQueue::new(0);
        q.push(0, 7);
        assert_eq!(q.buckets_touched(), 1);
        assert_eq!(q.pop(), Some((0, 7)));
        assert_eq!(q.pop(), None);
        let mut empty = BucketQueue::new(5);
        assert_eq!(empty.pop(), None);
        assert_eq!(empty.buckets_touched(), 0);
    }
}
