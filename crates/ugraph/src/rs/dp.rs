//! Exact Poisson-binomial dynamic programming shared by every rank of
//! the (r,s)-nucleus family.
//!
//! For an element with completion events `E_1, …, E_c` (4-clique
//! completions of a triangle, wedge closures of an edge, incident edges
//! of a vertex — see [`super::RsSupport`]), let `ζ = Σ E_i`.  The DP
//! table `X(k, j)` — the probability that exactly `k` of the first `j`
//! events hold — satisfies
//!
//! ```text
//! X(k, j) = Pr(E_j)·X(k−1, j−1) + (1 − Pr(E_j))·X(k, j−1)
//! ```
//!
//! with `X(0, 0) = 1`.  Multiplying the tail by the element's own
//! existence probability gives `Pr(X_{𝒢,e} ≥ k)` (Proposition 5.1 of the
//! nucleus paper for r = 3; the same algebra at r = 1 is Bonchi et al.'s
//! η-degree and at r = 2 Huang et al.'s γ-support).  The full table costs
//! `O(c²)` per element.

/// Reusable buffers for the DP tables.
///
/// The peeling engine evaluates the DP thousands of times; allocating a
/// fresh pmf/tail vector per evaluation dominated the allocator profile.
/// A `DpScratch` is grown once to the largest support encountered and
/// reused, so the steady state allocates nothing.  The arithmetic is the
/// exact sequence of operations of the allocating entry points, so scores
/// computed through a scratch are bit-identical to them.
#[derive(Debug, Clone, Default)]
pub struct DpScratch {
    pmf: Vec<f64>,
    tail: Vec<f64>,
}

impl DpScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Fills `self.pmf` with `Pr[ζ = k]` for `k = 0..=c`.
    fn fill_pmf(&mut self, completion_probs: &[f64]) {
        let c = completion_probs.len();
        self.pmf.clear();
        self.pmf.resize(c + 1, 0.0);
        self.pmf[0] = 1.0;
        for (j, &p) in completion_probs.iter().enumerate() {
            for k in (0..=j + 1).rev() {
                let keep = if k <= j { self.pmf[k] * (1.0 - p) } else { 0.0 };
                let take = if k > 0 { self.pmf[k - 1] * p } else { 0.0 };
                self.pmf[k] = keep + take;
            }
        }
    }

    /// Fills `self.pmf` and `self.tail` (`Pr[ζ ≥ k]` for `k = 0..=c`).
    fn fill_tail(&mut self, completion_probs: &[f64]) {
        self.fill_pmf(completion_probs);
        self.tail.clear();
        self.tail.resize(self.pmf.len(), 0.0);
        let mut acc = 0.0;
        for k in (0..self.pmf.len()).rev() {
            acc += self.pmf[k];
            self.tail[k] = acc.min(1.0);
        }
    }
}

/// Bytes of DP-table scratch required for a support of size `c`: the pmf
/// and tail vectors, `c + 1` entries of 8 bytes each.  A *logical*
/// requirement (element count, not allocator capacity), so it is
/// independent of evaluation order and thread count — which keeps the
/// `peak_scratch_bytes` perf counter deterministic.
pub fn table_bytes(c: usize) -> usize {
    2 * (c + 1) * std::mem::size_of::<f64>()
}

/// Probability mass function of `ζ` (the number of completion events that
/// materialize).  Entry `k` is `Pr[ζ = k]` for `k = 0..=c`.
pub fn support_pmf(completion_probs: &[f64]) -> Vec<f64> {
    let mut scratch = DpScratch::new();
    scratch.fill_pmf(completion_probs);
    scratch.pmf
}

/// Tail probabilities of `ζ`: entry `k` is `Pr[ζ ≥ k]` for `k = 0..=c`.
pub fn support_tail(completion_probs: &[f64]) -> Vec<f64> {
    let mut scratch = DpScratch::new();
    scratch.fill_tail(completion_probs);
    scratch.tail
}

/// `Pr(X_{𝒢,e} ≥ k)` for a single `k`: `Pr(e) · Pr[ζ ≥ k]` where
/// `element_prob` is the existence probability of the conditioning
/// element itself (Proposition 5.1 of the nucleus paper at rank 3).
pub fn local_tail_probability(element_prob: f64, completion_probs: &[f64], k: usize) -> f64 {
    if k > completion_probs.len() {
        return 0.0;
    }
    element_prob * support_tail(completion_probs)[k]
}

/// The initial score of an element: the largest `k` such that
/// `Pr(e) · Pr[ζ ≥ k] ≥ θ`, or `0` when even `k = 0` fails (i.e. the
/// element itself exists with probability below `θ`).
pub fn max_k(element_prob: f64, completion_probs: &[f64], theta: f64) -> u32 {
    max_k_with_scratch(&mut DpScratch::new(), element_prob, completion_probs, theta)
}

/// [`max_k`] evaluated through a reusable [`DpScratch`].  Performs the
/// identical arithmetic, so the returned score is bit-for-bit the same;
/// only the allocations differ.
pub fn max_k_with_scratch(
    scratch: &mut DpScratch,
    element_prob: f64,
    completion_probs: &[f64],
    theta: f64,
) -> u32 {
    if element_prob < theta {
        return 0;
    }
    scratch.fill_tail(completion_probs);
    let mut best = 0u32;
    for (k, &t) in scratch.tail.iter().enumerate() {
        if element_prob * t >= theta {
            best = k as u32;
        } else {
            break; // tails are non-increasing in k
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn pmf_of_no_events() {
        assert_eq!(support_pmf(&[]), vec![1.0]);
        assert_eq!(support_tail(&[]), vec![1.0]);
    }

    #[test]
    fn pmf_matches_exhaustive_enumeration() {
        let probs = [0.3, 0.7, 0.45];
        let pmf = support_pmf(&probs);
        let mut expected = [0.0f64; 4];
        for mask in 0u32..8 {
            let mut p = 1.0;
            let mut cnt = 0usize;
            for (i, &pi) in probs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pi;
                    cnt += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            expected[cnt] += p;
        }
        for k in 0..4 {
            assert_close(pmf[k], expected[k]);
        }
        assert_close(pmf.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn tail_is_monotone() {
        let probs = [0.2, 0.9, 0.5, 0.5, 0.1];
        let tail = support_tail(&probs);
        assert_close(tail[0], 1.0);
        for w in tail.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
    }

    #[test]
    fn max_k_basics() {
        // Pr(e) = 1, one event with Pr(E) = 0.5, θ = 0.42 → k = 1.
        assert_eq!(max_k(1.0, &[0.5], 0.42), 1);
        assert_eq!(max_k(1.0, &[0.5], 0.6), 0);
        // Element below the threshold scores 0 without touching the DP.
        assert_eq!(max_k(0.05, &[0.9, 0.9], 0.1), 0);
        let probs = vec![1.0; 7];
        assert_eq!(max_k(1.0, &probs, 0.99), 7);
        assert_eq!(max_k(0.5, &probs, 0.4), 7);
        assert_eq!(max_k(0.5, &probs, 0.6), 0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_sizes() {
        // A shared scratch cycled through shrinking and growing supports
        // must return exactly what fresh allocations return.
        let mut scratch = DpScratch::new();
        let supports: Vec<Vec<f64>> = vec![
            vec![0.3, 0.7, 0.45, 0.99, 0.01],
            vec![0.5],
            vec![],
            vec![0.9; 12],
            vec![0.2, 0.8],
        ];
        for probs in &supports {
            for theta in [0.05, 0.3, 0.7] {
                assert_eq!(
                    max_k_with_scratch(&mut scratch, 0.9, probs, theta),
                    max_k(0.9, probs, theta),
                    "c={} theta={theta}",
                    probs.len()
                );
            }
        }
    }

    #[test]
    fn table_bytes_counts_both_tables() {
        assert_eq!(table_bytes(0), 16);
        assert_eq!(table_bytes(4), 80);
    }

    #[test]
    fn max_k_is_monotone_in_theta() {
        let probs = [0.6, 0.7, 0.8, 0.3, 0.9];
        let mut last = u32::MAX;
        for theta in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8] {
            let k = max_k(0.9, &probs, theta);
            assert!(k <= last);
            last = k;
        }
    }
}
