//! The (2,3) support structure: edges scored by their triangles.
//!
//! This is the substrate of the local probabilistic (k,γ)-truss (Huang,
//! Lu, Lakshmanan, "Truss decomposition of probabilistic graphs") and of
//! the deterministic k-truss.  An edge's completion events are the wedge
//! closures of its triangles: given edge `{u, v}`, triangle `{u, v, w}`
//! materializes with probability `p(u,w) · p(v,w)`, and the γ-support is
//! the largest `k` with `p(u,v) · Pr[at least k triangles close] ≥ γ`.

use crate::graph::UncertainGraph;
use crate::par::Parallelism;

use super::RsSupport;

/// Support structure of the (2,3) rank: elements are edges, cells are
/// triangles.
///
/// Triangles are enumerated like [`crate::triangles::TriangleIndex`],
/// whose id order is
/// lexicographic on the sorted vertex triple — so for a fixed edge
/// `{u, v}` the cell list is ordered by ascending third vertex `w`,
/// exactly the `common_neighbors(u, v)` order the frozen reference
/// implementation gathers in.  DP scores are therefore bit-identical.
#[derive(Debug, Clone)]
pub struct TrussSupport {
    /// Existence probability of every edge (`1.0` in the deterministic
    /// variant).
    element_probs: Vec<f64>,
    /// Triangle ids of every edge, in ascending id (= ascending third
    /// vertex) order.
    cells_of: Vec<Vec<u32>>,
    /// Member edge ids of every triangle `{a, b, c}` (`a < b < c`), as
    /// `[{a,b}, {a,c}, {b,c}]`.
    cell_elements: Vec<[u32; 3]>,
    /// Wedge-closure probability per triangle slot: entry `i` is the
    /// probability that the two *other* edges of the triangle exist,
    /// conditioning on member edge `i`.
    completion: Vec<[f64; 3]>,
}

impl TrussSupport {
    /// Builds the (2,3) support of `graph` with the graph's edge
    /// probabilities.  Triangle enumeration and per-triangle probability
    /// work run under `parallelism`.
    pub fn build(graph: &UncertainGraph, parallelism: Parallelism) -> Self {
        Self::build_inner(graph, parallelism, false)
    }

    /// Builds the (2,3) support of a *deterministic* view of `graph`:
    /// every edge exists with probability 1, so the Poisson-binomial
    /// scorer degenerates to triangle counting.
    pub fn deterministic(graph: &UncertainGraph, parallelism: Parallelism) -> Self {
        Self::build_inner(graph, parallelism, true)
    }

    fn build_inner(graph: &UncertainGraph, parallelism: Parallelism, deterministic: bool) -> Self {
        let mut triangles = crate::triangles::enumerate_triangles_with(graph, parallelism);
        // Global lexicographic order — the same cell-id order
        // `TriangleIndex::build_with` assigns.
        triangles.sort_unstable();
        Self::assemble(graph, &triangles, parallelism, deterministic)
    }

    /// Repairs the support after an edge-update batch: `old_graph` is
    /// the graph this support was built from, `new_graph` and `inserted`
    /// come from the batch's [`crate::update::GraphDelta`].  Surviving
    /// triangles are carried over, new ones are enumerated around the
    /// inserted edges only, and the records are recomputed from
    /// `new_graph` — the same arithmetic on the same floats as a fresh
    /// [`TrussSupport::build`], so the result is bit-identical to one.
    ///
    /// Only supports built by [`build`](Self::build) (probabilistic
    /// completion probabilities) are repairable; the
    /// [`deterministic`](Self::deterministic) variant is rebuilt by its
    /// owners instead.
    pub fn repair(
        &self,
        old_graph: &UncertainGraph,
        new_graph: &UncertainGraph,
        inserted: &[(u32, u32)],
        parallelism: Parallelism,
    ) -> Self {
        // Reconstruct the old triangle triples from the stored member
        // edges (cells are in lexicographic triple order already).
        let survivors = self.cell_elements.iter().filter_map(|&[eab, eac, _]| {
            let e1 = old_graph.edge(eab);
            let e2 = old_graph.edge(eac);
            let third = if e2.u == e1.u || e2.u == e1.v {
                e2.v
            } else {
                e2.u
            };
            let t = crate::triangles::Triangle::new(e1.u, e1.v, third);
            t.edges()
                .iter()
                .all(|&(a, b)| new_graph.has_edge(a, b))
                .then_some(t)
        });

        let mut added: Vec<crate::triangles::Triangle> = Vec::new();
        for &(u, v) in inserted {
            for w in new_graph.common_neighbors(u, v) {
                added.push(crate::triangles::Triangle::new(u, v, w));
            }
        }
        added.sort_unstable();
        added.dedup();

        // Merge the two sorted, disjoint runs (survivors have all-old
        // edges, additions contain an inserted one) back into global
        // lexicographic order.
        let mut triangles = Vec::with_capacity(self.cell_elements.len() + added.len());
        let mut add_iter = added.into_iter().peekable();
        for t in survivors {
            while let Some(&a) = add_iter.peek() {
                if a < t {
                    triangles.push(a);
                    add_iter.next();
                } else {
                    break;
                }
            }
            triangles.push(t);
        }
        triangles.extend(add_iter);

        Self::assemble(new_graph, &triangles, parallelism, false)
    }

    /// Builds the records over an explicit, lexicographically sorted
    /// triangle list — shared by the fresh build (full enumeration) and
    /// the incremental repair (merged survivor/addition list).
    fn assemble(
        graph: &UncertainGraph,
        triangles: &[crate::triangles::Triangle],
        parallelism: Parallelism,
        deterministic: bool,
    ) -> Self {
        let nt = triangles.len();
        let records: Vec<([u32; 3], [f64; 3])> = crate::par::par_map(parallelism, nt, |ti| {
            let [a, b, c] = triangles[ti].vertices();
            let eab = graph.edge_id(a, b).expect("triangle edge {a,b} exists");
            let eac = graph.edge_id(a, c).expect("triangle edge {a,c} exists");
            let ebc = graph.edge_id(b, c).expect("triangle edge {b,c} exists");
            let completion = if deterministic {
                [1.0, 1.0, 1.0]
            } else {
                let pab = graph.edge(eab).p;
                let pac = graph.edge(eac).p;
                let pbc = graph.edge(ebc).p;
                // Slot i conditions on member edge i; the two other
                // edges close the wedge.
                [pac * pbc, pab * pbc, pab * pac]
            };
            ([eab, eac, ebc], completion)
        });

        // Triangle indices are packed into `u32` cell ids; narrow through
        // the checked constructor so a count past 2^32 fails typed.
        if let Some(last) = nt.checked_sub(1) {
            crate::error::checked_id("triangle", last)
                .expect("triangle count exceeds the packed 32-bit id space");
        }
        let mut cells_of = vec![Vec::new(); graph.num_edges()];
        let mut cell_elements = Vec::with_capacity(nt);
        let mut completion = Vec::with_capacity(nt);
        for (ti, (edges, probs)) in records.into_iter().enumerate() {
            // Ascending triangle id per edge = ascending third vertex,
            // because triangle ids are lexicographic on the triple.
            for &e in &edges {
                cells_of[e as usize].push(ti as u32);
            }
            cell_elements.push(edges);
            completion.push(probs);
        }

        let element_probs = if deterministic {
            vec![1.0; graph.num_edges()]
        } else {
            graph.edges().iter().map(|e| e.p).collect()
        };

        TrussSupport {
            element_probs,
            cells_of,
            cell_elements,
            completion,
        }
    }

    /// Index of member edge `t` within cell `c`, or `None` when `t` is
    /// not an edge of the triangle.
    fn slot_of(&self, c: u32, t: u32) -> Option<usize> {
        self.cell_elements[c as usize].iter().position(|&e| e == t)
    }
}

impl RsSupport for TrussSupport {
    fn num_elements(&self) -> usize {
        self.element_probs.len()
    }

    fn num_cells(&self) -> usize {
        self.cell_elements.len()
    }

    fn element_prob(&self, t: u32) -> f64 {
        self.element_probs[t as usize]
    }

    fn cells_of(&self, t: u32) -> &[u32] {
        &self.cells_of[t as usize]
    }

    fn cell_elements(&self, c: u32) -> &[u32] {
        &self.cell_elements[c as usize]
    }

    fn completion_prob(&self, c: u32, t: u32) -> f64 {
        let slot = self
            .slot_of(c, t)
            .expect("completion_prob: edge is not a member of the triangle");
        self.completion[c as usize][slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Two triangles sharing the edge {1, 2}: {0,1,2} and {1,2,3}.
    fn bowtie() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.8).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        b.add_edge(1, 3, 0.6).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn shared_edge_sees_both_triangles_in_ascending_w_order() {
        let g = bowtie();
        let s = TrussSupport::build(&g, Parallelism::Sequential);
        assert_eq!(s.num_elements(), 5);
        assert_eq!(s.num_cells(), 2);
        let e12 = g.edge_id(1, 2).unwrap();
        let cells = s.cells_of(e12);
        assert_eq!(cells.len(), 2);
        // Reference gather order for edge {1,2}: common neighbours
        // ascending, w = 0 then w = 3.
        let mut probs = Vec::new();
        s.completion_probs_into(e12, |_| true, &mut probs);
        assert_eq!(probs, vec![0.9 * 0.8, 0.6 * 0.5]);
        assert_eq!(s.element_prob(e12), 0.7);
    }

    #[test]
    fn completion_matches_wedge_products_for_every_member() {
        let g = bowtie();
        let s = TrussSupport::build(&g, Parallelism::Sequential);
        // Triangle {0,1,2}: conditioning on {0,1} leaves {0,2},{1,2}.
        let e01 = g.edge_id(0, 1).unwrap();
        let e02 = g.edge_id(0, 2).unwrap();
        let e12 = g.edge_id(1, 2).unwrap();
        let t = s.cells_of(e01)[0];
        assert_eq!(s.cell_elements(t), &[e01, e02, e12]);
        assert_eq!(s.completion_prob(t, e01), 0.8 * 0.7);
        assert_eq!(s.completion_prob(t, e02), 0.9 * 0.7);
        assert_eq!(s.completion_prob(t, e12), 0.9 * 0.8);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = bowtie();
        let seq = TrussSupport::build(&g, Parallelism::Sequential);
        let par = TrussSupport::build(&g, Parallelism::fixed(4));
        assert_eq!(seq.element_probs, par.element_probs);
        assert_eq!(seq.cells_of, par.cells_of);
        assert_eq!(seq.cell_elements, par.cell_elements);
        assert_eq!(seq.completion, par.completion);
    }

    #[test]
    fn repair_is_bit_identical_to_a_fresh_build() {
        use crate::update::{apply_edge_updates, EdgeUpdate};
        let g = bowtie();
        let s = TrussSupport::build(&g, Parallelism::Sequential);
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            vec![EdgeUpdate::Insert { u: 0, v: 3, p: 0.4 }],
            vec![EdgeUpdate::Delete { u: 1, v: 2 }],
            vec![
                EdgeUpdate::Reweight { u: 0, v: 1, p: 0.2 },
                EdgeUpdate::Insert { u: 0, v: 3, p: 0.4 },
                EdgeUpdate::Delete { u: 2, v: 3 },
            ],
        ];
        for batch in batches {
            let delta = apply_edge_updates(&g, &batch).unwrap();
            let repaired = s.repair(&g, &delta.graph, &delta.inserted, Parallelism::Sequential);
            let fresh = TrussSupport::build(&delta.graph, Parallelism::Sequential);
            assert_eq!(repaired.cells_of, fresh.cells_of);
            assert_eq!(repaired.cell_elements, fresh.cell_elements);
            let bits = |v: &Vec<f64>| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&repaired.element_probs), bits(&fresh.element_probs));
            for (a, b) in repaired.completion.iter().zip(&fresh.completion) {
                for i in 0..3 {
                    assert_eq!(a[i].to_bits(), b[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn deterministic_variant_counts_triangles() {
        let g = bowtie();
        let s = TrussSupport::deterministic(&g, Parallelism::Sequential);
        let e12 = g.edge_id(1, 2).unwrap();
        assert_eq!(s.support(e12), 2);
        assert_eq!(s.element_prob(e12), 1.0);
        assert_eq!(s.completion_prob(s.cells_of(e12)[0], e12), 1.0);
    }
}
