//! Bounded re-peel machinery for incremental updates.
//!
//! After an edge-update batch, the repaired support structure differs
//! from the old one only around the touched edges.  Re-running the whole
//! peel would be correct but wasteful; this module computes how far the
//! damage can propagate and restricts the re-peel to that region:
//!
//! 1. [`affected_elements`] diffs the old and new supports element by
//!    element (existence-probability bits, cell lists, completion-
//!    probability bits) and returns the set `D` of elements whose
//!    *initial* score could differ.
//! 2. [`component_closure`] expands `D` to the union `R` of its
//!    connected components in the element–cell hypergraph.  Peeling is a
//!    component-local fixpoint: an element's final score depends only on
//!    its component, so components disjoint from `D` are bitwise
//!    unchanged and their old scores carry over.
//! 3. [`RegionSupport`] presents `R` as a dense [`RsSupport`] so the
//!    ordinary [`peel_deferred`](super::peel_deferred) engine re-peels
//!    just the region — same bucket queue, same dirty marking, same
//!    alive counters, same counters discipline.
//!
//! Closing `D` to whole components (rather than, say, a fixed-radius
//! ball) is what makes the carried scores *bit*-identical rather than
//! approximately right: within an untouched component every float the
//! scorer consumes has identical bits, and the peeling fixpoint is
//! schedule-independent for monotone scorers.

use super::RsSupport;

/// The elements of `new` whose initial score is not guaranteed to equal
/// their old score — the seed set `D` of the bounded re-peel, sorted
/// ascending.
///
/// `new_to_old[t]` maps a new element id to its old id (`None` for
/// elements with no old counterpart).  An element is *clean* (excluded)
/// iff it has an old counterpart with identical existence-probability
/// bits and a positionally identical cell list: same length, and at every
/// position the same cell (member elements map to the old member
/// elements, in order) with identical completion-probability bits.
/// Everything else — new elements, elements that gained or lost a cell,
/// elements touched by a re-weight — is affected.
pub fn affected_elements<S: RsSupport>(old: &S, new: &S, new_to_old: &[Option<u32>]) -> Vec<u32> {
    debug_assert_eq!(new_to_old.len(), new.num_elements());
    let mut affected = Vec::new();
    'elements: for t in 0..new.num_elements() as u32 {
        let Some(ot) = new_to_old[t as usize] else {
            affected.push(t);
            continue;
        };
        if new.element_prob(t).to_bits() != old.element_prob(ot).to_bits() {
            affected.push(t);
            continue;
        }
        let new_cells = new.cells_of(t);
        let old_cells = old.cells_of(ot);
        if new_cells.len() != old_cells.len() {
            affected.push(t);
            continue;
        }
        for (&nc, &oc) in new_cells.iter().zip(old_cells) {
            if new.completion_prob(nc, t).to_bits() != old.completion_prob(oc, ot).to_bits() {
                affected.push(t);
                continue 'elements;
            }
            let new_members = new.cell_elements(nc);
            let old_members = old.cell_elements(oc);
            if new_members.len() != old_members.len() {
                affected.push(t);
                continue 'elements;
            }
            for (&nm, &om) in new_members.iter().zip(old_members) {
                if new_to_old[nm as usize] != Some(om) {
                    affected.push(t);
                    continue 'elements;
                }
            }
        }
    }
    affected
}

/// Expands `seeds` to the union of their connected components in the
/// element–cell hypergraph of `support` (two elements are adjacent when
/// they share a cell).  Returns the component union sorted ascending; it
/// always contains every seed.
pub fn component_closure<S: RsSupport>(support: &S, seeds: &[u32]) -> Vec<u32> {
    let mut element_seen = vec![false; support.num_elements()];
    let mut cell_seen = vec![false; support.num_cells()];
    let mut stack: Vec<u32> = Vec::new();
    for &s in seeds {
        if !element_seen[s as usize] {
            element_seen[s as usize] = true;
            stack.push(s);
        }
    }
    let mut region = stack.clone();
    while let Some(t) = stack.pop() {
        for &c in support.cells_of(t) {
            if cell_seen[c as usize] {
                continue;
            }
            cell_seen[c as usize] = true;
            for &other in support.cell_elements(c) {
                if !element_seen[other as usize] {
                    element_seen[other as usize] = true;
                    region.push(other);
                    stack.push(other);
                }
            }
        }
    }
    region.sort_unstable();
    region
}

/// A component-closed subset of a support, densely re-indexed so the
/// ordinary peeling engine can run on it unchanged.
///
/// `elements` must be sorted, duplicate-free and closed under cell
/// co-membership (i.e. a [`component_closure`] result): every cell of a
/// member element must have all its member elements inside the region.
/// Cell lists keep their base order positionally, so completion
/// probabilities are gathered in exactly the order the full support
/// would gather them — the DP is order-sensitive at the last ulp.
#[derive(Debug)]
pub struct RegionSupport<'a, S> {
    base: &'a S,
    /// Sorted global element ids; local id = position.
    elements: Vec<u32>,
    /// Sorted global cell ids; local id = position.
    cells: Vec<u32>,
    /// Local cell ids per local element, in base `cells_of` order.
    cells_of: Vec<Vec<u32>>,
    /// Local element ids per local cell, in base `cell_elements` order.
    cell_elements: Vec<Vec<u32>>,
}

impl<'a, S: RsSupport> RegionSupport<'a, S> {
    /// Restricts `base` to the component-closed `elements` (sorted
    /// ascending).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the region is not closed: a cell of
    /// a member element has a member outside the region.
    pub fn new(base: &'a S, elements: Vec<u32>) -> Self {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        let mut element_local = vec![u32::MAX; base.num_elements()];
        for (i, &g) in elements.iter().enumerate() {
            element_local[g as usize] = i as u32;
        }
        let mut cells: Vec<u32> = elements
            .iter()
            .flat_map(|&g| base.cells_of(g).iter().copied())
            .collect();
        cells.sort_unstable();
        cells.dedup();
        let mut cell_local = vec![u32::MAX; base.num_cells()];
        for (i, &c) in cells.iter().enumerate() {
            cell_local[c as usize] = i as u32;
        }
        let cells_of = elements
            .iter()
            .map(|&g| {
                base.cells_of(g)
                    .iter()
                    .map(|&c| cell_local[c as usize])
                    .collect()
            })
            .collect();
        let cell_elements = cells
            .iter()
            .map(|&c| {
                base.cell_elements(c)
                    .iter()
                    .map(|&t| {
                        let local = element_local[t as usize];
                        debug_assert_ne!(
                            local,
                            u32::MAX,
                            "region is not closed under cell co-membership"
                        );
                        local
                    })
                    .collect()
            })
            .collect();
        RegionSupport {
            base,
            elements,
            cells,
            cells_of,
            cell_elements,
        }
    }

    /// The sorted global element ids of the region; the element at
    /// position `i` has local id `i`.
    pub fn global_elements(&self) -> &[u32] {
        &self.elements
    }
}

impl<S: RsSupport> RsSupport for RegionSupport<'_, S> {
    fn num_elements(&self) -> usize {
        self.elements.len()
    }

    fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn element_prob(&self, t: u32) -> f64 {
        self.base.element_prob(self.elements[t as usize])
    }

    fn cells_of(&self, t: u32) -> &[u32] {
        &self.cells_of[t as usize]
    }

    fn cell_elements(&self, c: u32) -> &[u32] {
        &self.cell_elements[c as usize]
    }

    fn completion_prob(&self, c: u32, t: u32) -> f64 {
        self.base
            .completion_prob(self.cells[c as usize], self.elements[t as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::super::{peel_deferred, CoreSupport, TailScratch, TrussSupport};
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::par::Parallelism;
    use crate::update::{apply_edge_updates, EdgeUpdate};
    use crate::UncertainGraph;

    /// Two separate components: a triangle {0,1,2} and a path 3–4–5.
    fn two_components() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.8).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        b.add_edge(3, 4, 0.6).unwrap();
        b.add_edge(4, 5, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn reweight_affects_only_the_touched_component() {
        let g = two_components();
        let old = TrussSupport::build(&g, Parallelism::Sequential);
        let delta = apply_edge_updates(&g, &[EdgeUpdate::Reweight { u: 0, v: 1, p: 0.4 }]).unwrap();
        let new = old.repair(&g, &delta.graph, &delta.inserted, Parallelism::Sequential);
        let new_to_old: Vec<Option<u32>> = delta.new_to_old.clone();
        let affected = affected_elements(&old, &new, &new_to_old);
        // All three triangle edges see changed bits (element prob for
        // {0,1}, completion probs for the others); the path edges are
        // clean.
        let tri_edges: Vec<u32> = [(0, 1), (0, 2), (1, 2)]
            .iter()
            .map(|&(u, v)| delta.graph.edge_id(u, v).unwrap())
            .collect();
        let mut expected = tri_edges.clone();
        expected.sort_unstable();
        assert_eq!(affected, expected);
        // The closure stays inside the triangle component.
        let region = component_closure(&new, &affected);
        assert_eq!(region, expected);
    }

    #[test]
    fn closure_pulls_in_whole_components_and_region_peel_matches_full() {
        // A 4-clique (dense component) plus an isolated triangle.
        let mut b = GraphBuilder::new();
        for &(u, v, p) in &[
            (0u32, 1u32, 0.9),
            (0, 2, 0.8),
            (0, 3, 0.7),
            (1, 2, 0.65),
            (1, 3, 0.6),
            (2, 3, 0.55),
            (4, 5, 0.5),
            (4, 6, 0.45),
            (5, 6, 0.4),
        ] {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build();
        let support = TrussSupport::build(&g, Parallelism::Sequential);
        let gamma = 0.1;

        // Full-graph run.
        let n = support.num_elements();
        let mut scratch = TailScratch::new();
        let kappa: Vec<u32> = (0..n as u32)
            .map(|t| scratch.score(&support, t, gamma, |_| true))
            .collect();
        let (full_scores, _) = peel_deferred(&support, kappa.clone(), |t, dead| {
            scratch.score(&support, t, gamma, |c| !dead[c as usize])
        });

        // Seed with one clique edge: the closure must grab the whole
        // clique component and nothing of the triangle component.
        let seed = g.edge_id(0, 1).unwrap();
        let region_ids = component_closure(&support, &[seed]);
        assert_eq!(region_ids.len(), 6);
        assert!(region_ids.iter().all(|&e| {
            let edge = g.edge(e);
            edge.u <= 3 && edge.v <= 3
        }));

        // Region re-peel reproduces the full-graph scores on the region.
        let region = RegionSupport::new(&support, region_ids.clone());
        assert_eq!(region.num_elements(), 6);
        let region_kappa: Vec<u32> = region_ids.iter().map(|&g| kappa[g as usize]).collect();
        let mut scratch2 = TailScratch::new();
        let (region_scores, _) = peel_deferred(&region, region_kappa, |t, dead| {
            scratch2.score(&region, t, gamma, |c| !dead[c as usize])
        });
        for (i, &gid) in region_ids.iter().enumerate() {
            assert_eq!(region_scores[i], full_scores[gid as usize]);
        }
        assert_eq!(region.global_elements(), region_ids.as_slice());
    }

    #[test]
    fn core_support_diff_flags_only_changed_vertices() {
        let g = two_components();
        let old = CoreSupport::build(&g);
        let delta = apply_edge_updates(&g, &[EdgeUpdate::Delete { u: 4, v: 5 }]).unwrap();
        let new = CoreSupport::build(&delta.graph);
        // (1,2) elements are vertices: the identity map.
        let ids: Vec<Option<u32>> = (0..new.num_elements() as u32).map(Some).collect();
        let affected = affected_elements(&old, &new, &ids);
        // Vertices 4 and 5 lost their shared edge; 3 keeps {3,4} but its
        // cell (edge) ids shifted — cell identity is tracked through the
        // member elements, which are unchanged vertices, so 3 is clean.
        assert_eq!(affected, vec![4, 5]);
        let region = component_closure(&new, &affected);
        assert_eq!(region, vec![3, 4, 5]);
    }

    #[test]
    fn empty_seed_set_yields_an_empty_region() {
        let g = two_components();
        let support = TrussSupport::build(&g, Parallelism::Sequential);
        assert!(component_closure(&support, &[]).is_empty());
        let region = RegionSupport::new(&support, Vec::new());
        assert_eq!(region.num_elements(), 0);
        assert_eq!(region.num_cells(), 0);
        let (scores, stats) = peel_deferred(&region, Vec::new(), |_, _| 0);
        assert!(scores.is_empty());
        assert_eq!(stats.dp_calls, 0);
    }
}
