//! The (1,2) support structure: vertices scored by their incident edges.
//!
//! This is the substrate of the probabilistic (k,η)-core (Bonchi et al.,
//! "Core decomposition of uncertain graphs") and of the deterministic
//! k-core.  A vertex's completion events are its incident edges, the
//! vertex itself always exists (`element_prob = 1`), and the η-degree is
//! the largest `k` with `Pr[at least k incident edges exist] ≥ η`.

use crate::graph::UncertainGraph;

use super::RsSupport;

/// Support structure of the (1,2) rank: elements are vertices, cells are
/// edges.
///
/// The per-vertex cell lists follow adjacency order (sorted by neighbour
/// id) and the per-cell probability is the canonical edge-table
/// probability — the same float, in the same order, as the reference
/// implementation's `neighbor_entries` gather, so DP scores are
/// bit-identical.
#[derive(Debug, Clone)]
pub struct CoreSupport {
    /// Incident edge ids of every vertex, flattened; slice `v` is
    /// `cells[offsets[v]..offsets[v + 1]]`, in adjacency order.
    cells: Vec<u32>,
    offsets: Vec<usize>,
    /// Endpoints of every edge (canonical `u < v`).
    cell_elements: Vec<[u32; 2]>,
    /// Existence probability of every edge (`1.0` in the deterministic
    /// variant).
    cell_probs: Vec<f64>,
}

impl CoreSupport {
    /// Builds the (1,2) support of `graph` with the graph's edge
    /// probabilities.
    pub fn build(graph: &UncertainGraph) -> Self {
        Self::build_inner(graph, false)
    }

    /// Builds the (1,2) support of a *deterministic* view of `graph`:
    /// every edge exists with probability 1, so the Poisson-binomial
    /// scorer degenerates to degree counting.
    pub fn deterministic(graph: &UncertainGraph) -> Self {
        Self::build_inner(graph, true)
    }

    fn build_inner(graph: &UncertainGraph, deterministic: bool) -> Self {
        let nv = graph.num_vertices();
        let mut cells = Vec::with_capacity(2 * graph.num_edges());
        let mut offsets = Vec::with_capacity(nv + 1);
        offsets.push(0);
        for v in graph.vertices() {
            for (_, _, e) in graph.neighbor_entries(v) {
                cells.push(e);
            }
            offsets.push(cells.len());
        }
        let cell_elements = graph.edges().iter().map(|e| [e.u, e.v]).collect();
        let cell_probs = if deterministic {
            vec![1.0; graph.num_edges()]
        } else {
            graph.edges().iter().map(|e| e.p).collect()
        };
        CoreSupport {
            cells,
            offsets,
            cell_elements,
            cell_probs,
        }
    }
}

impl RsSupport for CoreSupport {
    fn num_elements(&self) -> usize {
        self.offsets.len() - 1
    }

    fn num_cells(&self) -> usize {
        self.cell_elements.len()
    }

    fn element_prob(&self, _t: u32) -> f64 {
        // A vertex exists unconditionally; only its edges are uncertain.
        1.0
    }

    fn cells_of(&self, t: u32) -> &[u32] {
        let t = t as usize;
        &self.cells[self.offsets[t]..self.offsets[t + 1]]
    }

    fn cell_elements(&self, c: u32) -> &[u32] {
        &self.cell_elements[c as usize]
    }

    fn completion_prob(&self, c: u32, _t: u32) -> f64 {
        // Given the vertex, the cell materializes iff the edge exists.
        self.cell_probs[c as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.25).unwrap();
        b.build()
    }

    #[test]
    fn cells_follow_adjacency_order_with_edge_probs() {
        let g = path_graph();
        let s = CoreSupport::build(&g);
        assert_eq!(s.num_elements(), 4);
        assert_eq!(s.num_cells(), 3);
        // Vertex 1's incident edges in adjacency (neighbour-sorted)
        // order: {0,1} then {1,2}.
        let cells = s.cells_of(1);
        assert_eq!(cells.len(), 2);
        assert_eq!(s.cell_elements(cells[0]), &[0, 1]);
        assert_eq!(s.cell_elements(cells[1]), &[1, 2]);
        let mut probs = Vec::new();
        s.completion_probs_into(1, |_| true, &mut probs);
        assert_eq!(probs, vec![0.9, 0.5]);
        assert_eq!(s.element_prob(1), 1.0);
        assert_eq!(s.support(1), 2);
        assert_eq!(s.support(3), 1);
    }

    #[test]
    fn gather_matches_neighbor_entries_bitwise() {
        let g = path_graph();
        let s = CoreSupport::build(&g);
        let mut probs = Vec::new();
        for v in g.vertices() {
            s.completion_probs_into(v, |_| true, &mut probs);
            let reference: Vec<f64> = g.neighbor_entries(v).map(|(_, p, _)| p).collect();
            assert_eq!(probs, reference, "vertex {v}");
        }
    }

    #[test]
    fn deterministic_variant_has_unit_probs() {
        let g = path_graph();
        let s = CoreSupport::deterministic(&g);
        let mut probs = Vec::new();
        s.completion_probs_into(2, |_| true, &mut probs);
        assert_eq!(probs, vec![1.0, 1.0]);
    }

    #[test]
    fn filter_drops_dead_cells_in_order() {
        let g = path_graph();
        let s = CoreSupport::build(&g);
        let dead = s.cells_of(1)[0];
        let mut probs = Vec::new();
        s.completion_probs_into(1, |c| c != dead, &mut probs);
        assert_eq!(probs, vec![0.5]);
    }
}
