//! Induced subgraphs with vertex-id remapping.
//!
//! Decompositions report maximal subgraphs (nuclei, trusses, cores) as sets
//! of vertices or edges of the original graph.  [`EdgeSubgraph`]
//! materializes such a set as a standalone [`UncertainGraph`] with densely
//! renumbered vertices while remembering the mapping back to the original
//! ids, so that quality metrics can run on the compact graph and results
//! can still be reported in the original id space.

use std::collections::HashMap;

use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// A materialized subgraph of a parent [`UncertainGraph`] together with
/// the mapping from its dense vertex ids back to the parent's ids.
#[derive(Debug, Clone)]
pub struct EdgeSubgraph {
    graph: UncertainGraph,
    /// `original_ids[new]` is the parent-graph id of subgraph vertex `new`.
    original_ids: Vec<VertexId>,
}

impl EdgeSubgraph {
    /// Subgraph induced by a set of *vertices* of `parent`: all parent
    /// edges with both endpoints in `vertices` are kept.
    pub fn induced_by_vertices(parent: &UncertainGraph, vertices: &[VertexId]) -> Self {
        let mut sorted: Vec<VertexId> = vertices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let index: HashMap<VertexId, VertexId> = sorted
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as VertexId))
            .collect();

        let mut b = crate::GraphBuilder::with_vertices(sorted.len());
        for &old_u in &sorted {
            for (old_v, p, _) in parent.neighbor_entries(old_u) {
                if old_u < old_v {
                    if let Some(&new_v) = index.get(&old_v) {
                        let new_u = index[&old_u];
                        b.add_edge(new_u, new_v, p)
                            .expect("parent edges are always valid");
                    }
                }
            }
        }
        EdgeSubgraph {
            graph: b.build(),
            original_ids: sorted,
        }
    }

    /// Subgraph induced by a set of *edges* of `parent`: exactly the given
    /// edges are kept, and the vertex set is the set of their endpoints.
    pub fn induced_by_edges(parent: &UncertainGraph, edges: &[EdgeId]) -> Self {
        let mut vertex_set: Vec<VertexId> = Vec::new();
        for &e in edges {
            let edge = parent.edge(e);
            vertex_set.push(edge.u);
            vertex_set.push(edge.v);
        }
        vertex_set.sort_unstable();
        vertex_set.dedup();
        let index: HashMap<VertexId, VertexId> = vertex_set
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as VertexId))
            .collect();

        let mut b = crate::GraphBuilder::with_vertices(vertex_set.len());
        let mut unique_edges: Vec<EdgeId> = edges.to_vec();
        unique_edges.sort_unstable();
        unique_edges.dedup();
        for e in unique_edges {
            let edge = parent.edge(e);
            b.add_edge(index[&edge.u], index[&edge.v], edge.p)
                .expect("parent edges are always valid");
        }
        EdgeSubgraph {
            graph: b.build(),
            original_ids: vertex_set,
        }
    }

    /// The materialized subgraph (dense vertex ids `0..len`).
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }

    /// Consumes the view, returning the materialized subgraph.
    pub fn into_graph(self) -> UncertainGraph {
        self.graph
    }

    /// Number of vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges in the subgraph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Parent-graph id of subgraph vertex `new`.
    pub fn original_vertex(&self, new: VertexId) -> VertexId {
        self.original_ids[new as usize]
    }

    /// Parent-graph ids of all subgraph vertices, in dense-id order.
    pub fn original_vertices(&self) -> &[VertexId] {
        &self.original_ids
    }

    /// Subgraph id of parent vertex `old`, if present.
    pub fn local_vertex(&self, old: VertexId) -> Option<VertexId> {
        self.original_ids
            .binary_search(&old)
            .ok()
            .map(|i| i as VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample_graph() -> UncertainGraph {
        // Two triangles sharing vertex 2, plus a pendant edge.
        let mut b = GraphBuilder::new();
        for &(u, v, p) in &[
            (0u32, 1u32, 0.9),
            (1, 2, 0.8),
            (0, 2, 0.7),
            (2, 3, 0.6),
            (3, 4, 0.5),
            (2, 4, 0.4),
            (4, 5, 0.3),
        ] {
            b.add_edge(u, v, p).unwrap();
        }
        b.build()
    }

    #[test]
    fn induced_by_vertices_keeps_internal_edges() {
        let g = sample_graph();
        let sub = EdgeSubgraph::induced_by_vertices(&g, &[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.original_vertices(), &[0, 1, 2]);
        // Probabilities carried over.
        let a = sub.local_vertex(0).unwrap();
        let b_ = sub.local_vertex(1).unwrap();
        assert_eq!(sub.graph().edge_probability(a, b_), Some(0.9));
    }

    #[test]
    fn induced_by_vertices_handles_duplicates_and_order() {
        let g = sample_graph();
        let sub = EdgeSubgraph::induced_by_vertices(&g, &[4, 2, 3, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.original_vertices(), &[2, 3, 4]);
    }

    #[test]
    fn induced_by_vertices_excludes_external_edges() {
        let g = sample_graph();
        let sub = EdgeSubgraph::induced_by_vertices(&g, &[0, 1, 5]);
        assert_eq!(sub.num_edges(), 1); // only (0,1); 5 connects outside the set
        assert_eq!(sub.original_vertex(2), 5);
        assert_eq!(sub.graph().degree(sub.local_vertex(5).unwrap()), 0);
    }

    #[test]
    fn induced_by_edges_keeps_exactly_those_edges() {
        let g = sample_graph();
        let e01 = g.edge_id(0, 1).unwrap();
        let e23 = g.edge_id(2, 3).unwrap();
        let sub = EdgeSubgraph::induced_by_edges(&g, &[e01, e23, e01]);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.original_vertices(), &[0, 1, 2, 3]);
        // Edge (0,2) exists in the parent between included vertices but was
        // not part of the edge set, so it must be absent.
        let l0 = sub.local_vertex(0).unwrap();
        let l2 = sub.local_vertex(2).unwrap();
        assert!(!sub.graph().has_edge(l0, l2));
    }

    #[test]
    fn local_vertex_lookup() {
        let g = sample_graph();
        let sub = EdgeSubgraph::induced_by_vertices(&g, &[1, 3, 5]);
        assert_eq!(sub.local_vertex(3), Some(1));
        assert_eq!(sub.local_vertex(0), None);
        assert_eq!(sub.original_vertex(2), 5);
    }

    #[test]
    fn empty_inductions() {
        let g = sample_graph();
        let sub = EdgeSubgraph::induced_by_vertices(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
        let sub2 = EdgeSubgraph::induced_by_edges(&g, &[]);
        assert_eq!(sub2.num_vertices(), 0);
        let g2 = sub2.into_graph();
        assert_eq!(g2.num_edges(), 0);
    }
}
