//! Edge updates against a built [`UncertainGraph`].
//!
//! [`UncertainGraph`] is a frozen CSR — cheap to query, impossible to
//! mutate in place.  This module is the bridge to the streaming scenario:
//! a batch of [`EdgeUpdate`]s is validated as a whole (typed
//! [`UpdateError`]s, no partial application), applied to produce a fresh
//! graph, and described by a [`GraphDelta`] that downstream support
//! structures consume to repair themselves incrementally instead of
//! rebuilding.
//!
//! Semantics:
//!
//! * The vertex set is fixed: endpoints must be `< num_vertices`
//!   ([`UpdateError::OffGraphEndpoint`] otherwise).  Growing the vertex
//!   set is a re-ingest, not an update.
//! * Updates apply **sequentially** within the batch: inserting an edge
//!   deleted earlier in the same batch is legal (and nets out to a
//!   re-weight or a no-op), inserting an edge that currently exists is
//!   [`UpdateError::EdgeExists`], deleting or re-weighting a missing one
//!   is [`UpdateError::EdgeMissing`].
//! * The batch is atomic: the first invalid update aborts the whole
//!   application with its index, and nothing changes.
//!
//! The [`GraphDelta`] reports *net* effects — an insert-then-delete of
//! the same edge inside one batch is invisible to consumers — because the
//! repair paths only care about how the final edge set differs from the
//! original one.

use std::collections::HashMap;
use std::fmt;

use crate::builder::GraphBuilder;
use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// One edge mutation.  Endpoints are unordered (`{u, v}`); probabilities
/// obey the same `(0, 1]` contract as [`GraphBuilder::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeUpdate {
    /// Add the edge `{u, v}` with existence probability `p`.
    Insert {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// Existence probability, in `(0, 1]`.
        p: f64,
    },
    /// Remove the edge `{u, v}`.
    Delete {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Change the existence probability of the edge `{u, v}` to `p`.
    Reweight {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// New existence probability, in `(0, 1]`.
        p: f64,
    },
}

impl EdgeUpdate {
    /// The endpoints as a canonical `(min, max)` pair.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        let (u, v) = match *self {
            EdgeUpdate::Insert { u, v, .. }
            | EdgeUpdate::Delete { u, v }
            | EdgeUpdate::Reweight { u, v, .. } => (u, v),
        };
        (u.min(v), u.max(v))
    }

    /// Lower-case operation name (`insert`, `delete`, `reweight`), as
    /// spelled on the wire and in bench reports.
    pub fn op(&self) -> &'static str {
        match self {
            EdgeUpdate::Insert { .. } => "insert",
            EdgeUpdate::Delete { .. } => "delete",
            EdgeUpdate::Reweight { .. } => "reweight",
        }
    }
}

/// Why a batch of [`EdgeUpdate`]s was rejected.  Every variant carries
/// the index of the offending update within the batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateError {
    /// An endpoint is not a vertex of the graph (the vertex set is
    /// fixed under updates).
    OffGraphEndpoint {
        /// Position of the offending update within the batch.
        index: usize,
        /// The out-of-range endpoint.
        vertex: VertexId,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// Both endpoints are the same vertex.
    SelfLoop {
        /// Position of the offending update within the batch.
        index: usize,
        /// The repeated endpoint.
        vertex: VertexId,
    },
    /// The probability is NaN or outside `(0, 1]`.
    InvalidProbability {
        /// Position of the offending update within the batch.
        index: usize,
        /// Canonical endpoints of the edge.
        edge: (VertexId, VertexId),
        /// The rejected probability.
        p: f64,
    },
    /// An insert names an edge that exists at this point of the batch.
    EdgeExists {
        /// Position of the offending update within the batch.
        index: usize,
        /// Canonical endpoints of the edge.
        edge: (VertexId, VertexId),
    },
    /// A delete or re-weight names an edge that does not exist at this
    /// point of the batch.
    EdgeMissing {
        /// Position of the offending update within the batch.
        index: usize,
        /// Canonical endpoints of the edge.
        edge: (VertexId, VertexId),
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::OffGraphEndpoint {
                index,
                vertex,
                num_vertices,
            } => write!(
                f,
                "update {index}: endpoint {vertex} is off the graph \
                 (vertex set is fixed at {num_vertices} vertices)"
            ),
            UpdateError::SelfLoop { index, vertex } => {
                write!(f, "update {index}: self-loop at vertex {vertex}")
            }
            UpdateError::InvalidProbability { index, edge, p } => write!(
                f,
                "update {index}: probability {p} for edge ({}, {}) is outside (0, 1]",
                edge.0, edge.1
            ),
            UpdateError::EdgeExists { index, edge } => write!(
                f,
                "update {index}: edge ({}, {}) already exists",
                edge.0, edge.1
            ),
            UpdateError::EdgeMissing { index, edge } => write!(
                f,
                "update {index}: edge ({}, {}) does not exist",
                edge.0, edge.1
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// The net effect of applying a validated update batch: the new graph
/// plus the edge-id correspondence the support-repair paths consume.
///
/// Edge ids are dense and lexicographic by canonical endpoint pair, so
/// inserting or deleting any edge shifts the ids of every later edge —
/// the maps below translate between the two id spaces.
#[derive(Debug, Clone)]
pub struct GraphDelta {
    /// The updated graph (same vertex set, new edge set).
    pub graph: UncertainGraph,
    /// For every old edge id: its id in the new graph, or `None` when
    /// the edge was (net) removed.  Surviving edges keep their endpoints
    /// but may carry a different probability.
    pub old_to_new: Vec<Option<EdgeId>>,
    /// For every new edge id: its id in the old graph, or `None` when
    /// the edge was (net) inserted.
    pub new_to_old: Vec<Option<EdgeId>>,
    /// Canonical endpoint pairs of the net-inserted edges (present in
    /// the new graph, absent from the old one), sorted lexicographically.
    /// This is exactly the seed set the incremental triangle/4-clique
    /// enumerations expand around.
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Number of net-removed edges.
    pub removed: usize,
    /// Number of surviving edges whose probability bits changed.
    pub reweighted: usize,
}

impl GraphDelta {
    /// `true` when the batch netted out to nothing: same edge set, same
    /// probabilities, identical edge ids.
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.removed == 0 && self.reweighted == 0
    }
}

/// Validates `updates` against `graph` and applies them, producing the
/// new graph and the net [`GraphDelta`].  The batch is atomic: any
/// invalid update rejects the whole batch with a typed [`UpdateError`]
/// carrying its index.
pub fn apply_edge_updates(
    graph: &UncertainGraph,
    updates: &[EdgeUpdate],
) -> Result<GraphDelta, UpdateError> {
    let n = graph.num_vertices();
    let mut edges: HashMap<(VertexId, VertexId), f64> =
        graph.edges().iter().map(|e| ((e.u, e.v), e.p)).collect();

    for (index, update) in updates.iter().enumerate() {
        let (u, v) = update.endpoints();
        if u == v {
            return Err(UpdateError::SelfLoop { index, vertex: u });
        }
        for vertex in [u, v] {
            if vertex as usize >= n {
                return Err(UpdateError::OffGraphEndpoint {
                    index,
                    vertex,
                    num_vertices: n,
                });
            }
        }
        match *update {
            EdgeUpdate::Insert { p, .. } => {
                if !(p > 0.0 && p <= 1.0) || p.is_nan() {
                    return Err(UpdateError::InvalidProbability {
                        index,
                        edge: (u, v),
                        p,
                    });
                }
                if edges.contains_key(&(u, v)) {
                    return Err(UpdateError::EdgeExists {
                        index,
                        edge: (u, v),
                    });
                }
                edges.insert((u, v), p);
            }
            EdgeUpdate::Delete { .. } => {
                if edges.remove(&(u, v)).is_none() {
                    return Err(UpdateError::EdgeMissing {
                        index,
                        edge: (u, v),
                    });
                }
            }
            EdgeUpdate::Reweight { p, .. } => {
                if !(p > 0.0 && p <= 1.0) || p.is_nan() {
                    return Err(UpdateError::InvalidProbability {
                        index,
                        edge: (u, v),
                        p,
                    });
                }
                match edges.get_mut(&(u, v)) {
                    Some(slot) => *slot = p,
                    None => {
                        return Err(UpdateError::EdgeMissing {
                            index,
                            edge: (u, v),
                        })
                    }
                }
            }
        }
    }

    let mut builder = GraphBuilder::with_vertices(n);
    for (&(u, v), &p) in &edges {
        builder
            .add_edge(u, v, p)
            .expect("validated update batch produces a buildable edge set");
    }
    let new_graph = builder.build();

    // Both edge tables are sorted lexicographically by canonical pair
    // (the builder's id assignment), so one merge pass yields the id
    // correspondence and the net insert/remove/re-weight sets.
    let old_edges = graph.edges();
    let new_edges = new_graph.edges();
    let mut old_to_new = vec![None; old_edges.len()];
    let mut new_to_old = vec![None; new_edges.len()];
    let mut inserted = Vec::new();
    let mut removed = 0usize;
    let mut reweighted = 0usize;
    let (mut oi, mut ni) = (0usize, 0usize);
    while oi < old_edges.len() || ni < new_edges.len() {
        let old_key = old_edges.get(oi).map(|e| (e.u, e.v));
        let new_key = new_edges.get(ni).map(|e| (e.u, e.v));
        match (old_key, new_key) {
            (Some(ok), Some(nk)) if ok == nk => {
                old_to_new[oi] = Some(ni as EdgeId);
                new_to_old[ni] = Some(oi as EdgeId);
                if old_edges[oi].p.to_bits() != new_edges[ni].p.to_bits() {
                    reweighted += 1;
                }
                oi += 1;
                ni += 1;
            }
            (Some(ok), Some(nk)) if ok < nk => {
                removed += 1;
                oi += 1;
            }
            (Some(_), None) => {
                removed += 1;
                oi += 1;
            }
            (_, Some(nk)) => {
                inserted.push(nk);
                ni += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    Ok(GraphDelta {
        graph: new_graph,
        old_to_new,
        new_to_old,
        inserted,
        removed,
        reweighted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> UncertainGraph {
        // Two triangles sharing edge {1, 2}.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.8).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        b.add_edge(1, 3, 0.6).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn insert_delete_reweight_round_trip() {
        let g = diamond();
        let delta = apply_edge_updates(
            &g,
            &[
                EdgeUpdate::Insert { u: 3, v: 0, p: 0.4 },
                EdgeUpdate::Delete { u: 2, v: 0 },
                EdgeUpdate::Reweight {
                    u: 2,
                    v: 1,
                    p: 0.65,
                },
            ],
        )
        .unwrap();
        assert_eq!(delta.graph.num_vertices(), 4);
        assert_eq!(delta.graph.num_edges(), 5);
        assert_eq!(delta.inserted, vec![(0, 3)]);
        assert_eq!(delta.removed, 1);
        assert_eq!(delta.reweighted, 1);
        assert!(!delta.is_noop());
        assert_eq!(delta.graph.edge_probability(0, 3), Some(0.4));
        assert_eq!(delta.graph.edge_probability(0, 2), None);
        assert_eq!(delta.graph.edge_probability(1, 2), Some(0.65));

        // Id maps invert each other on survivors.
        for (o, slot) in delta.old_to_new.iter().enumerate() {
            if let Some(n) = slot {
                assert_eq!(delta.new_to_old[*n as usize], Some(o as EdgeId));
                let old_e = g.edge(o as EdgeId);
                let new_e = delta.graph.edge(*n);
                assert_eq!((old_e.u, old_e.v), (new_e.u, new_e.v));
            }
        }
        // {0,2} was removed: its old id maps to None.
        let e02 = g.edge_id(0, 2).unwrap();
        assert_eq!(delta.old_to_new[e02 as usize], None);
        // {0,3} is new: its new id maps back to None.
        let e03 = delta.graph.edge_id(0, 3).unwrap();
        assert_eq!(delta.new_to_old[e03 as usize], None);
    }

    #[test]
    fn batch_is_sequential_and_nets_out() {
        let g = diamond();
        // Insert-then-delete of the same (new) edge nets to a no-op;
        // delete-then-insert of an existing edge nets to a re-weight.
        let delta = apply_edge_updates(
            &g,
            &[
                EdgeUpdate::Insert { u: 0, v: 3, p: 0.3 },
                EdgeUpdate::Delete { u: 0, v: 3 },
                EdgeUpdate::Delete { u: 0, v: 1 },
                EdgeUpdate::Insert {
                    u: 1,
                    v: 0,
                    p: 0.45,
                },
            ],
        )
        .unwrap();
        assert!(delta.inserted.is_empty());
        assert_eq!(delta.removed, 0);
        assert_eq!(delta.reweighted, 1);
        assert_eq!(delta.graph.edge_probability(0, 1), Some(0.45));
        assert_eq!(delta.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_batch_is_an_identity_noop() {
        let g = diamond();
        let delta = apply_edge_updates(&g, &[]).unwrap();
        assert!(delta.is_noop());
        assert!(delta.graph.same_structure(&g));
        for (i, slot) in delta.old_to_new.iter().enumerate() {
            assert_eq!(*slot, Some(i as EdgeId));
        }
    }

    #[test]
    fn typed_errors_carry_the_batch_index() {
        let g = diamond();
        let cases: [(Vec<EdgeUpdate>, UpdateError); 6] = [
            (
                vec![EdgeUpdate::Insert { u: 0, v: 9, p: 0.5 }],
                UpdateError::OffGraphEndpoint {
                    index: 0,
                    vertex: 9,
                    num_vertices: 4,
                },
            ),
            (
                vec![
                    EdgeUpdate::Delete { u: 0, v: 1 },
                    EdgeUpdate::Delete { u: 2, v: 2 },
                ],
                UpdateError::SelfLoop {
                    index: 1,
                    vertex: 2,
                },
            ),
            (
                vec![EdgeUpdate::Insert { u: 0, v: 3, p: 0.0 }],
                UpdateError::InvalidProbability {
                    index: 0,
                    edge: (0, 3),
                    p: 0.0,
                },
            ),
            (
                vec![EdgeUpdate::Reweight { u: 0, v: 1, p: 1.5 }],
                UpdateError::InvalidProbability {
                    index: 0,
                    edge: (0, 1),
                    p: 1.5,
                },
            ),
            (
                vec![EdgeUpdate::Insert { u: 1, v: 0, p: 0.5 }],
                UpdateError::EdgeExists {
                    index: 0,
                    edge: (0, 1),
                },
            ),
            (
                vec![
                    EdgeUpdate::Delete { u: 0, v: 1 },
                    EdgeUpdate::Delete { u: 0, v: 1 },
                ],
                UpdateError::EdgeMissing {
                    index: 1,
                    edge: (0, 1),
                },
            ),
        ];
        for (batch, expected) in cases {
            assert_eq!(apply_edge_updates(&g, &batch).unwrap_err(), expected);
            // Atomicity: the rejected batch mutated nothing observable
            // (the source graph is untouched by construction; what
            // matters is that no delta escaped).
        }
        // Duplicate inserts inside one batch: the second one errors.
        let err = apply_edge_updates(
            &g,
            &[
                EdgeUpdate::Insert { u: 0, v: 3, p: 0.5 },
                EdgeUpdate::Insert { u: 3, v: 0, p: 0.6 },
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            UpdateError::EdgeExists {
                index: 1,
                edge: (0, 3),
            }
        );
        // NaN probability is rejected.
        assert!(matches!(
            apply_edge_updates(
                &g,
                &[EdgeUpdate::Insert {
                    u: 0,
                    v: 3,
                    p: f64::NAN
                }]
            ),
            Err(UpdateError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn display_messages_name_the_edge_and_index() {
        let cases: [(UpdateError, &str); 5] = [
            (
                UpdateError::OffGraphEndpoint {
                    index: 3,
                    vertex: 17,
                    num_vertices: 10,
                },
                "endpoint 17",
            ),
            (
                UpdateError::SelfLoop {
                    index: 0,
                    vertex: 2,
                },
                "self-loop",
            ),
            (
                UpdateError::InvalidProbability {
                    index: 1,
                    edge: (2, 5),
                    p: -0.5,
                },
                "outside (0, 1]",
            ),
            (
                UpdateError::EdgeExists {
                    index: 2,
                    edge: (1, 4),
                },
                "already exists",
            ),
            (
                UpdateError::EdgeMissing {
                    index: 4,
                    edge: (0, 9),
                },
                "does not exist",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn update_accessors() {
        let ins = EdgeUpdate::Insert { u: 5, v: 2, p: 0.5 };
        assert_eq!(ins.endpoints(), (2, 5));
        assert_eq!(ins.op(), "insert");
        assert_eq!(EdgeUpdate::Delete { u: 1, v: 2 }.op(), "delete");
        assert_eq!(EdgeUpdate::Reweight { u: 1, v: 2, p: 0.1 }.op(), "reweight");
    }
}
