//! Possible worlds of an uncertain graph.
//!
//! A possible world `G ⊑ 𝒢` is a deterministic graph obtained by keeping
//! each edge of `𝒢` independently with its probability.  Its existence
//! probability is
//! `Pr(G) = Π_{e ∈ G} p_e · Π_{e ∉ G} (1 − p_e)` (Equation 1 of the paper).
//!
//! [`PossibleWorld`] stores the kept-edge bitmask next to a reference
//! graph, so that downstream algorithms (deterministic nucleus
//! decomposition on sampled worlds, exact enumeration on tiny graphs) can
//! interpret the world either as a mask or as a materialized
//! [`UncertainGraph`] with all probabilities equal to one.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// One deterministic instantiation of an uncertain graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleWorld {
    /// `kept[e]` is `true` when edge `e` of the reference graph exists in
    /// this world.
    kept: Vec<bool>,
}

impl PossibleWorld {
    /// Creates a world from an explicit kept-edge mask.
    pub fn from_mask(kept: Vec<bool>) -> Self {
        PossibleWorld { kept }
    }

    /// A world keeping every edge of `graph`.
    pub fn full(graph: &UncertainGraph) -> Self {
        PossibleWorld {
            kept: vec![true; graph.num_edges()],
        }
    }

    /// Number of edges of the reference graph (kept or not).
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// `true` when the reference graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// `true` when edge `e` exists in this world.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.kept[e as usize]
    }

    /// Number of edges present in this world.
    pub fn num_kept_edges(&self) -> usize {
        self.kept.iter().filter(|&&k| k).count()
    }

    /// The kept-edge mask.
    pub fn mask(&self) -> &[bool] {
        &self.kept
    }

    /// Existence probability of this world under `graph` (Equation 1).
    pub fn probability(&self, graph: &UncertainGraph) -> f64 {
        debug_assert_eq!(self.kept.len(), graph.num_edges());
        let mut p = 1.0;
        for (e, kept) in self.kept.iter().enumerate() {
            let pe = graph.edge(e as EdgeId).p;
            p *= if *kept { pe } else { 1.0 - pe };
        }
        p
    }

    /// `true` when the triangle `(u, v, w)` of `graph` has all three edges
    /// present in this world.
    pub fn contains_triangle(
        &self,
        graph: &UncertainGraph,
        u: VertexId,
        v: VertexId,
        w: VertexId,
    ) -> bool {
        [(u, v), (v, w), (u, w)].iter().all(|&(a, b)| {
            graph
                .edge_id(a, b)
                .map(|e| self.contains_edge(e))
                .unwrap_or(false)
        })
    }

    /// Materializes this world as a deterministic graph (every kept edge
    /// has probability `1.0`); vertex count is preserved.
    pub fn materialize(&self, graph: &UncertainGraph) -> UncertainGraph {
        let mut b = GraphBuilder::with_vertices(graph.num_vertices());
        for (e, kept) in self.kept.iter().enumerate() {
            if *kept {
                let edge = graph.edge(e as EdgeId);
                b.add_edge(edge.u, edge.v, 1.0)
                    .expect("reference edges are always valid");
            }
        }
        b.build()
    }
}

/// Samples possible worlds of an uncertain graph with independent edge
/// coin flips.
#[derive(Debug, Clone)]
pub struct WorldSampler<'g> {
    graph: &'g UncertainGraph,
}

impl<'g> WorldSampler<'g> {
    /// Creates a sampler over `graph`.
    pub fn new(graph: &'g UncertainGraph) -> Self {
        WorldSampler { graph }
    }

    /// Samples one possible world.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PossibleWorld {
        let kept = self
            .graph
            .edges()
            .iter()
            .map(|e| rng.gen::<f64>() < e.p)
            .collect();
        PossibleWorld::from_mask(kept)
    }

    /// Samples `n` independent possible worlds.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<PossibleWorld> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Iterates over *all* `2^m` possible worlds of `graph`.
///
/// Only usable for graphs with at most `MAX_EXHAUSTIVE_EDGES` edges; the
/// exact oracles in the `nucleus` crate use this to validate Monte-Carlo
/// estimates and the hardness-reduction gadgets on tiny instances.
pub fn enumerate_all_worlds(graph: &UncertainGraph) -> impl Iterator<Item = PossibleWorld> + '_ {
    let m = graph.num_edges();
    assert!(
        m <= MAX_EXHAUSTIVE_EDGES,
        "exhaustive world enumeration requires at most {MAX_EXHAUSTIVE_EDGES} edges, got {m}"
    );
    (0u64..(1u64 << m)).map(move |mask| {
        let kept = (0..m).map(|e| mask & (1 << e) != 0).collect();
        PossibleWorld::from_mask(kept)
    })
}

/// Maximum number of edges for which exhaustive world enumeration is
/// permitted (2^24 worlds ≈ 16.7M).
pub const MAX_EXHAUSTIVE_EDGES: usize = 24;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let g = path_graph();
        let total: f64 = enumerate_all_worlds(&g).map(|w| w.probability(&g)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_world_probability() {
        let g = path_graph();
        let w = PossibleWorld::full(&g);
        assert!((w.probability(&g) - 0.4).abs() < 1e-12);
        assert_eq!(w.num_kept_edges(), 2);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_world_probability() {
        let g = path_graph();
        let w = PossibleWorld::from_mask(vec![false, false]);
        assert!((w.probability(&g) - 0.2 * 0.5).abs() < 1e-12);
        assert_eq!(w.num_kept_edges(), 0);
    }

    #[test]
    fn triangle_membership_in_world() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        let g = b.build();
        let full = PossibleWorld::full(&g);
        assert!(full.contains_triangle(&g, 0, 1, 2));
        let mut mask = vec![true; 3];
        mask[g.edge_id(0, 2).unwrap() as usize] = false;
        let partial = PossibleWorld::from_mask(mask);
        assert!(!partial.contains_triangle(&g, 0, 1, 2));
        // Missing edge in the reference graph.
        assert!(!full.contains_triangle(&g, 0, 1, 5));
    }

    #[test]
    fn materialize_preserves_structure() {
        let g = path_graph();
        let w = PossibleWorld::from_mask(vec![true, false]);
        let det = w.materialize(&g);
        assert_eq!(det.num_vertices(), 3);
        assert_eq!(det.num_edges(), 1);
        assert_eq!(det.edge_probability(0, 1), Some(1.0));
        assert!(!det.has_edge(1, 2));
    }

    #[test]
    fn sampler_respects_extreme_probabilities() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1e-12).unwrap();
        let g = b.build();
        let sampler = WorldSampler::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for w in sampler.sample_many(&mut rng, 200) {
            assert!(w.contains_edge(g.edge_id(0, 1).unwrap()));
            assert!(!w.contains_edge(g.edge_id(1, 2).unwrap()));
        }
    }

    #[test]
    fn sampler_frequency_approximates_probability() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.3).unwrap();
        let g = b.build();
        let sampler = WorldSampler::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let hits = sampler
            .sample_many(&mut rng, n)
            .iter()
            .filter(|w| w.contains_edge(0))
            .count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - 0.3).abs() < 0.02,
            "frequency {freq} too far from 0.3"
        );
    }

    #[test]
    fn exhaustive_enumeration_counts() {
        let g = path_graph();
        assert_eq!(enumerate_all_worlds(&g).count(), 4);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn exhaustive_enumeration_rejects_large_graphs() {
        let mut b = GraphBuilder::new();
        for i in 0..30u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build();
        let _ = enumerate_all_worlds(&g).count();
    }
}
