//! Incremental construction of [`UncertainGraph`]s.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::{Edge, EdgeId, UncertainGraph, VertexId};
use crate::Result;

/// Builds an [`UncertainGraph`] from a stream of probabilistic edges.
///
/// The builder
/// * rejects self-loops and probabilities outside `(0, 1]`,
/// * de-duplicates parallel edges (the *last* probability supplied wins,
///   mirroring how dataset loaders typically treat repeated lines), and
/// * produces a graph whose adjacency lists are sorted and whose canonical
///   edge table is ordered lexicographically by `(min(u,v), max(u,v))`.
///
/// # Example
///
/// ```
/// use ugraph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(2, 0, 0.4).unwrap();
/// b.add_edge(0, 2, 0.8).unwrap(); // duplicate: overrides the 0.4
/// b.add_edge(1, 2, 1.0).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_probability(0, 2), Some(0.8));
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: HashMap<(VertexId, VertexId), f64>,
    max_vertex: Option<VertexId>,
    /// When set, the built graph has at least this many vertices even if
    /// the trailing ones are isolated.
    min_num_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Creates a builder that will produce a graph with at least `n`
    /// vertices (vertices `0..n` exist even when isolated).
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder {
            min_num_vertices: n,
            ..GraphBuilder::default()
        }
    }

    /// Number of distinct edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds (or overrides) the undirected edge `{u, v}` with probability `p`.
    ///
    /// Returns an error for self-loops and for probabilities outside
    /// `(0, 1]`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !(p > 0.0 && p <= 1.0) || p.is_nan() {
            return Err(GraphError::InvalidProbability {
                edge: (u, v),
                probability: p,
            });
        }
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.insert(key, p);
        let m = u.max(v);
        self.max_vertex = Some(self.max_vertex.map_or(m, |cur| cur.max(m)));
        Ok(())
    }

    /// Like [`GraphBuilder::add_edge`] but rejects edges that were already
    /// added instead of overriding them — the behaviour dataset loaders
    /// need so a repeated line in an input file surfaces as a typed
    /// [`GraphError::DuplicateEdge`] rather than silently winning.
    pub fn add_edge_strict(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<()> {
        let key = if u < v { (u, v) } else { (v, u) };
        if self.edges.contains_key(&key) {
            return Err(GraphError::DuplicateEdge { edge: key });
        }
        self.add_edge(u, v, p)
    }

    /// Adds a deterministic edge (probability `1.0`).
    pub fn add_certain_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.add_edge(u, v, 1.0)
    }

    /// Adds every edge of an iterator, stopping at the first error.
    pub fn extend_edges<I>(&mut self, iter: I) -> Result<()>
    where
        I: IntoIterator<Item = (VertexId, VertexId, f64)>,
    {
        for (u, v, p) in iter {
            self.add_edge(u, v, p)?;
        }
        Ok(())
    }

    /// Finalizes the builder into a CSR [`UncertainGraph`].
    pub fn build(self) -> UncertainGraph {
        let n = self
            .max_vertex
            .map(|m| m as usize + 1)
            .unwrap_or(0)
            .max(self.min_num_vertices);

        // Canonical edge table sorted by (u, v).
        let mut edge_list: Vec<Edge> = self
            .edges
            .into_iter()
            .map(|((u, v), p)| Edge { u, v, p })
            .collect();
        edge_list.sort_unstable_by_key(|e| (e.u, e.v));

        // Degree counting pass.
        let mut degrees = vec![0usize; n];
        for e in &edge_list {
            degrees[e.u as usize] += 1;
            degrees[e.v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &degrees {
            offsets.push(offsets.last().unwrap() + d);
        }

        let total = offsets[n];
        let mut neighbors = vec![0 as VertexId; total];
        let mut neighbor_probs = vec![0.0f64; total];
        let mut neighbor_edges = vec![0 as EdgeId; total];
        let mut cursor = offsets[..n].to_vec();

        for (idx, e) in edge_list.iter().enumerate() {
            let eid = idx as EdgeId;
            let cu = cursor[e.u as usize];
            neighbors[cu] = e.v;
            neighbor_probs[cu] = e.p;
            neighbor_edges[cu] = eid;
            cursor[e.u as usize] += 1;

            let cv = cursor[e.v as usize];
            neighbors[cv] = e.u;
            neighbor_probs[cv] = e.p;
            neighbor_edges[cv] = eid;
            cursor[e.v as usize] += 1;
        }

        // Each adjacency run must be sorted by neighbour id for binary
        // search and merge-intersection.  Because the canonical edge list
        // is processed in (u, v) order, the "forward" half (u -> v) is
        // already sorted, but the "backward" half (v -> u) interleaves, so
        // sort each run explicitly.
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut entries: Vec<(VertexId, f64, EdgeId)> = range
                .clone()
                .map(|i| (neighbors[i], neighbor_probs[i], neighbor_edges[i]))
                .collect();
            entries.sort_unstable_by_key(|&(w, _, _)| w);
            for (slot, (w, p, eid)) in range.zip(entries) {
                neighbors[slot] = w;
                neighbor_probs[slot] = p;
                neighbor_edges[slot] = eid;
            }
        }

        UncertainGraph::from_csr(
            offsets,
            neighbors,
            neighbor_probs,
            neighbor_edges,
            edge_list,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let err = b.add_edge(3, 3, 0.5).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { vertex: 3 }));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new();
        assert!(b.add_edge(0, 1, 0.0).is_err());
        assert!(b.add_edge(0, 1, -0.2).is_err());
        assert!(b.add_edge(0, 1, 1.2).is_err());
        assert!(b.add_edge(0, 1, f64::NAN).is_err());
        assert!(b.add_edge(0, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicate_edge_keeps_last_probability() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.3).unwrap();
        b.add_edge(1, 0, 0.9).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_probability(0, 1), Some(0.9));
    }

    #[test]
    fn strict_insert_rejects_duplicates_but_validates_first() {
        let mut b = GraphBuilder::new();
        b.add_edge_strict(0, 1, 0.3).unwrap();
        let err = b.add_edge_strict(1, 0, 0.9).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { edge: (0, 1) }));
        assert!(matches!(
            b.add_edge_strict(2, 2, 0.5).unwrap_err(),
            GraphError::SelfLoop { vertex: 2 }
        ));
        assert!(matches!(
            b.add_edge_strict(0, 2, 1.5).unwrap_err(),
            GraphError::InvalidProbability { .. }
        ));
        // The duplicate attempt did not override the stored probability.
        let g = b.build();
        assert_eq!(g.edge_probability(0, 1), Some(0.3));
    }

    #[test]
    fn with_vertices_keeps_isolated_vertices() {
        let mut b = GraphBuilder::with_vertices(10);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new();
        b.extend_edges([
            (5, 1, 0.5),
            (5, 4, 0.5),
            (5, 0, 0.5),
            (5, 3, 0.5),
            (5, 2, 0.5),
        ])
        .unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(5), &[0, 1, 2, 3, 4]);
        for w in 0..5u32 {
            assert_eq!(g.neighbors(w), &[5]);
        }
    }

    #[test]
    fn certain_edge_has_probability_one() {
        let mut b = GraphBuilder::new();
        b.add_certain_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.edge_probability(0, 1), Some(1.0));
    }

    #[test]
    fn edge_ids_are_dense_and_consistent() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(2, 3, 0.1), (0, 1, 0.2), (1, 2, 0.3)])
            .unwrap();
        let g = b.build();
        let mut seen = vec![false; g.num_edges()];
        for v in g.vertices() {
            for (w, p, eid) in g.neighbor_entries(v) {
                let e = g.edge(eid);
                assert_eq!((e.u, e.v), (v.min(w), v.max(w)));
                assert_eq!(e.p, p);
                seen[eid as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
