//! 4-clique (and general k-clique) enumeration.
//!
//! 4-cliques are the `s = 4` cliques of the (3,4)-nucleus: the support of a
//! triangle is the number of 4-cliques containing it, and each 4-clique
//! contains exactly four triangles.  The enumerator reports each 4-clique
//! once and can expand it into its four triangles.

use crate::graph::{UncertainGraph, VertexId};
use crate::par::{self, Parallelism};
use crate::triangles::Triangle;

/// A 4-clique, stored with its vertices sorted increasingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourClique {
    vertices: [VertexId; 4],
}

impl FourClique {
    /// Creates a 4-clique from four distinct vertices (any order).
    ///
    /// # Panics
    ///
    /// Panics when the vertices are not pairwise distinct.
    pub fn new(a: VertexId, b: VertexId, c: VertexId, d: VertexId) -> Self {
        let mut vertices = [a, b, c, d];
        vertices.sort_unstable();
        assert!(
            vertices.windows(2).all(|w| w[0] != w[1]),
            "4-clique vertices must be distinct"
        );
        FourClique { vertices }
    }

    /// The sorted vertex quadruple.
    pub fn vertices(&self) -> [VertexId; 4] {
        self.vertices
    }

    /// `true` when `v` is a vertex of this clique.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// `true` when the triangle `t` is one of the four triangles of this
    /// clique.
    pub fn contains_triangle(&self, t: &Triangle) -> bool {
        t.vertices().iter().all(|v| self.contains(*v))
    }

    /// The six edges of the clique as canonical pairs.
    pub fn edges(&self) -> [(VertexId, VertexId); 6] {
        let [a, b, c, d] = self.vertices;
        [(a, b), (a, c), (a, d), (b, c), (b, d), (c, d)]
    }

    /// The four triangles of the clique.
    pub fn triangles(&self) -> [Triangle; 4] {
        let [a, b, c, d] = self.vertices;
        [
            Triangle::new(a, b, c),
            Triangle::new(a, b, d),
            Triangle::new(a, c, d),
            Triangle::new(b, c, d),
        ]
    }

    /// Existence probability of the clique in a sampled possible world
    /// (product of its six edge probabilities); `None` when an edge is
    /// missing from `graph`.
    pub fn probability(&self, graph: &UncertainGraph) -> Option<f64> {
        let mut p = 1.0;
        for (u, v) in self.edges() {
            p *= graph.edge_probability(u, v)?;
        }
        Some(p)
    }
}

impl std::fmt::Display for FourClique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.vertices;
        write!(f, "({a}, {b}, {c}, {d})")
    }
}

/// Enumerator of all 4-cliques of a graph.
///
/// Enumeration strategy: for every triangle `(u, v, w)` with `u < v < w`
/// (produced by the edge-iterator technique), every common neighbour
/// `z > w` of the three vertices yields the 4-clique `(u, v, w, z)`.
/// Each 4-clique is reported exactly once, from its lexicographically
/// smallest triangle.
#[derive(Debug, Clone)]
pub struct FourCliqueEnumerator {
    cliques: Vec<FourClique>,
}

impl FourCliqueEnumerator {
    /// Enumerates all 4-cliques of `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        Self::with_parallelism(graph, Parallelism::Sequential)
    }

    /// [`FourCliqueEnumerator::new`] with an explicit [`Parallelism`]
    /// setting.  Edges are scanned in parallel chunks and the merged clique
    /// list is identical to the sequential one for every thread count.
    pub fn with_parallelism(graph: &UncertainGraph, parallelism: Parallelism) -> Self {
        let edges = graph.edges();
        let mut cliques = par::par_extend(parallelism, edges.len(), |range, out| {
            for e in &edges[range] {
                let (u, v) = (e.u, e.v);
                let common_uv = graph.common_neighbors(u, v);
                for (wi, &w) in common_uv.iter().enumerate() {
                    if w <= v {
                        continue;
                    }
                    // Candidates z must be adjacent to u, v (i.e. in
                    // common_uv) and to w; restricting to z > w keeps each
                    // clique unique.
                    for &z in &common_uv[wi + 1..] {
                        if z > w && graph.has_edge(w, z) {
                            out.push(FourClique::new(u, v, w, z));
                        }
                    }
                }
            }
        });
        cliques.sort_unstable();
        FourCliqueEnumerator { cliques }
    }

    /// Number of 4-cliques found.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// `true` when the graph has no 4-cliques.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// All 4-cliques, sorted lexicographically.
    pub fn cliques(&self) -> &[FourClique] {
        &self.cliques
    }

    /// Consumes the enumerator, returning the clique list.
    pub fn into_cliques(self) -> Vec<FourClique> {
        self.cliques
    }
}

/// Enumerates the 4-cliques of `graph` that contain at least one of the
/// given edges, sorted and deduplicated — the incremental counterpart of
/// [`FourCliqueEnumerator`] used by the support-repair paths: after an
/// edge-update batch, the new graph's 4-cliques are exactly the old ones
/// whose six edges all survived plus the cliques containing a
/// net-inserted edge, which this function finds without rescanning the
/// whole edge set.
///
/// Unlike the full enumeration there is no `w > v` / `z > w` canonical
/// restriction: the given edge can be any of a clique's six edges, so
/// every pair of common neighbours is taken and duplicates (cliques
/// containing two of the given edges) are removed by the sort + dedup.
pub fn four_cliques_containing_edges(
    graph: &UncertainGraph,
    edges: &[(VertexId, VertexId)],
) -> Vec<FourClique> {
    let mut cliques = Vec::new();
    for &(u, v) in edges {
        let common_uv = graph.common_neighbors(u, v);
        for (wi, &w) in common_uv.iter().enumerate() {
            for &z in &common_uv[wi + 1..] {
                if graph.has_edge(w, z) {
                    cliques.push(FourClique::new(u, v, w, z));
                }
            }
        }
    }
    cliques.sort_unstable();
    cliques.dedup();
    cliques
}

/// Counts all 4-cliques of `graph` without materializing them (same
/// traversal as [`FourCliqueEnumerator`]).
pub fn count_four_cliques(graph: &UncertainGraph) -> usize {
    count_four_cliques_with(graph, Parallelism::Sequential)
}

/// [`count_four_cliques`] with an explicit [`Parallelism`] setting.
pub fn count_four_cliques_with(graph: &UncertainGraph, parallelism: Parallelism) -> usize {
    let edges = graph.edges();
    par::par_count(parallelism, edges.len(), |range| {
        let mut count = 0usize;
        for e in &edges[range] {
            let (u, v) = (e.u, e.v);
            let common_uv = graph.common_neighbors(u, v);
            for (wi, &w) in common_uv.iter().enumerate() {
                if w <= v {
                    continue;
                }
                for &z in &common_uv[wi + 1..] {
                    if z > w && graph.has_edge(w, z) {
                        count += 1;
                    }
                }
            }
        }
        count
    })
}

/// Enumerates the k-cliques of `graph` for `k ≥ 1` by recursive pivot-free
/// expansion over sorted candidate sets.  Intended for validation and small
/// graphs only; the production paths use the specialized triangle and
/// 4-clique enumerators.
pub fn enumerate_k_cliques(graph: &UncertainGraph, k: usize) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    if k == 0 {
        return out;
    }
    let mut current = Vec::with_capacity(k);
    let all: Vec<VertexId> = graph.vertices().collect();
    extend_clique(graph, k, &all, &mut current, &mut out);
    out
}

fn extend_clique(
    graph: &UncertainGraph,
    k: usize,
    candidates: &[VertexId],
    current: &mut Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
) {
    if current.len() == k {
        out.push(current.clone());
        return;
    }
    for (i, &v) in candidates.iter().enumerate() {
        // Prune when not enough candidates remain.
        if candidates.len() - i < k - current.len() {
            break;
        }
        let next: Vec<VertexId> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&w| graph.has_edge(v, w))
            .collect();
        current.push(v);
        extend_clique(graph, k, &next, current, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn complete_graph(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, p).unwrap();
            }
        }
        b.build()
    }

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn four_clique_requires_distinct_vertices() {
        let _ = FourClique::new(0, 1, 2, 2);
    }

    #[test]
    fn four_clique_accessors() {
        let c = FourClique::new(7, 2, 5, 3);
        assert_eq!(c.vertices(), [2, 3, 5, 7]);
        assert!(c.contains(5));
        assert!(!c.contains(4));
        assert_eq!(c.edges().len(), 6);
        assert_eq!(c.triangles().len(), 4);
        assert!(c.contains_triangle(&Triangle::new(2, 3, 5)));
        assert!(!c.contains_triangle(&Triangle::new(2, 3, 9)));
        assert_eq!(c.to_string(), "(2, 3, 5, 7)");
    }

    #[test]
    fn clique_probability() {
        let g = complete_graph(4, 0.5);
        let c = FourClique::new(0, 1, 2, 3);
        assert!((c.probability(&g).unwrap() - 0.5f64.powi(6)).abs() < 1e-12);
        let g2 = complete_graph(3, 0.5);
        assert_eq!(c.probability(&g2), None);
    }

    #[test]
    fn enumerate_counts_match_binomial_on_complete_graphs() {
        for n in 4..8u32 {
            let g = complete_graph(n, 0.9);
            let enumerator = FourCliqueEnumerator::new(&g);
            assert_eq!(enumerator.len(), binomial(n as usize, 4));
            assert_eq!(count_four_cliques(&g), binomial(n as usize, 4));
        }
    }

    #[test]
    fn enumerate_matches_naive_k_clique_enumeration() {
        // Small random-ish sparse graph built by hand.
        let mut b = GraphBuilder::new();
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 4),
            (4, 5),
            (1, 4),
            (0, 5),
            (2, 5),
        ];
        for &(u, v) in &edges {
            b.add_edge(u, v, 0.8).unwrap();
        }
        let g = b.build();
        let fast: Vec<Vec<VertexId>> = FourCliqueEnumerator::new(&g)
            .cliques()
            .iter()
            .map(|c| c.vertices().to_vec())
            .collect();
        let mut naive = enumerate_k_cliques(&g, 4);
        naive.sort();
        assert_eq!(fast, naive);
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        let g = complete_graph(9, 0.8);
        let sequential = FourCliqueEnumerator::new(&g);
        for threads in [1, 2, 8] {
            let par = FourCliqueEnumerator::with_parallelism(&g, Parallelism::fixed(threads));
            assert_eq!(par.cliques(), sequential.cliques(), "threads = {threads}");
            assert_eq!(
                count_four_cliques_with(&g, Parallelism::fixed(threads)),
                sequential.len()
            );
        }
    }

    #[test]
    fn cliques_containing_edges_match_filtered_full_enumeration() {
        let g = complete_graph(6, 0.8);
        // Every 4-clique of K6 contains at least one of the probed edges.
        let probes = [(0u32, 1u32), (2, 3), (4, 5)];
        let incremental = four_cliques_containing_edges(&g, &probes);
        let expected: Vec<FourClique> = FourCliqueEnumerator::new(&g)
            .cliques()
            .iter()
            .copied()
            .filter(|c| probes.iter().any(|&(u, v)| c.contains(u) && c.contains(v)))
            .collect();
        assert_eq!(incremental, expected);
        // A single probe edge finds each containing clique exactly once,
        // in sorted order.
        let single = four_cliques_containing_edges(&g, &[(1, 4)]);
        assert_eq!(single.len(), binomial(4, 2));
        assert!(single.windows(2).all(|w| w[0] < w[1]));
        // Edges outside any clique contribute nothing.
        assert!(four_cliques_containing_edges(&g, &[]).is_empty());
    }

    #[test]
    fn no_four_cliques_in_sparse_graph() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build();
        let e = FourCliqueEnumerator::new(&g);
        assert!(e.is_empty());
        assert_eq!(count_four_cliques(&g), 0);
    }

    #[test]
    fn k_clique_enumeration_edge_cases() {
        let g = complete_graph(5, 1.0);
        assert_eq!(enumerate_k_cliques(&g, 0).len(), 0);
        assert_eq!(enumerate_k_cliques(&g, 1).len(), 5);
        assert_eq!(enumerate_k_cliques(&g, 2).len(), 10);
        assert_eq!(enumerate_k_cliques(&g, 5).len(), 1);
        assert_eq!(enumerate_k_cliques(&g, 6).len(), 0);
    }

    #[test]
    fn into_cliques_returns_all() {
        let g = complete_graph(5, 1.0);
        let e = FourCliqueEnumerator::new(&g);
        let n = e.len();
        let cliques = e.into_cliques();
        assert_eq!(cliques.len(), n);
        assert_eq!(n, 5);
    }
}
