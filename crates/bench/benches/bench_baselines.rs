//! Criterion benchmark backing Table 3: the probabilistic nucleus versus
//! the probabilistic core and truss baselines on the same dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_datasets::{PaperDataset, Scale};
use nucleus::{LocalConfig, LocalNucleusDecomposition};
use probdecomp::{EtaCoreDecomposition, GammaTrussDecomposition};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let graph = PaperDataset::Dblp.generate(Scale::Tiny, 42);
    let theta = 0.3;
    group.bench_function("eta_core/dblp", |b| {
        b.iter(|| EtaCoreDecomposition::try_compute(&graph, theta).unwrap())
    });
    group.bench_function("gamma_truss/dblp", |b| {
        b.iter(|| GammaTrussDecomposition::try_compute(&graph, theta).unwrap())
    });
    group.bench_function("local_nucleus_ap/dblp", |b| {
        b.iter(|| {
            LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(theta)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
