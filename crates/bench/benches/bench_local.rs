//! Criterion benchmark backing Figure 4: the local nucleus decomposition
//! with exact DP scoring versus the hybrid approximation (AP), plus the
//! peeling-update ablation (DP re-scoring vs approximate re-scoring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_datasets::{PaperDataset, Scale};
use nucleus::{LocalConfig, LocalNucleusDecomposition, SupportStructure};

fn bench_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_decomposition");
    group.sample_size(10);
    for dataset in [
        PaperDataset::Krogan,
        PaperDataset::Dblp,
        PaperDataset::Flickr,
    ] {
        let graph = dataset.generate(Scale::Tiny, 42);
        let support = SupportStructure::build(&graph);
        for theta in [0.1, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(format!("DP/{}", dataset.name()), theta),
                &theta,
                |b, &theta| {
                    b.iter(|| {
                        LocalNucleusDecomposition::with_support(
                            support.clone(),
                            &LocalConfig::exact(theta),
                        )
                        .unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("AP/{}", dataset.name()), theta),
                &theta,
                |b, &theta| {
                    b.iter(|| {
                        LocalNucleusDecomposition::with_support(
                            support.clone(),
                            &LocalConfig::approximate(theta),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_local);
criterion_main!(benches);
