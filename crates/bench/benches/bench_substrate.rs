//! Criterion benchmark of the graph substrate: triangle enumeration,
//! 4-clique enumeration, support-structure construction and possible-world
//! sampling — the preprocessing shared by every decomposition.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_datasets::{PaperDataset, Scale};
use nucleus::SupportStructure;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{FourCliqueEnumerator, TriangleIndex, WorldSampler};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    let graph = PaperDataset::Flickr.generate(Scale::Tiny, 42);
    group.bench_function("triangle_index/flickr", |b| {
        b.iter(|| TriangleIndex::build(&graph))
    });
    group.bench_function("four_cliques/flickr", |b| {
        b.iter(|| FourCliqueEnumerator::new(&graph).len())
    });
    group.bench_function("support_structure/flickr", |b| {
        b.iter(|| SupportStructure::build(&graph))
    });
    group.bench_function("sample_100_worlds/flickr", |b| {
        let sampler = WorldSampler::new(&graph);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| sampler.sample_many(&mut rng, 100))
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
