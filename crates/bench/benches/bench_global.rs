//! Criterion benchmark backing Figure 5: the fully-global (Algorithm 2)
//! versus weakly-global (Algorithm 3) decompositions.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_datasets::{PaperDataset, Scale};
use nucleus::global::global_nuclei_with_local;
use nucleus::weakly_global::weakly_global_nuclei_with_local;
use nucleus::{GlobalConfig, LocalConfig, LocalNucleusDecomposition, SamplingConfig};

fn bench_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_decomposition");
    group.sample_size(10);
    let graph = PaperDataset::Krogan.generate(Scale::Tiny, 42);
    let theta = 0.001;
    let local =
        LocalNucleusDecomposition::compute(&graph, &LocalConfig::approximate(theta)).unwrap();
    let config = GlobalConfig::new(theta)
        .with_sampling(SamplingConfig::default().with_num_samples(100).with_seed(1));
    group.bench_function("FG/krogan/k=2", |b| {
        b.iter(|| global_nuclei_with_local(&graph, 2, &config, &local).unwrap())
    });
    group.bench_function("WG/krogan/k=2", |b| {
        b.iter(|| weakly_global_nuclei_with_local(&graph, 2, &config, &local).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_global);
criterion_main!(benches);
