//! Criterion benchmark backing Figure 6 and the Section 5.3 design choice:
//! cost of a single support-score query under each method as the clique
//! count grows (DP is quadratic, the approximations are linear).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nucleus::approx::{max_k_with_method, ApproxMethod};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("support_score_query");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for count in [32usize, 256, 1024] {
        let probs: Vec<f64> = (0..count).map(|_| rng.gen_range(0.05..0.95)).collect();
        for method in [
            ApproxMethod::DynamicProgramming,
            ApproxMethod::Poisson,
            ApproxMethod::TranslatedPoisson,
            ApproxMethod::Binomial,
            ApproxMethod::Clt,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), count),
                &probs,
                |b, probs| b.iter(|| max_k_with_method(method, 0.9, probs, 0.3)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
